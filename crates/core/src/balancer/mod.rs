//! DynMo's load balancers (paper §3.3).
//!
//! Two families, both proven in the paper to converge to the optimal
//! balance:
//!
//! * [`PartitionBalancer`] — centralized contiguous partitioning in the
//!   style of DeepSpeed's `partition_balanced` utility (binary search on the
//!   bottleneck + greedy feasibility probing), driven either by parameter
//!   counts (`Partition: by Param`) or by measured layer execution times
//!   (`Partition: by Time`).
//! * [`DiffusionBalancer`] — a decentralized, iterative scheme that moves
//!   boundary layers from overloaded stages to underloaded neighbors,
//!   monotonically decreasing the potential function φ of Lemma 2 until it
//!   γ-converges.
//!
//! Both operate on profiled [`LayerLoad`]s and respect per-worker memory
//! capacity constraints.

pub mod diffusion;
pub mod partition;

use dynmo_pipeline::{LayerLoad, StageAssignment};
use serde::{Deserialize, Serialize};

pub use diffusion::DiffusionBalancer;
pub use partition::PartitionBalancer;

/// What quantity the balancer equalizes across stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BalanceObjective {
    /// Balance the number of parameters per stage (DeepSpeed's `param`
    /// method; requires only memory profiling).
    ByParams,
    /// Balance the measured layer execution time per stage (requires the
    /// timing profile; the paper finds this consistently better).
    ByTime,
}

impl BalanceObjective {
    /// The weight of one layer under this objective.
    pub fn weight(&self, load: &LayerLoad) -> f64 {
        match self {
            BalanceObjective::ByParams => load.param_count as f64,
            BalanceObjective::ByTime => load.total_time(),
        }
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            BalanceObjective::ByParams => "by-param",
            BalanceObjective::ByTime => "by-time",
        }
    }
}

/// Everything a balancer needs to produce a new assignment.
#[derive(Debug, Clone)]
pub struct BalanceRequest<'a> {
    /// Profiled per-layer loads (model order).
    pub loads: &'a [LayerLoad],
    /// Number of pipeline stages (workers) available.
    pub num_stages: usize,
    /// Memory capacity of each worker in bytes.
    pub memory_capacity: u64,
    /// In-flight micro-batches per stage (for activation memory accounting);
    /// must have `num_stages` entries.
    pub inflight: Vec<usize>,
    /// The assignment currently in effect (used as the starting point by
    /// the diffusion balancer; `None` means start from a uniform split).
    pub current: Option<&'a StageAssignment>,
    /// The balancing objective.
    pub objective: BalanceObjective,
    /// Per-stage effective speed relative to the reference device (`None` =
    /// homogeneous; arithmetic on that path must stay bit-identical to the
    /// speed-free code).  A layer of weight `w` costs `w / speed[s]` time on
    /// stage `s`.
    pub stage_speeds: Option<Vec<f64>>,
    /// Per-stage memory capacities for mixed-generation clusters (`None` =
    /// every stage has `memory_capacity`).
    pub stage_capacities: Option<Vec<u64>>,
}

impl<'a> BalanceRequest<'a> {
    /// Convenience constructor with a conservative in-flight estimate of
    /// `min(num_stages, 4)` micro-batches for every stage.
    pub fn new(
        loads: &'a [LayerLoad],
        num_stages: usize,
        memory_capacity: u64,
        objective: BalanceObjective,
    ) -> Self {
        BalanceRequest {
            loads,
            num_stages,
            memory_capacity,
            inflight: vec![num_stages.min(4); num_stages],
            current: None,
            objective,
            stage_speeds: None,
            stage_capacities: None,
        }
    }

    /// Set the current assignment (builder style).
    pub fn with_current(mut self, current: &'a StageAssignment) -> Self {
        self.current = Some(current);
        self
    }

    /// Set per-stage in-flight micro-batch counts (builder style).
    pub fn with_inflight(mut self, inflight: Vec<usize>) -> Self {
        assert_eq!(inflight.len(), self.num_stages);
        self.inflight = inflight;
        self
    }

    /// Set per-stage effective speeds (builder style; `None` clears them).
    pub fn with_stage_speeds(mut self, speeds: Option<Vec<f64>>) -> Self {
        if let Some(s) = &speeds {
            assert_eq!(s.len(), self.num_stages);
            assert!(s.iter().all(|&v| v > 0.0), "stage speeds must be positive");
        }
        self.stage_speeds = speeds;
        self
    }

    /// Set per-stage memory capacities (builder style; `None` clears them).
    pub fn with_stage_capacities(mut self, capacities: Option<Vec<u64>>) -> Self {
        if let Some(c) = &capacities {
            assert_eq!(c.len(), self.num_stages);
        }
        self.stage_capacities = capacities;
        self
    }

    /// The weight of layer `l` under the request's objective.
    pub fn weight(&self, l: usize) -> f64 {
        self.objective.weight(&self.loads[l])
    }

    /// Effective speed of stage `s` (1.0 on the homogeneous path).
    pub fn speed(&self, s: usize) -> f64 {
        match &self.stage_speeds {
            Some(speeds) => speeds[s],
            None => 1.0,
        }
    }

    /// Memory capacity of stage `s`.
    pub fn capacity_of(&self, s: usize) -> u64 {
        match &self.stage_capacities {
            Some(capacities) => capacities[s],
            None => self.memory_capacity,
        }
    }

    /// Memory bytes stage `s` would need to host the given layers.
    pub fn stage_memory(&self, stage: usize, layers: &[usize]) -> u64 {
        let inflight = *self.inflight.get(stage).unwrap_or(&1) as u64;
        layers
            .iter()
            .map(|&l| self.loads[l].static_bytes + self.loads[l].activation_bytes * inflight)
            .sum()
    }
}

/// The result of a balancing decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalanceOutcome {
    /// The new layer→stage assignment.
    pub assignment: StageAssignment,
    /// Rounds the algorithm used (1 for the centralized partitioner; the
    /// diffusion balancer reports its iteration count, which the Lemma 2
    /// bound is checked against).
    pub rounds: u64,
    /// The bottleneck (max per-stage weight) of the produced assignment.
    pub bottleneck: f64,
}

/// A pipeline-stage load balancer.
pub trait LoadBalancer {
    /// Name for reports, e.g. `partition/by-time`.
    fn name(&self) -> String;

    /// Compute a new assignment for the given request.
    fn rebalance(&self, request: &BalanceRequest<'_>) -> BalanceOutcome;
}

/// Per-stage total weight of an assignment under an objective — shared by
/// the balancer implementations and their tests.
pub fn stage_weights(
    assignment: &StageAssignment,
    loads: &[LayerLoad],
    objective: BalanceObjective,
) -> Vec<f64> {
    let mut weights = vec![0.0; assignment.num_stages()];
    for (layer, &stage) in assignment.layer_to_stage().iter().enumerate() {
        weights[stage] += objective.weight(&loads[layer]);
    }
    weights
}

#[cfg(test)]
pub(crate) mod test_support {
    use dynmo_pipeline::LayerLoad;

    /// Build a synthetic layer-load vector from per-layer times; parameters
    /// are proportional to time so both objectives see the same shape unless
    /// a test overrides them.
    pub fn loads_from_times(times: &[f64]) -> Vec<LayerLoad> {
        times
            .iter()
            .enumerate()
            .map(|(id, &t)| LayerLoad {
                layer_id: id,
                fwd_time: t / 3.0,
                bwd_time: 2.0 * t / 3.0,
                param_count: (t * 1.0e6) as u64,
                static_bytes: (t * 1.0e6) as u64 * 16,
                activation_bytes: 1_000,
                migration_bytes: (t * 1.0e6) as u64 * 16,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::loads_from_times;
    use super::*;

    #[test]
    fn objective_weight_selects_the_right_field() {
        let loads = loads_from_times(&[1.0, 2.0]);
        assert_eq!(BalanceObjective::ByTime.weight(&loads[1]), 2.0);
        assert_eq!(BalanceObjective::ByParams.weight(&loads[1]), 2.0e6);
        assert_eq!(BalanceObjective::ByTime.label(), "by-time");
        assert_eq!(BalanceObjective::ByParams.label(), "by-param");
    }

    #[test]
    fn request_builder_sets_fields() {
        let loads = loads_from_times(&[1.0, 1.0, 1.0, 1.0]);
        let current = StageAssignment::uniform(4, 2);
        let request = BalanceRequest::new(&loads, 2, u64::MAX, BalanceObjective::ByTime)
            .with_current(&current)
            .with_inflight(vec![2, 1]);
        assert_eq!(request.num_stages, 2);
        assert!(request.current.is_some());
        assert_eq!(request.inflight, vec![2, 1]);
        assert_eq!(request.weight(0), 1.0);
    }

    #[test]
    fn stage_memory_includes_activations_times_inflight() {
        let loads = loads_from_times(&[1.0, 1.0]);
        let request = BalanceRequest::new(&loads, 2, u64::MAX, BalanceObjective::ByTime)
            .with_inflight(vec![4, 1]);
        let mem_stage0 = request.stage_memory(0, &[0]);
        let mem_stage1 = request.stage_memory(1, &[0]);
        assert_eq!(mem_stage0 - mem_stage1, 3 * 1_000);
    }

    #[test]
    fn stage_weights_sums_per_stage() {
        let loads = loads_from_times(&[1.0, 2.0, 3.0, 4.0]);
        let assignment = StageAssignment::from_counts(&[1, 3]);
        let w = stage_weights(&assignment, &loads, BalanceObjective::ByTime);
        assert_eq!(w, vec![1.0, 9.0]);
    }
}
