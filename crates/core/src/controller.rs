//! The rebalance controller: when to rebalance, and what one rebalance
//! event does (paper §3.1 steps 3–5 and §3.3.1).
//!
//! DynMo rebalances "at regular fixed intervals, without any knowledge of
//! whether the model has changed" — the controller therefore only looks at
//! the iteration counter (via [`RebalancePolicy`]) and, when due, runs:
//! profile → balance → (optionally re-pack) → migrate, returning the new
//! assignment together with the time spent in each phase so the trainer can
//! charge the overhead the way the paper's Figure 4 does.

use dynmo_dynamics::RebalanceFrequency;
use dynmo_pipeline::{CommCostModel, LayerLoad, StageAssignment};
use dynmo_telemetry::Stopwatch;
use serde::{Deserialize, Serialize};

use crate::balancer::{BalanceObjective, BalanceRequest, LoadBalancer};
use crate::migration::MigrationPlan;
use crate::repack::{plan_repack, RepackConfig};

/// Fraction of the layer-migration time that is *exposed* (not hidden behind
/// the backward pass).  The paper couples layer migration with the pipeline's
/// backward-pass communication (§3.3.1, §4.2.1), so most of the transfer is
/// overlapped; the remainder is charged as overhead.
pub const MIGRATION_EXPOSED_FRACTION: f64 = 0.3;

/// When and how the controller intervenes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalancePolicy {
    /// Whether dynamic rebalancing is enabled at all (disabled = static
    /// baseline behaviour).
    pub enabled: bool,
    /// Rebalancing cadence.  `None` defers to the dynamism engine's own
    /// recommended frequency.
    pub frequency: Option<RebalanceFrequency>,
    /// Re-packing configuration; `None` disables consolidation.
    pub repack: Option<RepackConfig>,
}

impl RebalancePolicy {
    /// Dynamic rebalancing at the engine-recommended cadence, no re-packing.
    pub fn dynamic() -> Self {
        RebalancePolicy {
            enabled: true,
            frequency: None,
            repack: None,
        }
    }

    /// Dynamic rebalancing with re-packing enabled under the given config.
    pub fn dynamic_with_repack(repack: RepackConfig) -> Self {
        RebalancePolicy {
            enabled: true,
            frequency: None,
            repack: Some(repack),
        }
    }

    /// A static policy: never rebalance after the initial split.
    pub fn disabled() -> Self {
        RebalancePolicy {
            enabled: false,
            frequency: None,
            repack: None,
        }
    }
}

/// The result of one rebalance event.
#[derive(Debug, Clone)]
pub struct RebalanceOutcome {
    /// The new layer→stage assignment (over `active_workers` stages).
    pub assignment: StageAssignment,
    /// Number of workers that remain active after the event.
    pub active_workers: usize,
    /// Workers released by re-packing during this event (empty without
    /// re-packing).
    pub released_workers: Vec<usize>,
    /// The migration plan from the previous assignment.
    pub migration: MigrationPlan,
    /// Wall-clock seconds the balancing algorithm itself took (measured).
    pub algorithm_time: f64,
    /// Wall-clock seconds spent planning the layer migration (measured;
    /// feeds `OverheadBreakdown.measured`, never simulated results).
    pub planning_time: f64,
    /// Simulated migration time (from the communication model).
    pub migration_time: f64,
    /// Rounds used by the balancer (diffusion) or 1 (partition).
    pub rounds: u64,
}

/// Drives rebalancing and re-packing decisions for the trainer.
pub struct RebalanceController {
    balancer: Box<dyn LoadBalancer + Send>,
    objective: BalanceObjective,
    policy: RebalancePolicy,
}

impl RebalanceController {
    /// Create a controller around a balancer implementation.
    pub fn new(
        balancer: Box<dyn LoadBalancer + Send>,
        objective: BalanceObjective,
        policy: RebalancePolicy,
    ) -> Self {
        RebalanceController {
            balancer,
            objective,
            policy,
        }
    }

    /// The controller's policy.
    pub fn policy(&self) -> &RebalancePolicy {
        &self.policy
    }

    /// The balancer's display name, e.g. `diffusion/by-time`.
    pub fn name(&self) -> String {
        format!("{}/{}", self.balancer.name(), self.objective.label())
    }

    /// Whether a rebalance is due at `iteration`, given the engine's
    /// recommended cadence.
    pub fn is_due(&self, iteration: u64, engine_frequency: RebalanceFrequency) -> bool {
        if !self.policy.enabled || iteration == 0 {
            return false;
        }
        self.policy
            .frequency
            .unwrap_or(engine_frequency)
            .is_due(iteration)
    }

    /// Execute one rebalance event.
    ///
    /// * `current` — the assignment in effect (over the currently active
    ///   workers).
    /// * `loads` — the freshly profiled per-layer loads.
    /// * `memory_capacity` — per-worker memory budget.
    /// * `inflight` — in-flight micro-batches per active stage.
    /// * `comm` — communication model for migration cost.
    /// * `min_workers` — never consolidate below this many workers.
    /// * `num_microbatches` — micro-batches per iteration, used to weigh the
    ///   expected per-iteration benefit of a move against its migration cost.
    /// * `stage_speeds` — per-stage effective speeds on a heterogeneous (or
    ///   straggler-degraded) cluster; `None` = homogeneous.
    /// * `stage_capacities` — per-stage memory capacities; `None` = every
    ///   stage has `memory_capacity`.
    #[allow(clippy::too_many_arguments)]
    pub fn rebalance(
        &self,
        current: &StageAssignment,
        loads: &[LayerLoad],
        memory_capacity: u64,
        inflight: &[usize],
        comm: &CommCostModel,
        min_workers: usize,
        num_microbatches: usize,
        stage_speeds: Option<&[f64]>,
        stage_capacities: Option<&[u64]>,
    ) -> RebalanceOutcome {
        let started = Stopwatch::start();
        let mut active_workers = current.num_stages();
        let mut released_workers = Vec::new();

        // Step 1: re-packing decision (Algorithm 2) to find how many workers
        // the shrunken workload actually needs.
        if let Some(repack) = &self.policy.repack {
            let plan = plan_repack(current, loads, inflight, repack);
            let feasible_workers = plan
                .active_workers
                .len()
                .max(repack.target_num_workers)
                .max(min_workers);
            if feasible_workers < active_workers {
                released_workers = (feasible_workers..active_workers).collect();
                active_workers = feasible_workers;
            }
        }

        // Step 2: balance the layers over the (possibly reduced) worker set.
        // Per-stage vectors follow the same convention as `inflight`:
        // truncated to the active workers, extended by repeating the last
        // entry if re-packing ever grew the set.
        let fit_f64 = |values: &[f64]| -> Vec<f64> {
            values
                .iter()
                .copied()
                .chain(std::iter::repeat(values.last().copied().unwrap_or(1.0)))
                .take(active_workers)
                .collect()
        };
        let fit_u64 = |values: &[u64]| -> Vec<u64> {
            values
                .iter()
                .copied()
                .chain(std::iter::repeat(
                    values.last().copied().unwrap_or(memory_capacity),
                ))
                .take(active_workers)
                .collect()
        };
        let request = BalanceRequest {
            loads,
            num_stages: active_workers,
            memory_capacity,
            inflight: inflight
                .iter()
                .copied()
                .chain(std::iter::repeat(*inflight.last().unwrap_or(&1)))
                .take(active_workers)
                .collect(),
            current: Some(current),
            objective: self.objective,
            stage_speeds: stage_speeds.map(fit_f64),
            stage_capacities: stage_capacities.map(fit_u64),
        };
        let outcome = self.balancer.rebalance(&request);
        let algorithm_time = started.elapsed_seconds();

        // Step 3: migration plan and its exposed cost (most of the transfer
        // is overlapped with the backward pass, per §3.3.1).
        let (migration, planning_time) =
            Stopwatch::time(|| MigrationPlan::between(current, &outcome.assignment, loads));
        let migration_time = migration.cost(comm) * MIGRATION_EXPOSED_FRACTION;

        // Step 4: cost/benefit gate.  Rebalancing chases per-iteration noise
        // in cases like MoE routing; a move is only worth taking when the
        // expected per-iteration time saved exceeds the exposed migration
        // cost.  Worker releases are always applied (they are the point of
        // re-packing), so the gate only applies to pure rebalances.
        if released_workers.is_empty() && !migration.is_empty() {
            let stage_time = |assignment: &StageAssignment, stages: usize| -> f64 {
                let mut totals = vec![0.0f64; stages];
                for (layer, &stage) in assignment.layer_to_stage().iter().enumerate() {
                    if stage < stages {
                        totals[stage] += loads[layer].total_time();
                    }
                }
                if let Some(speeds) = stage_speeds {
                    for (s, total) in totals.iter_mut().enumerate() {
                        *total /= speeds.get(s).copied().unwrap_or(1.0);
                    }
                }
                totals.into_iter().fold(0.0, f64::max)
            };
            let old_bottleneck = stage_time(current, current.num_stages());
            let new_bottleneck = stage_time(&outcome.assignment, active_workers);
            let benefit = (old_bottleneck - new_bottleneck).max(0.0) * num_microbatches as f64;
            if benefit < migration_time {
                return RebalanceOutcome {
                    assignment: current.clone(),
                    active_workers: current.num_stages(),
                    released_workers: Vec::new(),
                    migration: MigrationPlan::default(),
                    algorithm_time,
                    planning_time,
                    migration_time: 0.0,
                    rounds: outcome.rounds,
                };
            }
        }

        RebalanceOutcome {
            assignment: outcome.assignment,
            active_workers,
            released_workers,
            migration,
            algorithm_time,
            planning_time,
            migration_time,
            rounds: outcome.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::PartitionBalancer;
    use dynmo_model::{ClusterConfig, DeviceSpec};

    fn loads(times: &[f64], bytes: u64) -> Vec<LayerLoad> {
        times
            .iter()
            .enumerate()
            .map(|(id, &t)| LayerLoad {
                layer_id: id,
                fwd_time: t,
                bwd_time: 2.0 * t,
                param_count: 1000,
                static_bytes: bytes,
                activation_bytes: 0,
                migration_bytes: bytes,
            })
            .collect()
    }

    fn comm() -> CommCostModel {
        CommCostModel::new(ClusterConfig::homogeneous(8, 8, 1, DeviceSpec::h100_sxm5()))
    }

    fn controller(policy: RebalancePolicy) -> RebalanceController {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            policy,
        )
    }

    #[test]
    fn due_logic_respects_policy_and_engine_frequency() {
        let c = controller(RebalancePolicy::dynamic());
        assert!(!c.is_due(0, RebalanceFrequency::EveryIteration));
        assert!(c.is_due(1, RebalanceFrequency::EveryIteration));
        assert!(c.is_due(1000, RebalanceFrequency::EveryN(1000)));
        assert!(!c.is_due(1001, RebalanceFrequency::EveryN(1000)));

        let disabled = controller(RebalancePolicy::disabled());
        assert!(!disabled.is_due(1, RebalanceFrequency::EveryIteration));

        let fixed = controller(RebalancePolicy {
            enabled: true,
            frequency: Some(RebalanceFrequency::EveryN(7)),
            repack: None,
        });
        assert!(fixed.is_due(7, RebalanceFrequency::EveryIteration));
        assert!(!fixed.is_due(8, RebalanceFrequency::EveryIteration));
    }

    #[test]
    fn rebalance_without_repack_keeps_all_workers() {
        let c = controller(RebalancePolicy::dynamic());
        let current = StageAssignment::uniform(16, 4);
        let loads = loads(
            &(0..16).map(|i| 1.0 + i as f64 * 0.2).collect::<Vec<_>>(),
            100,
        );
        let outcome = c.rebalance(
            &current,
            &loads,
            u64::MAX,
            &[1; 4],
            &comm(),
            1,
            32,
            None,
            None,
        );
        assert_eq!(outcome.active_workers, 4);
        assert!(outcome.released_workers.is_empty());
        assert_eq!(outcome.assignment.num_layers(), 16);
        assert!(outcome.algorithm_time >= 0.0);
        assert!(outcome.planning_time >= 0.0);
        assert!(outcome.rounds >= 1);
        // The skewed load profile forces some migration.
        assert!(!outcome.migration.is_empty());
        assert!(outcome.migration_time > 0.0);
    }

    #[test]
    fn rebalance_with_repack_releases_idle_workers() {
        // Tiny memory footprint: everything fits on one worker, but the
        // repack target floor is 2.
        let repack = RepackConfig {
            max_memory: 1_000_000,
            target_num_workers: 2,
            utilization_cap: 1.0,
        };
        let c = controller(RebalancePolicy::dynamic_with_repack(repack));
        let current = StageAssignment::uniform(16, 8);
        let loads = loads(&[0.5; 16], 10);
        let outcome = c.rebalance(
            &current,
            &loads,
            u64::MAX,
            &[1; 8],
            &comm(),
            1,
            32,
            None,
            None,
        );
        assert_eq!(outcome.active_workers, 2);
        assert_eq!(outcome.released_workers, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(outcome.assignment.num_stages(), 2);
        assert_eq!(outcome.assignment.num_layers(), 16);
    }

    #[test]
    fn min_workers_floor_is_respected() {
        let repack = RepackConfig {
            max_memory: u64::MAX / 2,
            target_num_workers: 1,
            utilization_cap: 1.0,
        };
        let c = controller(RebalancePolicy::dynamic_with_repack(repack));
        let current = StageAssignment::uniform(8, 4);
        let loads = loads(&[0.5; 8], 10);
        let outcome = c.rebalance(
            &current,
            &loads,
            u64::MAX,
            &[1; 4],
            &comm(),
            3,
            32,
            None,
            None,
        );
        assert_eq!(outcome.active_workers, 3);
    }

    #[test]
    fn controller_name_includes_balancer_and_objective() {
        let c = controller(RebalancePolicy::dynamic());
        assert_eq!(c.name(), "partition/by-time");
    }
}
