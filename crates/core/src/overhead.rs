//! Load-balancing overhead accounting (paper §5.2 and Figure 4, right).
//!
//! The paper breaks DynMo's overhead into three components — profiling, the
//! balancing algorithm itself, and the migration of layers between GPUs —
//! and reports them as a percentage of end-to-end training time per case.
//! [`OverheadBreakdown`] accumulates those three buckets, plus a fourth
//! *recovery* bucket introduced by the resilience subsystem: checkpoint
//! writes, checkpoint restores, communicator rebuilds, and replayed
//! iterations after a failure or an elastic re-scale.
//!
//! The four headline buckets are *modeled* seconds: they live on the
//! simulated clock, feed `total()`/`fraction_of()`, and are checkpointed
//! so resumed runs replay bit-for-bit.  [`MeasuredOverhead`] is the
//! wall-clock companion: real seconds observed by `dynmo-telemetry`
//! stopwatches around the balancers, migration planning, and checkpoint
//! I/O.  Measured seconds are diagnostics only — they are **never**
//! checkpointed, never folded into `total()`, and never enter trajectory
//! checksums or sweep determinism pins (they differ run-to-run by
//! machine, and must not change simulated results).

use serde::{Deserialize, Serialize};

/// Wall-clock seconds actually spent inside DynMo's machinery, measured
/// with `dynmo-telemetry` stopwatches (Fig.-4-style numbers that are real
/// rather than modeled).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeasuredOverhead {
    /// Measured seconds inside balancer `rebalance` calls (Partition or
    /// Diffusion decision time, including re-packing).
    pub balancer_seconds: f64,
    /// Measured seconds spent planning layer migrations.
    pub migration_planning_seconds: f64,
    /// Measured seconds spent writing/reading checkpoints.
    pub checkpoint_io_seconds: f64,
    /// Number of stopwatch samples folded in.
    pub samples: u64,
}

impl MeasuredOverhead {
    /// A zeroed measurement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one measured balancer invocation.
    pub fn record_balancer(&mut self, seconds: f64) {
        self.balancer_seconds += seconds;
        self.samples += 1;
    }

    /// Fold in one measured migration-planning pass.
    pub fn record_planning(&mut self, seconds: f64) {
        self.migration_planning_seconds += seconds;
        self.samples += 1;
    }

    /// Fold in one measured checkpoint write/read.
    pub fn record_checkpoint_io(&mut self, seconds: f64) {
        self.checkpoint_io_seconds += seconds;
        self.samples += 1;
    }

    /// Total measured wall-clock seconds.
    pub fn total_seconds(&self) -> f64 {
        self.balancer_seconds + self.migration_planning_seconds + self.checkpoint_io_seconds
    }

    /// Merge another measurement into this one.
    pub fn merge(&mut self, other: &MeasuredOverhead) {
        self.balancer_seconds += other.balancer_seconds;
        self.migration_planning_seconds += other.migration_planning_seconds;
        self.checkpoint_io_seconds += other.checkpoint_io_seconds;
        self.samples += other.samples;
    }
}

/// Accumulated overhead of DynMo's balancing machinery, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// Time spent in profiling iterations.
    pub profiling: f64,
    /// Time spent running the balancing algorithm (decision time).
    pub algorithm: f64,
    /// Time spent migrating layer state between workers.
    pub migration: f64,
    /// Time spent on resilience: checkpoint writes/restores, communicator
    /// rebuilds, and replayed iterations after failures.
    pub recovery: f64,
    /// Number of rebalance events that contributed to the totals.
    pub rebalance_events: u64,
    /// Number of recovery/checkpoint events that contributed to `recovery`.
    pub recovery_events: u64,
    /// Wall-clock seconds measured around the real machinery (diagnostic
    /// only: excluded from [`OverheadBreakdown::total`], checkpoints, and
    /// determinism pins; resets to zero on resume).
    pub measured: MeasuredOverhead,
}

impl OverheadBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one rebalance event's costs.
    pub fn record(&mut self, profiling: f64, algorithm: f64, migration: f64) {
        self.profiling += profiling;
        self.algorithm += algorithm;
        self.migration += migration;
        self.rebalance_events += 1;
    }

    /// Record one resilience event's cost (a checkpoint write, a restore +
    /// replay, or a communicator rebuild).
    pub fn record_recovery(&mut self, seconds: f64) {
        self.recovery += seconds;
        self.recovery_events += 1;
    }

    /// Total overhead in seconds.
    pub fn total(&self) -> f64 {
        self.profiling + self.algorithm + self.migration + self.recovery
    }

    /// Overhead as a fraction of `training_time` (0 when training time is
    /// not positive).
    pub fn fraction_of(&self, training_time: f64) -> f64 {
        if training_time <= 0.0 {
            return 0.0;
        }
        self.total() / training_time
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &OverheadBreakdown) {
        self.profiling += other.profiling;
        self.algorithm += other.algorithm;
        self.migration += other.migration;
        self.recovery += other.recovery;
        self.rebalance_events += other.rebalance_events;
        self.recovery_events += other.recovery_events;
        self.measured.merge(&other.measured);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_the_three_buckets() {
        let mut o = OverheadBreakdown::new();
        o.record(1.0, 0.1, 0.5);
        o.record(2.0, 0.2, 1.0);
        assert_eq!(o.profiling, 3.0);
        assert!((o.algorithm - 0.3).abs() < 1e-12);
        assert_eq!(o.migration, 1.5);
        assert_eq!(o.rebalance_events, 2);
        assert!((o.total() - 4.8).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_training_time() {
        let mut o = OverheadBreakdown::new();
        o.record(1.0, 1.0, 2.0);
        assert!((o.fraction_of(400.0) - 0.01).abs() < 1e-12);
        assert_eq!(o.fraction_of(0.0), 0.0);
        assert_eq!(o.fraction_of(-5.0), 0.0);
    }

    #[test]
    fn merge_combines_breakdowns() {
        let mut a = OverheadBreakdown::new();
        a.record(1.0, 2.0, 3.0);
        let mut b = OverheadBreakdown::new();
        b.record(0.5, 0.5, 0.5);
        b.record_recovery(1.5);
        a.merge(&b);
        assert_eq!(a.total(), 9.0);
        assert_eq!(a.rebalance_events, 2);
        assert_eq!(a.recovery_events, 1);
    }

    #[test]
    fn measured_seconds_stay_out_of_the_modeled_total() {
        let mut o = OverheadBreakdown::new();
        o.record(1.0, 1.0, 1.0);
        o.measured.record_balancer(0.25);
        o.measured.record_planning(0.5);
        o.measured.record_checkpoint_io(0.125);
        // Modeled total ignores wall-clock measurement entirely.
        assert_eq!(o.total(), 3.0);
        assert_eq!(o.measured.total_seconds(), 0.875);
        assert_eq!(o.measured.samples, 3);
        // Merging folds the measured buckets too.
        let mut merged = OverheadBreakdown::new();
        merged.merge(&o);
        assert_eq!(merged.measured, o.measured);
    }

    #[test]
    fn recovery_bucket_feeds_the_total_and_fraction() {
        let mut o = OverheadBreakdown::new();
        o.record_recovery(2.0);
        o.record_recovery(1.0);
        assert_eq!(o.recovery, 3.0);
        assert_eq!(o.recovery_events, 2);
        assert_eq!(o.total(), 3.0);
        assert!((o.fraction_of(300.0) - 0.01).abs() < 1e-12);
        // Rebalance buckets are untouched.
        assert_eq!(o.rebalance_events, 0);
        assert_eq!(o.profiling, 0.0);
    }
}
