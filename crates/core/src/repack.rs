//! Workload re-packing onto fewer workers (paper §3.4, Algorithm 2).
//!
//! As dynamism shrinks the total workload (pruning, freezing, early exit),
//! DynMo consolidates layers onto fewer GPUs with a first-fit pass over
//! worker pairs, subject to the per-GPU memory budget, and releases the
//! emptied GPUs to the job manager.  Re-packing is scheduled at the end of a
//! training iteration (on the existing synchronization barrier) and is
//! infrequent compared to rebalancing.

use dynmo_pipeline::{LayerLoad, StageAssignment};
use serde::{Deserialize, Serialize};

/// Configuration of the re-packing pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepackConfig {
    /// Per-worker memory budget in bytes (`MAX_MEM` in Algorithm 2).
    pub max_memory: u64,
    /// Do not consolidate below this many active workers
    /// (`target_num_workers` in Algorithm 2; the paper lets the user pick
    /// an arbitrary target, unlike PipeTransformer's divide-by-two).
    pub target_num_workers: usize,
    /// Safety factor applied to the memory budget (a destination is only
    /// used up to `max_memory * utilization_cap`).
    pub utilization_cap: f64,
}

impl RepackConfig {
    /// A config with the given budget, a target of 1 worker, and a 90%
    /// utilization cap.
    pub fn new(max_memory: u64) -> Self {
        RepackConfig {
            max_memory,
            target_num_workers: 1,
            utilization_cap: 0.9,
        }
    }
}

/// One layer transfer produced by Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepackTransfer {
    /// Source worker (stage) index.
    pub src: usize,
    /// Destination worker (stage) index.
    pub dst: usize,
    /// The layer being moved.
    pub layer: usize,
}

/// The outcome of a re-packing decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepackPlan {
    /// The transfers to execute, in order (`transfers` in Algorithm 2).
    pub transfers: Vec<RepackTransfer>,
    /// The assignment after applying all transfers.
    pub new_assignment: StageAssignment,
    /// Workers that still hold layers after re-packing.
    pub active_workers: Vec<usize>,
    /// Workers freed by this plan (to be released to the job manager).
    pub released_workers: Vec<usize>,
    /// Per-worker memory usage after re-packing, in bytes.
    pub memory_after: Vec<u64>,
}

impl RepackPlan {
    /// Whether the plan actually frees any workers.
    pub fn releases_any(&self) -> bool {
        !self.released_workers.is_empty()
    }
}

/// Run Algorithm 2 (first-fit pairwise consolidation) over the current
/// assignment.
///
/// * `assignment` — the current layer→stage map.
/// * `loads` — profiled per-layer loads (for memory accounting).
/// * `inflight` — in-flight micro-batches per stage (activation memory).
/// * `config` — memory budget and consolidation target.
pub fn plan_repack(
    assignment: &StageAssignment,
    loads: &[LayerLoad],
    inflight: &[usize],
    config: &RepackConfig,
) -> RepackPlan {
    let num_stages = assignment.num_stages();
    assert_eq!(inflight.len(), num_stages, "one inflight count per stage");
    assert_eq!(
        loads.len(),
        assignment.num_layers(),
        "one load per assigned layer"
    );
    let budget = (config.max_memory as f64 * config.utilization_cap) as u64;

    // Current per-worker memory usage and layer lists.
    let mut stage_layers: Vec<Vec<usize>> =
        (0..num_stages).map(|s| assignment.layers_of(s)).collect();
    let mut mem_usage: Vec<u64> = (0..num_stages)
        .map(|s| stage_memory(&stage_layers[s], loads, inflight[s]))
        .collect();
    let mut active: Vec<bool> = stage_layers.iter().map(|l| !l.is_empty()).collect();
    let mut transfers = Vec::new();

    // Algorithm 2: for each pair (src, dst) with src < dst, if the combined
    // usage fits and we are still above the target, move everything from
    // src to dst and deactivate src.
    for src in 0..num_stages {
        for dst in (src + 1)..num_stages {
            if !active[src] || !active[dst] {
                continue;
            }
            let active_count = active.iter().filter(|&&a| a).count();
            if active_count <= config.target_num_workers {
                break;
            }
            if mem_usage[src] + mem_usage[dst] <= budget {
                // Move all of src's layers to dst.
                let moving = std::mem::take(&mut stage_layers[src]);
                for &layer in &moving {
                    transfers.push(RepackTransfer { src, dst, layer });
                }
                stage_layers[dst].extend(moving);
                stage_layers[dst].sort_unstable();
                mem_usage[dst] += mem_usage[src];
                mem_usage[src] = 0;
                active[src] = false;
            }
        }
    }

    // Build the resulting assignment.
    let mut layer_to_stage = vec![0usize; assignment.num_layers()];
    for (stage, layers) in stage_layers.iter().enumerate() {
        for &layer in layers {
            layer_to_stage[layer] = stage;
        }
    }
    let new_assignment = StageAssignment::new(num_stages, layer_to_stage)
        .expect("repacked assignment uses existing stages");
    let active_workers: Vec<usize> = (0..num_stages).filter(|&s| active[s]).collect();
    let released_workers: Vec<usize> = (0..num_stages)
        .filter(|&s| !active[s] && !assignment.layers_of(s).is_empty())
        .collect();

    RepackPlan {
        transfers,
        new_assignment,
        active_workers,
        released_workers,
        memory_after: mem_usage,
    }
}

fn stage_memory(layers: &[usize], loads: &[LayerLoad], inflight: usize) -> u64 {
    layers
        .iter()
        .map(|&l| loads[l].static_bytes + loads[l].activation_bytes * inflight as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(id: usize, static_bytes: u64) -> LayerLoad {
        LayerLoad {
            layer_id: id,
            fwd_time: 1.0,
            bwd_time: 2.0,
            param_count: 100,
            static_bytes,
            activation_bytes: 0,
            migration_bytes: static_bytes,
        }
    }

    fn simple_case(
        per_layer_bytes: u64,
        layers_per_stage: usize,
        stages: usize,
    ) -> (StageAssignment, Vec<LayerLoad>) {
        let num_layers = layers_per_stage * stages;
        let assignment = StageAssignment::uniform(num_layers, stages);
        let loads: Vec<LayerLoad> = (0..num_layers).map(|i| load(i, per_layer_bytes)).collect();
        (assignment, loads)
    }

    #[test]
    fn repack_consolidates_when_memory_allows() {
        // 4 stages × 2 layers × 100 bytes; budget 900 ⇒ everything fits on
        // one worker (first-fit: stage 0 absorbs 1, 2, 3).
        let (assignment, loads) = simple_case(100, 2, 4);
        let config = RepackConfig {
            max_memory: 1_000,
            target_num_workers: 1,
            utilization_cap: 0.9,
        };
        let plan = plan_repack(&assignment, &loads, &[1; 4], &config);
        assert!(plan.releases_any());
        assert_eq!(plan.active_workers.len(), 1);
        assert_eq!(plan.released_workers.len(), 3);
        assert_eq!(plan.new_assignment.active_stages().len(), 1);
        // All 8 layers end up somewhere and none is duplicated.
        assert_eq!(plan.new_assignment.num_layers(), 8);
        // Algorithm 2's pairwise first-fit cascades: stage 0 merges into 1,
        // then 1 (now 4 layers) into 2, then 2 (6 layers) into 3, so the
        // transfer list records 2 + 4 + 6 = 12 movements.
        assert_eq!(plan.transfers.len(), 12);
    }

    #[test]
    fn repack_respects_the_memory_budget() {
        // Each stage holds 400 bytes; budget 900 × 0.9 = 810 ⇒ only pairs
        // can merge (400+400=800 ≤ 810, but 1200 > 810).
        let (assignment, loads) = simple_case(200, 2, 4);
        let config = RepackConfig {
            max_memory: 900,
            target_num_workers: 1,
            utilization_cap: 0.9,
        };
        let plan = plan_repack(&assignment, &loads, &[1; 4], &config);
        assert_eq!(plan.active_workers.len(), 2);
        for &mem in &plan.memory_after {
            assert!(mem <= 810);
        }
    }

    #[test]
    fn repack_honors_the_target_worker_count() {
        let (assignment, loads) = simple_case(10, 2, 8);
        let config = RepackConfig {
            max_memory: u64::MAX / 4,
            target_num_workers: 4,
            utilization_cap: 1.0,
        };
        let plan = plan_repack(&assignment, &loads, &[1; 8], &config);
        assert_eq!(plan.active_workers.len(), 4);
        assert_eq!(plan.released_workers.len(), 4);
    }

    #[test]
    fn repack_is_a_no_op_when_nothing_fits_together() {
        let (assignment, loads) = simple_case(800, 2, 4);
        let config = RepackConfig {
            max_memory: 1_000,
            target_num_workers: 1,
            utilization_cap: 1.0,
        };
        let plan = plan_repack(&assignment, &loads, &[1; 4], &config);
        assert!(!plan.releases_any());
        assert_eq!(plan.new_assignment, assignment);
        assert!(plan.transfers.is_empty());
    }

    #[test]
    fn activation_memory_counts_against_the_budget() {
        // Static memory alone would allow merging, but activations (scaled
        // by in-flight micro-batches) push the pair over budget.
        let assignment = StageAssignment::uniform(4, 2);
        let loads: Vec<LayerLoad> = (0..4)
            .map(|i| LayerLoad {
                layer_id: i,
                fwd_time: 1.0,
                bwd_time: 2.0,
                param_count: 1,
                static_bytes: 100,
                activation_bytes: 200,
                migration_bytes: 100,
            })
            .collect();
        let config = RepackConfig {
            max_memory: 1_500,
            target_num_workers: 1,
            utilization_cap: 1.0,
        };
        // With 2 in-flight: each stage = 2·(100 + 400) = 1000 > 750 ⇒ no merge.
        let plan = plan_repack(&assignment, &loads, &[2, 2], &config);
        assert!(!plan.releases_any());
        // With 1 in-flight: each stage = 600, pair = 1200 ≤ 1500 ⇒ merge.
        let plan = plan_repack(&assignment, &loads, &[1, 1], &config);
        assert!(plan.releases_any());
    }

    #[test]
    fn already_empty_stages_are_not_reported_as_released() {
        // Stage 2 is already empty before re-packing; releasing it again
        // would double-free it at the job manager.
        let assignment = StageAssignment::from_counts(&[2, 2, 0]);
        let loads: Vec<LayerLoad> = (0..4).map(|i| load(i, 10)).collect();
        let config = RepackConfig::new(1_000_000);
        let plan = plan_repack(&assignment, &loads, &[1; 3], &config);
        assert!(!plan.released_workers.contains(&2));
    }

    #[test]
    #[should_panic(expected = "one inflight count per stage")]
    fn inflight_length_must_match_stages() {
        let (assignment, loads) = simple_case(10, 1, 4);
        let _ = plan_repack(&assignment, &loads, &[1; 2], &RepackConfig::new(100));
    }
}
