//! Layer migration between workers.
//!
//! After a balancing or re-packing decision, the layers that changed stage
//! must physically move: weights, gradients, optimizer state and (for pruned
//! layers) CSR index structures.  The paper couples these transfers with the
//! backward pass of the pipeline schedule (§3.3.1) and reports their cost as
//! the "migration" slice of the overhead breakdown.  This module computes
//! the migration plan and its cost, and can execute the byte movement for
//! real over the `dynmo-runtime` fabric (used by integration tests to make
//! sure the plan is actually executable).

use dynmo_pipeline::{CommCostModel, LayerLoad, StageAssignment};
use dynmo_runtime::{Communicator, Payload, Result as RtResult};
use serde::{Deserialize, Serialize};

/// One layer movement between two workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStep {
    /// The layer being moved.
    pub layer: usize,
    /// Stage currently holding the layer.
    pub from_stage: usize,
    /// Stage that will hold the layer.
    pub to_stage: usize,
    /// Bytes that must be transferred.
    pub bytes: u64,
}

/// A full migration plan between two assignments.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The individual layer movements.
    pub steps: Vec<MigrationStep>,
}

impl MigrationPlan {
    /// Build the plan that transforms `from` into `to`, using `loads` for
    /// per-layer byte counts.
    pub fn between(from: &StageAssignment, to: &StageAssignment, loads: &[LayerLoad]) -> Self {
        let steps = from
            .diff(to)
            .into_iter()
            .map(|(layer, from_stage, to_stage)| MigrationStep {
                layer,
                from_stage,
                to_stage,
                bytes: loads[layer].migration_bytes,
            })
            .collect();
        MigrationPlan { steps }
    }

    /// Whether any layer actually moves.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of layers moved.
    pub fn num_moves(&self) -> usize {
        self.steps.len()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes).sum()
    }

    /// Wall-clock cost of the migration under `comm`.  Transfers between
    /// distinct worker pairs proceed in parallel (they use disjoint links),
    /// so the cost is the maximum over pairs of the per-pair serialized
    /// transfer time.
    pub fn cost(&self, comm: &CommCostModel) -> f64 {
        use std::collections::HashMap;
        let mut per_pair: HashMap<(usize, usize), f64> = HashMap::new();
        for step in &self.steps {
            let time = comm.migration_time(step.bytes, step.from_stage, step.to_stage);
            *per_pair
                .entry((step.from_stage, step.to_stage))
                .or_insert(0.0) += time;
        }
        per_pair.values().copied().fold(0.0, f64::max)
    }

    /// Execute the plan over a communicator whose local rank `my_stage`
    /// corresponds to a pipeline stage.  `layer_data` provides the payload
    /// for each layer this rank currently owns; the function returns the
    /// payloads this rank received (the layers it now owns).
    ///
    /// Every stage participating in the communicator must call this
    /// collectively.  Tags encode the layer id so concurrent transfers
    /// between the same pair of stages do not collide.
    pub fn execute(
        &self,
        comm: &Communicator,
        my_stage: usize,
        layer_data: &dyn Fn(usize) -> Vec<f32>,
    ) -> RtResult<Vec<(usize, Vec<f32>)>> {
        // Sends first (non-blocking fabric), then receives.
        for step in &self.steps {
            if step.from_stage == my_stage {
                let payload = Payload::F32(layer_data(step.layer));
                comm.send(step.to_stage, step.layer as u32, payload)?;
            }
        }
        let mut received = Vec::new();
        for step in &self.steps {
            if step.to_stage == my_stage {
                let payload = comm.recv(step.from_stage, step.layer as u32)?;
                received.push((step.layer, payload.into_f32()?));
            }
        }
        Ok(received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::{ClusterConfig, DeviceSpec};
    use dynmo_runtime::launch;

    fn loads(n: usize, bytes: u64) -> Vec<LayerLoad> {
        (0..n)
            .map(|i| LayerLoad {
                layer_id: i,
                fwd_time: 1.0,
                bwd_time: 2.0,
                param_count: 10,
                static_bytes: bytes,
                activation_bytes: 0,
                migration_bytes: bytes,
            })
            .collect()
    }

    fn comm_model() -> CommCostModel {
        CommCostModel::new(ClusterConfig::homogeneous(4, 4, 1, DeviceSpec::h100_sxm5()))
    }

    #[test]
    fn plan_between_identical_assignments_is_empty() {
        let a = StageAssignment::uniform(8, 4);
        let plan = MigrationPlan::between(&a, &a, &loads(8, 100));
        assert!(plan.is_empty());
        assert_eq!(plan.total_bytes(), 0);
        assert_eq!(plan.cost(&comm_model()), 0.0);
    }

    #[test]
    fn plan_lists_moved_layers_with_bytes() {
        let a = StageAssignment::uniform(8, 4);
        let mut b = a.clone();
        b.move_layer(0, 3).unwrap();
        b.move_layer(7, 0).unwrap();
        let plan = MigrationPlan::between(&a, &b, &loads(8, 1_000));
        assert_eq!(plan.num_moves(), 2);
        assert_eq!(plan.total_bytes(), 2_000);
        assert!(plan.cost(&comm_model()) > 0.0);
        let layers: Vec<usize> = plan.steps.iter().map(|s| s.layer).collect();
        assert!(layers.contains(&0) && layers.contains(&7));
    }

    #[test]
    fn cost_parallelizes_across_distinct_pairs() {
        let a = StageAssignment::uniform(8, 4);
        // Plan 1: two layers both moving 0→1 (serialized on one link).
        let mut serial = a.clone();
        serial.move_layer(0, 1).unwrap();
        serial.move_layer(1, 1).unwrap();
        // Plan 2: one layer 0→1 and one layer 4→3 (different pairs).
        let mut parallel = a.clone();
        parallel.move_layer(0, 1).unwrap();
        parallel.move_layer(6, 2).unwrap();
        let l = loads(8, 100_000_000);
        let comm = comm_model();
        let serial_cost = MigrationPlan::between(&a, &serial, &l).cost(&comm);
        let parallel_cost = MigrationPlan::between(&a, &parallel, &l).cost(&comm);
        assert!(serial_cost > parallel_cost * 1.5);
    }

    #[test]
    fn execute_moves_layer_payloads_between_ranks() {
        // 4 stages; layers 0..7 uniformly assigned; rebalance moves layer 1
        // from stage 0 to stage 3 and layer 6 from stage 3 to stage 1.
        let from = StageAssignment::uniform(8, 4);
        let mut to = from.clone();
        to.move_layer(1, 3).unwrap();
        to.move_layer(6, 1).unwrap();
        let plan = MigrationPlan::between(&from, &to, &loads(8, 16));
        let results = launch(4, move |ctx| {
            let comm = ctx.world();
            let my_stage = ctx.rank();
            let data = |layer: usize| vec![layer as f32; 4];
            plan.execute(&comm, my_stage, &data).unwrap()
        })
        .unwrap();
        // Stage 3 received layer 1; stage 1 received layer 6.
        assert_eq!(results[3], vec![(1, vec![1.0; 4])]);
        assert_eq!(results[1], vec![(6, vec![6.0; 4])]);
        assert!(results[0].is_empty());
        assert!(results[2].is_empty());
    }
}
