//! Elastic GPU release (paper §3.4.2).
//!
//! After re-packing, the emptied GPUs are removed from the active NCCL
//! communicator (`ncclCommSplit`) and released back to the cluster manager —
//! the paper integrates with ECK (Elastic Cloud on Kubernetes) by PATCHing
//! the pod spec's GPU resource requests.  Here the Kubernetes side is a
//! [`JobManager`] trait with an in-process [`MockJobManager`] that tracks
//! the fleet, so the release/acquire protocol and its accounting are
//! exercised end-to-end without a cluster.

use serde::{Deserialize, Serialize};

/// The interface DynMo uses to hand GPUs back to (and request them from)
/// the cluster's job manager.
pub trait JobManager {
    /// Release the given workers; they become available to other jobs.
    /// Returns the number of workers actually accepted.
    fn release(&mut self, workers: &[usize]) -> usize;

    /// Request `count` workers back; returns the ids granted (possibly
    /// fewer than requested).
    fn acquire(&mut self, count: usize) -> Vec<usize>;

    /// Number of workers currently allocated to this job.
    fn allocated(&self) -> usize;
}

/// A record of one release/acquire event, used for the cost-savings
/// accounting (GPU-hours returned to the cluster).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// Training iteration at which the event happened.
    pub iteration: u64,
    /// Positive = GPUs released, negative = GPUs re-acquired.
    pub delta: i64,
    /// GPUs allocated to the job after the event.
    pub allocated_after: usize,
}

/// An in-process job manager that tracks which workers belong to the job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MockJobManager {
    total_workers: usize,
    allocated: Vec<bool>,
    events: Vec<FleetEvent>,
    current_iteration: u64,
}

impl MockJobManager {
    /// Create a manager with all `total_workers` initially allocated to the
    /// job.
    pub fn new(total_workers: usize) -> Self {
        MockJobManager {
            total_workers,
            allocated: vec![true; total_workers],
            events: Vec::new(),
            current_iteration: 0,
        }
    }

    /// Inform the manager of the current training iteration (for event
    /// timestamps).
    pub fn set_iteration(&mut self, iteration: u64) {
        self.current_iteration = iteration;
    }

    /// The release/acquire history.
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// Average number of allocated GPUs over `total_iterations`, assuming
    /// the allocation recorded at each event persists until the next event.
    /// This is the "average number of GPUs used over 10,000 iterations"
    /// metric of the paper's Figure 4.
    pub fn average_allocated(&self, total_iterations: u64) -> f64 {
        if total_iterations == 0 {
            return self.allocated() as f64;
        }
        let mut previous_iteration = 0u64;
        let mut previous_alloc = self.total_workers as f64;
        let mut weighted = 0.0f64;
        for event in &self.events {
            let span = event.iteration.saturating_sub(previous_iteration) as f64;
            weighted += span * previous_alloc;
            previous_iteration = event.iteration;
            previous_alloc = event.allocated_after as f64;
        }
        weighted += (total_iterations.saturating_sub(previous_iteration)) as f64 * previous_alloc;
        weighted / total_iterations as f64
    }
}

impl JobManager for MockJobManager {
    fn release(&mut self, workers: &[usize]) -> usize {
        let mut released = 0usize;
        for &w in workers {
            if w < self.total_workers && self.allocated[w] {
                self.allocated[w] = false;
                released += 1;
            }
        }
        if released > 0 {
            self.events.push(FleetEvent {
                iteration: self.current_iteration,
                delta: released as i64,
                allocated_after: self.allocated(),
            });
        }
        released
    }

    fn acquire(&mut self, count: usize) -> Vec<usize> {
        let mut granted = Vec::new();
        for w in 0..self.total_workers {
            if granted.len() == count {
                break;
            }
            if !self.allocated[w] {
                self.allocated[w] = true;
                granted.push(w);
            }
        }
        if !granted.is_empty() {
            self.events.push(FleetEvent {
                iteration: self.current_iteration,
                delta: -(granted.len() as i64),
                allocated_after: self.allocated(),
            });
        }
        granted
    }

    fn allocated(&self) -> usize {
        self.allocated.iter().filter(|&&a| a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_and_acquire_round_trip() {
        let mut manager = MockJobManager::new(8);
        assert_eq!(manager.allocated(), 8);
        assert_eq!(manager.release(&[6, 7]), 2);
        assert_eq!(manager.allocated(), 6);
        // Releasing the same workers again is a no-op.
        assert_eq!(manager.release(&[6, 7]), 0);
        // Out-of-range workers are ignored.
        assert_eq!(manager.release(&[99]), 0);
        let granted = manager.acquire(3);
        assert_eq!(granted, vec![6, 7]);
        assert_eq!(manager.allocated(), 8);
    }

    #[test]
    fn events_record_the_fleet_history() {
        let mut manager = MockJobManager::new(4);
        manager.set_iteration(100);
        manager.release(&[3]);
        manager.set_iteration(200);
        manager.release(&[2]);
        manager.set_iteration(300);
        manager.acquire(1);
        let events = manager.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].allocated_after, 3);
        assert_eq!(events[1].allocated_after, 2);
        assert_eq!(events[2].delta, -1);
        assert_eq!(events[2].allocated_after, 3);
    }

    #[test]
    fn average_allocation_matches_the_figure4_accounting() {
        // 8 GPUs for the first 2,300 iterations, then 6 until 6,700, then 4
        // until 8,500, then 2 — the Figure 4 "average number of GPUs"
        // bottom panel for the 24-layer model reports 5.4 (the small
        // difference to the exact 5.5 of this idealized timeline comes from
        // the paper's re-pack points not landing exactly on those
        // iterations).
        let mut manager = MockJobManager::new(8);
        manager.set_iteration(2_300);
        manager.release(&[6, 7]);
        manager.set_iteration(6_700);
        manager.release(&[4, 5]);
        manager.set_iteration(8_500);
        manager.release(&[2, 3]);
        let average = manager.average_allocated(10_000);
        assert!((average - 5.5).abs() < 0.05, "average {average}");
    }

    #[test]
    fn average_with_no_events_is_the_full_fleet() {
        let manager = MockJobManager::new(16);
        assert_eq!(manager.average_allocated(10_000), 16.0);
        assert_eq!(manager.average_allocated(0), 16.0);
    }
}
