//! Elastic GPU release (paper §3.4.2).
//!
//! After re-packing, the emptied GPUs are removed from the active NCCL
//! communicator (`ncclCommSplit`) and released back to the cluster manager —
//! the paper integrates with ECK (Elastic Cloud on Kubernetes) by PATCHing
//! the pod spec's GPU resource requests.  Here the Kubernetes side is a
//! [`JobManager`] trait with an in-process [`MockJobManager`] that tracks
//! the fleet, so the release/acquire protocol and its accounting are
//! exercised end-to-end without a cluster.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Rejected fleet operations (double release/acquire, unknown workers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetError {
    /// A worker id outside the fleet.
    UnknownWorker(usize),
    /// Releasing a worker the job does not currently hold.
    NotAllocated(usize),
    /// Acquiring a worker the job already holds.
    AlreadyAllocated(usize),
    /// The same worker id appears twice in one request.
    DuplicateWorker(usize),
    /// Releasing a worker reserved by a different owner.
    NotOwner(usize),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownWorker(w) => write!(f, "worker {w} is not part of the fleet"),
            FleetError::NotAllocated(w) => {
                write!(
                    f,
                    "worker {w} is not allocated to the job (double release?)"
                )
            }
            FleetError::AlreadyAllocated(w) => {
                write!(
                    f,
                    "worker {w} is already allocated to the job (double acquire?)"
                )
            }
            FleetError::DuplicateWorker(w) => {
                write!(f, "worker {w} appears more than once in the request")
            }
            FleetError::NotOwner(w) => {
                write!(f, "worker {w} is reserved by a different owner")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// The interface DynMo uses to hand GPUs back to (and request them from)
/// the cluster's job manager.
pub trait JobManager {
    /// Release the given workers; they become available to other jobs.
    /// Returns the number of workers actually accepted.
    fn release(&mut self, workers: &[usize]) -> usize;

    /// Request `count` workers back; returns the ids granted (possibly
    /// fewer than requested).
    fn acquire(&mut self, count: usize) -> Vec<usize>;

    /// Number of workers currently allocated to this job.
    fn allocated(&self) -> usize;
}

/// A record of one release/acquire event, used for the cost-savings
/// accounting (GPU-hours returned to the cluster).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// Training iteration at which the event happened.
    pub iteration: u64,
    /// Positive = GPUs released, negative = GPUs re-acquired.
    pub delta: i64,
    /// GPUs allocated to the job after the event.
    pub allocated_after: usize,
}

/// A named owner holding reservations in the fleet (a tenant's serving
/// deployment, or the training job).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct OwnerEntry {
    name: String,
    priority: u8,
}

/// An in-process job manager that tracks which workers belong to the job.
///
/// Reservations may be *tagged* with an owner name and a priority (the
/// multi-tenant fleet controller's arbitration data): an owned worker can
/// only be released by its owner, so two parties racing a release against
/// an acquire can never double-count a block — the untagged legacy paths
/// keep their original semantics for single-job callers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MockJobManager {
    total_workers: usize,
    allocated: Vec<bool>,
    /// Per-worker owner tag: an index into `owners`, or `None` for workers
    /// allocated through the untagged legacy paths.
    owner: Vec<Option<usize>>,
    owners: Vec<OwnerEntry>,
    /// Workers allocated at construction — the baseline the delta ledger
    /// and `average_allocated` reconcile against.
    initial_allocated: usize,
    events: Vec<FleetEvent>,
    current_iteration: u64,
    rejected_releases: u64,
    rejected_acquires: u64,
}

impl MockJobManager {
    /// Create a manager with all `total_workers` initially allocated to the
    /// job.
    pub fn new(total_workers: usize) -> Self {
        MockJobManager {
            total_workers,
            allocated: vec![true; total_workers],
            owner: vec![None; total_workers],
            owners: Vec::new(),
            initial_allocated: total_workers,
            events: Vec::new(),
            current_iteration: 0,
            rejected_releases: 0,
            rejected_acquires: 0,
        }
    }

    /// Create a manager with every worker initially *free* — the shared
    /// GPU pool a fleet controller hands out to named owners.
    pub fn empty(total_workers: usize) -> Self {
        MockJobManager {
            allocated: vec![false; total_workers],
            initial_allocated: 0,
            ..MockJobManager::new(total_workers)
        }
    }

    /// Release requests that were rejected (double release, unknown or
    /// duplicate ids) instead of silently dropped.
    pub fn rejected_releases(&self) -> u64 {
        self.rejected_releases
    }

    /// Acquire requests that were rejected (double acquire, unknown or
    /// duplicate ids).
    pub fn rejected_acquires(&self) -> u64 {
        self.rejected_acquires
    }

    /// Strict release: every id must be in-fleet, currently allocated, and
    /// unique within the request, or the whole request is rejected and the
    /// fleet is left untouched.
    pub fn try_release(&mut self, workers: &[usize]) -> Result<(), FleetError> {
        self.validate_request(workers, true)?;
        let released = self.release(workers);
        debug_assert_eq!(released, workers.len());
        Ok(())
    }

    /// Strict by-id acquire (the elastic *grow* path re-acquiring the exact
    /// workers it released): every id must be in-fleet, currently free, and
    /// unique within the request, or the whole request is rejected.
    pub fn try_acquire(&mut self, workers: &[usize]) -> Result<(), FleetError> {
        self.validate_request(workers, false)?;
        for &w in workers {
            self.allocated[w] = true;
        }
        if !workers.is_empty() {
            self.events.push(FleetEvent {
                iteration: self.current_iteration,
                delta: -(workers.len() as i64),
                allocated_after: self.allocated(),
            });
        }
        Ok(())
    }

    fn validate_request(&mut self, workers: &[usize], releasing: bool) -> Result<(), FleetError> {
        self.validate_request_as(workers, releasing, None)
    }

    /// Shared validation for the strict paths.  `releaser` is the owner
    /// name a release is performed as: `None` is the untagged legacy job,
    /// which may only release untagged workers — so a bulk release racing a
    /// tenant's tagged acquire can never free (and double-count) the
    /// tenant's block.
    fn validate_request_as(
        &mut self,
        workers: &[usize],
        releasing: bool,
        releaser: Option<&str>,
    ) -> Result<(), FleetError> {
        let reject = |counter: &mut u64, error: FleetError| {
            *counter += 1;
            Err(error)
        };
        let counter = if releasing {
            &mut self.rejected_releases
        } else {
            &mut self.rejected_acquires
        };
        let mut seen = vec![false; self.total_workers];
        for &w in workers {
            if w >= self.total_workers {
                return reject(counter, FleetError::UnknownWorker(w));
            }
            if seen[w] {
                return reject(counter, FleetError::DuplicateWorker(w));
            }
            seen[w] = true;
            if releasing && !self.allocated[w] {
                return reject(counter, FleetError::NotAllocated(w));
            }
            if !releasing && self.allocated[w] {
                return reject(counter, FleetError::AlreadyAllocated(w));
            }
            if releasing {
                let held_by = self.owner[w].map(|i| self.owners[i].name.as_str());
                if held_by != releaser {
                    return reject(counter, FleetError::NotOwner(w));
                }
            }
        }
        Ok(())
    }

    fn owner_index(&mut self, name: &str, priority: u8) -> usize {
        if let Some(i) = self.owners.iter().position(|o| o.name == name) {
            self.owners[i].priority = priority;
            return i;
        }
        self.owners.push(OwnerEntry {
            name: name.to_string(),
            priority,
        });
        self.owners.len() - 1
    }

    /// Strict owner-tagged by-id acquire: every id must be free, and the
    /// granted workers are reserved for `owner` at `priority` — only
    /// `owner` can release them again.
    pub fn try_acquire_as(
        &mut self,
        owner: &str,
        priority: u8,
        workers: &[usize],
    ) -> Result<(), FleetError> {
        self.validate_request(workers, false)?;
        let tag = self.owner_index(owner, priority);
        for &w in workers {
            self.allocated[w] = true;
            self.owner[w] = Some(tag);
        }
        if !workers.is_empty() {
            self.events.push(FleetEvent {
                iteration: self.current_iteration,
                delta: -(workers.len() as i64),
                allocated_after: self.allocated(),
            });
        }
        Ok(())
    }

    /// Lenient owner-tagged acquire: grant up to `count` free workers
    /// (lowest ids first), reserved for `owner` at `priority`.
    pub fn acquire_as(&mut self, owner: &str, priority: u8, count: usize) -> Vec<usize> {
        let tag = self.owner_index(owner, priority);
        let granted: Vec<usize> = (0..self.total_workers)
            .filter(|&w| !self.allocated[w])
            .take(count)
            .collect();
        for &w in &granted {
            self.allocated[w] = true;
            self.owner[w] = Some(tag);
        }
        if !granted.is_empty() {
            self.events.push(FleetEvent {
                iteration: self.current_iteration,
                delta: -(granted.len() as i64),
                allocated_after: self.allocated(),
            });
        }
        granted
    }

    /// Strict owner-tagged release: every id must be currently reserved by
    /// `owner`, or the whole request is rejected ([`FleetError::NotOwner`]
    /// if another owner holds it) and the fleet is left untouched.
    pub fn try_release_as(&mut self, owner: &str, workers: &[usize]) -> Result<(), FleetError> {
        self.validate_request_as(workers, true, Some(owner))?;
        for &w in workers {
            self.allocated[w] = false;
            self.owner[w] = None;
        }
        if !workers.is_empty() {
            self.events.push(FleetEvent {
                iteration: self.current_iteration,
                delta: workers.len() as i64,
                allocated_after: self.allocated(),
            });
        }
        Ok(())
    }

    /// Workers currently reserved by `owner`.
    pub fn allocated_to(&self, owner: &str) -> usize {
        let Some(tag) = self.owners.iter().position(|o| o.name == owner) else {
            return 0;
        };
        self.owner.iter().filter(|&&o| o == Some(tag)).count()
    }

    /// The owner holding `worker`, if the reservation is tagged.
    pub fn owner_of(&self, worker: usize) -> Option<&str> {
        self.owner
            .get(worker)
            .copied()
            .flatten()
            .map(|i| self.owners[i].name.as_str())
    }

    /// The priority `owner` registered with its reservations.
    pub fn priority_of(&self, owner: &str) -> Option<u8> {
        self.owners
            .iter()
            .find(|o| o.name == owner)
            .map(|o| o.priority)
    }

    /// Among owners holding workers with priority strictly below `below`,
    /// the one with the lowest priority (first-registered wins ties) — the
    /// fleet controller's preemption victim.
    pub fn preemption_candidate(&self, below: u8) -> Option<&str> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(tag, o)| o.priority < below && self.owner.contains(&Some(*tag)))
            .min_by_key(|(_, o)| o.priority)
            .map(|(_, o)| o.name.as_str())
    }

    /// Inform the manager of the current training iteration (for event
    /// timestamps).  The clock is monotone: a caller presenting an older
    /// timestamp (two owners interleaving out of order) cannot rewind it,
    /// which would corrupt the time-weighted [`Self::average_allocated`]
    /// accounting with negative spans.
    pub fn set_iteration(&mut self, iteration: u64) {
        self.current_iteration = self.current_iteration.max(iteration);
    }

    /// Workers currently free in the fleet (released by this job and not
    /// yet re-acquired) — what an autoscaler can still grab without
    /// over-subscribing the cluster.
    pub fn available(&self) -> usize {
        self.total_workers - self.allocated()
    }

    /// The release/acquire history.
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// Average number of allocated GPUs over `total_iterations`, assuming
    /// the allocation recorded at each event persists until the next event.
    /// This is the "average number of GPUs used over 10,000 iterations"
    /// metric of the paper's Figure 4.
    pub fn average_allocated(&self, total_iterations: u64) -> f64 {
        if total_iterations == 0 {
            return self.allocated() as f64;
        }
        let mut previous_iteration = 0u64;
        let mut previous_alloc = self.initial_allocated as f64;
        let mut weighted = 0.0f64;
        for event in &self.events {
            let span = event.iteration.saturating_sub(previous_iteration) as f64;
            weighted += span * previous_alloc;
            previous_iteration = event.iteration;
            previous_alloc = event.allocated_after as f64;
        }
        weighted += (total_iterations.saturating_sub(previous_iteration)) as f64 * previous_alloc;
        weighted / total_iterations as f64
    }
}

impl JobManager for MockJobManager {
    fn release(&mut self, workers: &[usize]) -> usize {
        let mut released = 0usize;
        for &w in workers {
            if w < self.total_workers && self.allocated[w] && self.owner[w].is_none() {
                self.allocated[w] = false;
                released += 1;
            } else {
                // Double release, unknown id, or a worker reserved by a
                // named owner: rejected, not double counted — and surfaced
                // in the rejection counter.
                self.rejected_releases += 1;
            }
        }
        if released > 0 {
            self.events.push(FleetEvent {
                iteration: self.current_iteration,
                delta: released as i64,
                allocated_after: self.allocated(),
            });
        }
        released
    }

    fn acquire(&mut self, count: usize) -> Vec<usize> {
        let mut granted = Vec::new();
        for w in 0..self.total_workers {
            if granted.len() == count {
                break;
            }
            if !self.allocated[w] {
                self.allocated[w] = true;
                granted.push(w);
            }
        }
        if !granted.is_empty() {
            self.events.push(FleetEvent {
                iteration: self.current_iteration,
                delta: -(granted.len() as i64),
                allocated_after: self.allocated(),
            });
        }
        granted
    }

    fn allocated(&self) -> usize {
        self.allocated.iter().filter(|&&a| a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_and_acquire_round_trip() {
        let mut manager = MockJobManager::new(8);
        assert_eq!(manager.allocated(), 8);
        assert_eq!(manager.available(), 0);
        assert_eq!(manager.release(&[6, 7]), 2);
        assert_eq!(manager.allocated(), 6);
        assert_eq!(manager.available(), 2);
        // Releasing the same workers again is a no-op.
        assert_eq!(manager.release(&[6, 7]), 0);
        // Out-of-range workers are ignored.
        assert_eq!(manager.release(&[99]), 0);
        let granted = manager.acquire(3);
        assert_eq!(granted, vec![6, 7]);
        assert_eq!(manager.allocated(), 8);
    }

    #[test]
    fn events_record_the_fleet_history() {
        let mut manager = MockJobManager::new(4);
        manager.set_iteration(100);
        manager.release(&[3]);
        manager.set_iteration(200);
        manager.release(&[2]);
        manager.set_iteration(300);
        manager.acquire(1);
        let events = manager.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].allocated_after, 3);
        assert_eq!(events[1].allocated_after, 2);
        assert_eq!(events[2].delta, -1);
        assert_eq!(events[2].allocated_after, 3);
    }

    #[test]
    fn average_allocation_matches_the_figure4_accounting() {
        // 8 GPUs for the first 2,300 iterations, then 6 until 6,700, then 4
        // until 8,500, then 2 — the Figure 4 "average number of GPUs"
        // bottom panel for the 24-layer model reports 5.4 (the small
        // difference to the exact 5.5 of this idealized timeline comes from
        // the paper's re-pack points not landing exactly on those
        // iterations).
        let mut manager = MockJobManager::new(8);
        manager.set_iteration(2_300);
        manager.release(&[6, 7]);
        manager.set_iteration(6_700);
        manager.release(&[4, 5]);
        manager.set_iteration(8_500);
        manager.release(&[2, 3]);
        let average = manager.average_allocated(10_000);
        assert!((average - 5.5).abs() < 0.05, "average {average}");
    }

    #[test]
    fn average_with_no_events_is_the_full_fleet() {
        let manager = MockJobManager::new(16);
        assert_eq!(manager.average_allocated(10_000), 16.0);
        assert_eq!(manager.average_allocated(0), 16.0);
    }

    #[test]
    fn double_release_and_double_acquire_are_rejected() {
        let mut manager = MockJobManager::new(4);
        manager.try_release(&[2, 3]).unwrap();
        // Strict double release fails and leaves the fleet untouched.
        assert_eq!(
            manager.try_release(&[3]).unwrap_err(),
            FleetError::NotAllocated(3)
        );
        assert_eq!(manager.allocated(), 2);
        // Strict double acquire of a held worker fails.
        assert_eq!(
            manager.try_acquire(&[0]).unwrap_err(),
            FleetError::AlreadyAllocated(0)
        );
        // Re-acquiring the released workers by id succeeds exactly once.
        manager.try_acquire(&[2, 3]).unwrap();
        assert_eq!(manager.allocated(), 4);
        assert_eq!(
            manager.try_acquire(&[2]).unwrap_err(),
            FleetError::AlreadyAllocated(2)
        );
        assert_eq!(manager.rejected_releases(), 1);
        assert_eq!(manager.rejected_acquires(), 2);
    }

    #[test]
    fn duplicate_and_unknown_ids_are_rejected_atomically() {
        let mut manager = MockJobManager::new(4);
        assert_eq!(
            manager.try_release(&[1, 1]).unwrap_err(),
            FleetError::DuplicateWorker(1)
        );
        assert_eq!(
            manager.try_release(&[99]).unwrap_err(),
            FleetError::UnknownWorker(99)
        );
        // A rejected request changed nothing and logged no event.
        assert_eq!(manager.allocated(), 4);
        assert!(manager.events().is_empty());
        // The lenient trait-level release also counts its rejects.
        assert_eq!(manager.release(&[0, 0, 42]), 1);
        assert_eq!(manager.rejected_releases(), 2 + 2);
    }

    #[test]
    fn fleet_event_deltas_always_sum_to_the_allocation_changes() {
        // Drive a pseudo-random mix of lenient and strict operations and
        // check after every step that the event ledger reconciles exactly
        // with the live allocation count.
        let total = 9usize;
        let mut manager = MockJobManager::new(total);
        let mut rng_state: u64 = 0x00dd_b0b1_5bad_5eed;
        let mut rng = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for step in 0..500u64 {
            manager.set_iteration(step);
            let worker = (rng() % total as u64) as usize;
            match rng() % 4 {
                0 => {
                    manager.release(&[worker, (worker + 1) % total]);
                }
                1 => {
                    manager.acquire((rng() % 3) as usize);
                }
                2 => {
                    let _ = manager.try_release(&[worker]);
                }
                _ => {
                    let _ = manager.try_acquire(&[worker]);
                }
            }
            let delta_sum: i64 = manager.events().iter().map(|e| e.delta).sum();
            assert_eq!(
                manager.allocated() as i64,
                total as i64 - delta_sum,
                "ledger out of sync at step {step}"
            );
            if let Some(event) = manager.events().last() {
                assert!(event.allocated_after <= total);
            }
        }
        // Every event's running `allocated_after` is consistent with the
        // cumulative deltas up to that point.
        let mut running = total as i64;
        for event in manager.events() {
            running -= event.delta;
            assert_eq!(event.allocated_after as i64, running);
        }
    }

    #[test]
    fn owner_tags_gate_releases_and_survive_interleaving() {
        let mut pool = MockJobManager::empty(8);
        assert_eq!(pool.allocated(), 0);
        assert_eq!(pool.available(), 8);
        let trainer = pool.acquire_as("trainer", 1, 4);
        assert_eq!(trainer, vec![0, 1, 2, 3]);
        pool.try_acquire_as("chat", 3, &[4, 5]).unwrap();
        assert_eq!(pool.allocated_to("trainer"), 4);
        assert_eq!(pool.allocated_to("chat"), 2);
        assert_eq!(pool.owner_of(4), Some("chat"));
        assert_eq!(pool.priority_of("chat"), Some(3));

        // The trainer cannot release chat's block — no matter which path.
        assert_eq!(
            pool.try_release_as("trainer", &[4]).unwrap_err(),
            FleetError::NotOwner(4)
        );
        assert_eq!(pool.release(&[4, 5]), 0, "legacy bulk release refused");
        assert_eq!(pool.allocated_to("chat"), 2);
        // The strict legacy release is refused on tagged workers too.
        assert_eq!(pool.try_release(&[0]).unwrap_err(), FleetError::NotOwner(0));

        // Chat's own release frees the block for the trainer to re-acquire.
        pool.try_release_as("chat", &[4, 5]).unwrap();
        pool.try_acquire_as("trainer", 1, &[4, 5]).unwrap();
        assert_eq!(pool.allocated_to("trainer"), 6);
        assert_eq!(pool.allocated_to("chat"), 0);

        // Preemption scans tagged holdings by priority.
        pool.try_release_as("trainer", &[4, 5]).unwrap();
        let batch = pool.acquire_as("batch", 2, 2);
        assert_eq!(batch, vec![4, 5]);
        // The lowest-priority holder below the threshold is the victim.
        assert_eq!(pool.preemption_candidate(3), Some("trainer"));
        assert_eq!(pool.preemption_candidate(2), Some("trainer"));
        assert_eq!(pool.preemption_candidate(1), None);
        // With the trainer out of the pool, batch (priority 2) is next.
        pool.try_release_as("trainer", &[0, 1, 2, 3]).unwrap();
        assert_eq!(pool.preemption_candidate(3), Some("batch"));
    }

    #[test]
    fn monotone_clock_survives_out_of_order_owners() {
        // Two owners stamping the ledger out of order must not rewind the
        // clock: the second event may not claim an earlier iteration, or
        // the time-weighted average would count a negative span.
        let mut pool = MockJobManager::empty(4);
        pool.set_iteration(100);
        pool.acquire_as("a", 1, 2);
        pool.set_iteration(40); // stale clock from a slower owner
        pool.acquire_as("b", 2, 2);
        let events = pool.events();
        assert_eq!(events[0].iteration, 100);
        assert_eq!(events[1].iteration, 100, "clock must not rewind");
        // 0 GPUs for 100 iterations, 2 for 0, 4 for 100 → average 2.
        assert!((pool.average_allocated(200) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multi_owner_interleaved_ledger_reconciles_every_step() {
        // The S1 extension of the delta-sum invariant: three owners (a
        // trainer and two tenants) racing tagged acquires/releases against
        // the legacy untagged paths, with deliberately out-of-order clocks.
        // After every step: the event deltas reconcile with the live
        // allocation, per-owner holdings sum to the tagged allocation, and
        // no block is ever double-counted.
        let total = 12usize;
        let mut pool = MockJobManager::empty(total);
        let owners = [("trainer", 1u8), ("chat", 3u8), ("batch", 2u8)];
        let mut rng_state: u64 = 0x5eed_f1ee_7000_0001;
        let mut rng = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for step in 0..1000u64 {
            // Out-of-order stamps: each owner runs its own skewed clock.
            pool.set_iteration(step.saturating_sub(rng() % 5));
            let (name, priority) = owners[(rng() % 3) as usize];
            let worker = (rng() % total as u64) as usize;
            match rng() % 6 {
                0 => {
                    pool.acquire_as(name, priority, (rng() % 4) as usize);
                }
                1 => {
                    let _ = pool.try_acquire_as(name, priority, &[worker]);
                }
                2 => {
                    let _ = pool.try_release_as(name, &[worker]);
                }
                // The owner releasing everything it holds (drain-all).
                3 => {
                    let held: Vec<usize> = (0..total)
                        .filter(|&w| pool.owner_of(w) == Some(name))
                        .collect();
                    if !held.is_empty() {
                        pool.try_release_as(name, &held).unwrap();
                    }
                }
                // Legacy untagged traffic racing the tagged owners.
                4 => {
                    pool.acquire((rng() % 3) as usize);
                }
                _ => {
                    pool.release(&[worker, (worker + 1) % total]);
                }
            }
            let delta_sum: i64 = pool.events().iter().map(|e| e.delta).sum();
            assert_eq!(
                pool.allocated() as i64,
                -delta_sum,
                "ledger out of sync at step {step} (empty pool starts at 0)"
            );
            let tagged: usize = owners.iter().map(|(n, _)| pool.allocated_to(n)).sum();
            let untagged =
                (0..total).filter(|&w| pool.owner_of(w).is_none()).count() - pool.available();
            assert_eq!(
                tagged + untagged,
                pool.allocated(),
                "owner holdings out of sync at step {step}"
            );
            assert!(pool.allocated() <= total);
        }
        // The event clock never rewinds.
        for pair in pool.events().windows(2) {
            assert!(pair[1].iteration >= pair[0].iteration);
        }
        // Running `allocated_after` is consistent with the cumulative
        // deltas from the empty start.
        let mut running = 0i64;
        for event in pool.events() {
            running -= event.delta;
            assert_eq!(event.allocated_after as i64, running);
        }
    }
}
