//! Checkpoint → crash → resume harness for composite dynamics runs.
//!
//! The multi-rank harness in [`crate::recovery`] proves recovery for the
//! synthetic proxy workload; this module closes the same loop for the
//! *simulated trainer* driving a real dynamism stack: a
//! [`ComposedEngine`](dynmo_dynamics::ComposedEngine) run is checkpointed
//! periodically (each sub-engine's RNG streams and masks captured in the
//! snapshot's [`EngineState`](dynmo_dynamics::EngineState)), a crash is
//! simulated at a chosen iteration, and a *fresh* trainer with a *fresh*
//! engine stack restores the snapshot and replays the lost iterations.
//!
//! The replay is **bit-for-bit**: the recovered run's
//! [`trajectory_checksum`](crate::report::TrainingReport::trajectory_checksum)
//! — an FNV-1a over every iteration's simulated time, tokens, imbalance,
//! and layer→stage assignment — must equal the failure-free run's, which
//! [`run_composite_with_recovery`] checks and reports.

use dynmo_dynamics::{ComposedEngine, DynamismEngine};
use dynmo_model::Model;
use dynmo_resilience::{MemoryCheckpointStore, TrainerState};

use crate::controller::RebalanceController;
use crate::report::TrainingReport;
use crate::trainer::{Trainer, TrainerConfig};

/// Builds the pieces a composite recovery session needs fresh copies of:
/// the controller (trainers consume one each) and the engine stack (the
/// crashed stack's state dies with it; the recovered stack is rebuilt from
/// seeds and restored from the checkpoint).
pub struct CompositeRunSpec<'a> {
    /// The model every run trains.
    pub model: &'a Model,
    /// The trainer configuration (its `num_iterations` is the full run).
    pub config: &'a TrainerConfig,
    /// Factory for the rebalance controller.
    pub make_controller: &'a dyn Fn() -> RebalanceController,
    /// Factory for the engine stack, identically seeded on every call.
    pub make_stack: &'a dyn Fn() -> Vec<Box<dyn DynamismEngine + Send>>,
}

/// Outcome of one checkpoint → crash → resume session.
#[derive(Debug, Clone)]
pub struct CompositeRecoveryReport {
    /// The failure-free reference run.
    pub baseline: TrainingReport,
    /// The run that crashed at `killed_at` and was resumed from the last
    /// checkpoint.
    pub recovered: TrainingReport,
    /// Iteration at which the crash was simulated.
    pub killed_at: u64,
    /// Checkpoint iteration the recovery resumed from.
    pub resumed_from: u64,
    /// Iterations re-executed because of the rollback.
    pub replayed: u64,
    /// Whether the recovered trajectory is bit-identical to the baseline
    /// (`trajectory_checksum` and `total_tokens` both match).
    pub bit_identical: bool,
}

/// Run a composite stack end-to-end three times — failure-free, crashed at
/// `kill_at`, and resumed from the crashed run's last checkpoint — and
/// check the recovered trajectory reproduces the failure-free one
/// bit-for-bit.
///
/// `checkpoint_interval` must divide into the run early enough that at
/// least one checkpoint exists before `kill_at` (i.e. `kill_at >=
/// checkpoint_interval`), and `kill_at` must precede the end of the run.
pub fn run_composite_with_recovery(
    spec: &CompositeRunSpec<'_>,
    checkpoint_interval: u64,
    kill_at: u64,
) -> Result<CompositeRecoveryReport, String> {
    if checkpoint_interval == 0 {
        return Err("checkpoint_interval must be positive".into());
    }
    if kill_at < checkpoint_interval {
        return Err(format!(
            "kill_at {kill_at} precedes the first checkpoint at {checkpoint_interval}"
        ));
    }
    if kill_at >= spec.config.num_iterations {
        return Err(format!(
            "kill_at {kill_at} is not mid-run (run has {} iterations)",
            spec.config.num_iterations
        ));
    }

    // Failure-free reference.
    let mut baseline_trainer = Trainer::new(
        spec.model.clone(),
        spec.config.clone(),
        (spec.make_controller)(),
    )
    .with_checkpointing(Box::new(MemoryCheckpointStore::new()), checkpoint_interval);
    let baseline = baseline_trainer.run_stack((spec.make_stack)());

    // The run that dies at `kill_at`: identical configuration, truncated at
    // the crash point.  Its checkpoint store is all that survives.  The
    // crashed prefix is deterministic and bit-identical to the baseline's,
    // so its checkpoint *could* be pulled from the baseline store instead —
    // but the baseline's retention window may have evicted every snapshot
    // ≤ kill_at by the end of the full run, and a harness that recovers
    // from a store written by a genuinely truncated process is the claim
    // being tested, so the extra prefix run is deliberate.
    let mut crashed_config = spec.config.clone();
    crashed_config.num_iterations = kill_at;
    let mut crashed_trainer =
        Trainer::new(spec.model.clone(), crashed_config, (spec.make_controller)())
            .with_checkpointing(Box::new(MemoryCheckpointStore::new()), checkpoint_interval);
    crashed_trainer.run_stack((spec.make_stack)());

    let checkpoint = crashed_trainer
        .checkpoint_store()
        .expect("crashed trainer was built with checkpointing")
        .latest()
        .map_err(|e| format!("reading the crashed run's checkpoint store: {e}"))?
        .ok_or("the crashed run left no checkpoint to recover from")?;
    let state: TrainerState = checkpoint
        .verify()
        .map_err(|e| format!("verifying the crash checkpoint: {e}"))?
        .clone();
    let resumed_from = state.iteration;

    // Recovery: fresh trainer, fresh (identically seeded) stack, restored
    // from the snapshot, replaying everything from the checkpoint on.
    let mut recovered_trainer = Trainer::new(
        spec.model.clone(),
        spec.config.clone(),
        (spec.make_controller)(),
    )
    .with_checkpointing(Box::new(MemoryCheckpointStore::new()), checkpoint_interval);
    let mut recovered_stack = ComposedEngine::new((spec.make_stack)())?;
    let recovered = recovered_trainer.resume(&mut recovered_stack, &state)?;

    let bit_identical = recovered.trajectory_checksum == baseline.trajectory_checksum
        && recovered.total_tokens == baseline.total_tokens;
    Ok(CompositeRecoveryReport {
        baseline,
        recovered,
        killed_at: kill_at,
        resumed_from,
        replayed: kill_at - resumed_from,
        bit_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{BalanceObjective, DiffusionBalancer, PartitionBalancer};
    use crate::controller::RebalancePolicy;
    use dynmo_dynamics::{
        EarlyExitEngine, EarlyExitMethod, GradualPruningEngine, MoeEngine, PruningSchedule,
        RoutingStrategy,
    };
    use dynmo_model::{ClusterConfig, DeviceSpec, ModelPreset};
    use dynmo_pipeline::ScheduleKind;

    fn mixtral() -> Model {
        Model::from_preset(ModelPreset::Mixtral8x7b)
    }

    fn config(stages: usize, iterations: u64, schedule: ScheduleKind) -> TrainerConfig {
        TrainerConfig {
            cluster: ClusterConfig::homogeneous(stages, stages, 1, DeviceSpec::h100_sxm5()),
            schedule,
            num_iterations: iterations,
            num_microbatches: stages * 4,
            allreduce_overlap: 0.8,
            objective: BalanceObjective::ByTime,
            min_workers: 1,
        }
    }

    fn three_mechanism_stack(model: &Model) -> Vec<Box<dyn DynamismEngine + Send>> {
        let schedule = PruningSchedule {
            initial_sparsity: 0.0,
            final_sparsity: 0.9,
            start_iteration: 20,
            frequency: 20,
            num_steps: 3,
        };
        vec![
            Box::new(MoeEngine::new(
                model,
                RoutingStrategy::TokenChoiceAuxLoss,
                42,
            )),
            Box::new(GradualPruningEngine::new(model, schedule, 43)),
            Box::new(EarlyExitEngine::new(model, EarlyExitMethod::Calm, 44)),
        ]
    }

    fn partition_controller() -> RebalanceController {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    }

    fn diffusion_controller() -> RebalanceController {
        RebalanceController::new(
            Box::new(DiffusionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    }

    #[test]
    fn three_mechanism_recovery_is_bit_identical_under_both_balancers() {
        // The acceptance scenario: MoE + gradual pruning + early exit,
        // through the trainer, both balancer families, and a ZB-H1 run for
        // the partition row, with a mid-run kill between checkpoints.
        let model = mixtral();
        for (make_controller, schedule) in [
            (
                &partition_controller as &dyn Fn() -> RebalanceController,
                ScheduleKind::ZeroBubbleH1,
            ),
            (
                &diffusion_controller as &dyn Fn() -> RebalanceController,
                ScheduleKind::OneFOneB,
            ),
        ] {
            let config = config(4, 90, schedule);
            let spec = CompositeRunSpec {
                model: &model,
                config: &config,
                make_controller,
                make_stack: &|| three_mechanism_stack(&model),
            };
            let report = run_composite_with_recovery(&spec, 25, 63).unwrap();
            assert!(
                report.bit_identical,
                "{schedule:?}: recovered {:#018x} vs baseline {:#018x}",
                report.recovered.trajectory_checksum, report.baseline.trajectory_checksum
            );
            assert_eq!(report.resumed_from, 50);
            assert_eq!(report.replayed, 13);
            assert_eq!(report.recovered.total_tokens, report.baseline.total_tokens);
            // The recovered run really did rebalance (composite stacks with
            // an MoE member rebalance every iteration).
            assert!(report.recovered.rebalance_events > 0);
        }
    }

    #[test]
    fn invalid_sessions_are_rejected() {
        let model = mixtral();
        let config = config(4, 50, ScheduleKind::OneFOneB);
        let spec = CompositeRunSpec {
            model: &model,
            config: &config,
            make_controller: &partition_controller,
            make_stack: &|| three_mechanism_stack(&model),
        };
        assert!(run_composite_with_recovery(&spec, 0, 10).is_err());
        assert!(run_composite_with_recovery(&spec, 20, 10).is_err());
        assert!(run_composite_with_recovery(&spec, 10, 50).is_err());
    }
}
