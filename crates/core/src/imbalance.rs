//! Load-imbalance metrics (paper §2, Equations 1–2).

use serde::{Deserialize, Serialize};

/// Equation 2: `ΔL = (L_max − L_min) / mean(L)` over per-worker loads.
/// Empty or all-zero load vectors map to 0.
pub fn load_imbalance(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = loads.iter().copied().fold(f64::MIN, f64::max);
    let min = loads.iter().copied().fold(f64::MAX, f64::min);
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    (max - min) / mean
}

/// The maximum load across workers (Equation 1's `L_max`), the quantity the
/// balancing objective minimizes (`min_A max_i L_i`).
pub fn bottleneck(loads: &[f64]) -> f64 {
    loads.iter().copied().fold(0.0, f64::max)
}

/// A rolling record of imbalance over training, used by the experiment
/// harness to plot "before vs after rebalancing" traces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceHistory {
    samples: Vec<(u64, f64)>,
}

impl ImbalanceHistory {
    /// Create an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the imbalance observed at `iteration`.
    pub fn record(&mut self, iteration: u64, imbalance: f64) {
        self.samples.push((iteration, imbalance));
    }

    /// All recorded samples in insertion order.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// Mean imbalance over all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum imbalance seen (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_matches_hand_computation() {
        // loads 2, 4, 6: (6-2)/4 = 1.
        assert!((load_imbalance(&[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert_eq!(load_imbalance(&[5.0, 5.0]), 0.0);
        assert_eq!(load_imbalance(&[]), 0.0);
        assert_eq!(load_imbalance(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn bottleneck_is_the_max_load() {
        assert_eq!(bottleneck(&[1.0, 7.0, 3.0]), 7.0);
        assert_eq!(bottleneck(&[]), 0.0);
    }

    #[test]
    fn history_tracks_mean_and_max() {
        let mut h = ImbalanceHistory::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        h.record(0, 0.5);
        h.record(100, 1.5);
        h.record(200, 1.0);
        assert_eq!(h.samples().len(), 3);
        assert!((h.mean() - 1.0).abs() < 1e-12);
        assert_eq!(h.max(), 1.5);
    }
}
