//! The profiling step of DynMo (paper §3.1 and §4).
//!
//! "The first iteration after each dynamism operation is used for profiling
//! the time it takes to execute each layer in the altered model and the
//! memory usage of all workers."  In the paper this is implemented by
//! extending Megatron's built-in timers and reading PyTorch CUDA memory
//! statistics; here the same information is derived from the analytical
//! cost/memory models scaled by the dynamism engine's current
//! [`LoadUpdate`].  The result is the per-layer [`LayerLoad`] vector that
//! both balancer families and the re-packer consume.

use dynmo_dynamics::LoadUpdate;
use dynmo_model::{DeviceSpec, Model};
use dynmo_pipeline::LayerLoad;

/// Produces per-layer load snapshots from a model and the current dynamism
/// state.
#[derive(Debug, Clone)]
pub struct Profiler {
    device: DeviceSpec,
}

impl Profiler {
    /// Create a profiler that converts FLOPs to time using `device`.
    pub fn new(device: DeviceSpec) -> Self {
        Profiler { device }
    }

    /// The device spec used for time conversion.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Profile every layer of `model` under the dynamism state `update`.
    pub fn profile(&self, model: &Model, update: &LoadUpdate) -> Vec<LayerLoad> {
        profile_layers(model, update, &self.device)
    }

    /// The wall-clock cost of profiling itself.  The paper reuses a regular
    /// training iteration for measurement (Megatron's built-in timers plus
    /// PyTorch CUDA memory statistics), so the only extra work is reading
    /// the timers and memory counters for every layer — a per-layer constant,
    /// not an extra pass over the model.
    pub fn profiling_cost(&self, loads: &[LayerLoad]) -> f64 {
        const TIMER_READOUT_PER_LAYER: f64 = 50.0e-6;
        loads.len() as f64 * TIMER_READOUT_PER_LAYER
    }
}

/// Free-function form of [`Profiler::profile`].
pub fn profile_layers(model: &Model, update: &LoadUpdate, device: &DeviceSpec) -> Vec<LayerLoad> {
    assert_eq!(
        update.num_layers(),
        model.num_layers(),
        "LoadUpdate must cover every model layer"
    );
    let memory = model.memory_model();
    model
        .layers()
        .iter()
        .map(|layer| {
            let l = layer.id;
            let fwd_time = device.compute_time(layer.flops_fwd * update.fwd_scale[l]);
            let bwd_time = if update.bwd_scale[l] > 0.0 {
                device.compute_time(layer.flops_bwd * update.bwd_scale[l])
            } else {
                0.0
            };
            let retention = update.param_retention[l];
            let param_count = (layer.param_count as f64 * retention) as u64;
            let dense_static = memory.layer_static_bytes(layer, 1.0);
            let static_bytes = (dense_static as f64 * update.memory_scale[l]) as u64;
            let activation_bytes = memory.layer_activation_bytes(layer);
            // Migration moves weights + optimizer state (+ sparse indices),
            // i.e. the static footprint, not the activations.
            let migration_bytes = static_bytes;
            LayerLoad {
                layer_id: l,
                fwd_time,
                bwd_time,
                param_count,
                static_bytes,
                activation_bytes,
                migration_bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;

    fn gpt() -> Model {
        Model::from_preset(ModelPreset::Gpt { layers: 24 })
    }

    #[test]
    fn identity_update_reproduces_baseline_costs() {
        let model = gpt();
        let device = DeviceSpec::h100_sxm5();
        let profiler = Profiler::new(device);
        let loads = profiler.profile(&model, &LoadUpdate::identity(model.num_layers()));
        assert_eq!(loads.len(), model.num_layers());
        for (load, layer) in loads.iter().zip(model.layers().iter()) {
            assert_eq!(load.layer_id, layer.id);
            assert_eq!(load.param_count, layer.param_count);
            assert!((load.fwd_time - device.compute_time(layer.flops_fwd)).abs() < 1e-12);
            assert!((load.bwd_time - device.compute_time(layer.flops_bwd)).abs() < 1e-12);
            assert!(load.static_bytes > 0);
            assert!(load.activation_bytes > 0);
        }
    }

    #[test]
    fn scales_are_applied_per_layer() {
        let model = gpt();
        let profiler = Profiler::new(DeviceSpec::h100_sxm5());
        let mut update = LoadUpdate::identity(model.num_layers());
        let target = model.transformer_layer_ids()[3];
        update.fwd_scale[target] = 0.5;
        update.bwd_scale[target] = 0.0; // e.g. frozen
        update.memory_scale[target] = 0.25;
        update.param_retention[target] = 0.25;
        let loads = profiler.profile(&model, &update);
        let baseline = profiler.profile(&model, &LoadUpdate::identity(model.num_layers()));
        assert!(loads[target].fwd_time < baseline[target].fwd_time);
        assert_eq!(loads[target].bwd_time, 0.0);
        assert!(loads[target].static_bytes < baseline[target].static_bytes);
        assert!(loads[target].param_count < baseline[target].param_count);
        // Other layers are untouched.
        let other = model.transformer_layer_ids()[5];
        assert_eq!(loads[other], baseline[other]);
    }

    #[test]
    fn profiling_cost_is_a_cheap_timer_readout() {
        let model = gpt();
        let profiler = Profiler::new(DeviceSpec::h100_sxm5());
        let loads = profiler.profile(&model, &LoadUpdate::identity(model.num_layers()));
        let cost = profiler.profiling_cost(&loads);
        // Reading out per-layer timers is far cheaper than executing the
        // model: well under a millisecond per layer, and much smaller than
        // one forward+backward pass.
        let full_pass: f64 = loads.iter().map(|l| l.fwd_time + l.bwd_time).sum();
        assert!(cost > 0.0);
        assert!(cost < full_pass);
        assert!(cost < 1.0e-3 * loads.len() as f64);
    }

    #[test]
    #[should_panic(expected = "every model layer")]
    fn mismatched_update_length_panics() {
        let model = gpt();
        let profiler = Profiler::new(DeviceSpec::h100_sxm5());
        let _ = profiler.profile(&model, &LoadUpdate::identity(3));
    }

    #[test]
    fn slower_device_produces_longer_times() {
        let model = gpt();
        let update = LoadUpdate::identity(model.num_layers());
        let h100 = profile_layers(&model, &update, &DeviceSpec::h100_sxm5());
        let a100 = profile_layers(&model, &update, &DeviceSpec::a100_sxm4());
        assert!(a100[1].fwd_time > h100[1].fwd_time);
    }
}
