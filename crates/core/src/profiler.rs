//! The profiling step of DynMo (paper §3.1 and §4).
//!
//! "The first iteration after each dynamism operation is used for profiling
//! the time it takes to execute each layer in the altered model and the
//! memory usage of all workers."  In the paper this is implemented by
//! extending Megatron's built-in timers and reading PyTorch CUDA memory
//! statistics; here the same information is derived from the analytical
//! cost/memory models scaled by the dynamism engine's current
//! [`LoadUpdate`].  The result is the per-layer [`LayerLoad`] vector that
//! both balancer families and the re-packer consume.

use dynmo_dynamics::LoadUpdate;
use dynmo_model::{DeviceSpec, Model};
use dynmo_pipeline::LayerLoad;

/// Produces per-layer load snapshots from a model and the current dynamism
/// state.
#[derive(Debug, Clone)]
pub struct Profiler {
    device: DeviceSpec,
}

impl Profiler {
    /// Create a profiler that converts FLOPs to time using `device`.
    pub fn new(device: DeviceSpec) -> Self {
        Profiler { device }
    }

    /// The device spec used for time conversion.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Profile every layer of `model` under the dynamism state `update`.
    pub fn profile(&self, model: &Model, update: &LoadUpdate) -> Vec<LayerLoad> {
        profile_layers(model, update, &self.device)
    }

    /// The wall-clock cost of profiling itself.  The paper reuses a regular
    /// training iteration for measurement (Megatron's built-in timers plus
    /// PyTorch CUDA memory statistics), so the only extra work is reading
    /// the timers and memory counters for every layer — a per-layer constant,
    /// not an extra pass over the model.
    pub fn profiling_cost(&self, loads: &[LayerLoad]) -> f64 {
        const TIMER_READOUT_PER_LAYER: f64 = 50.0e-6;
        loads.len() as f64 * TIMER_READOUT_PER_LAYER
    }
}

/// Ratio of observed to expected stage time above which an observation
/// counts as "slow".  Transient jitter below this never registers, so the
/// detector only reacts to sustained degradation (thermal throttling, a
/// failing NIC, a noisy neighbour on a shared node).
pub const STRAGGLER_THRESHOLD: f64 = 1.2;

/// Consecutive slow observations required before a stage is confirmed as a
/// *persistent* straggler and its effective speed is downgraded.
pub const STRAGGLER_MIN_HITS: u32 = 3;

/// Detects persistent stragglers from the profiler's per-stage timings.
///
/// Every iteration the trainer feeds the observed per-stage compute times
/// next to the times the device specs predict.  A stage whose ratio exceeds
/// [`STRAGGLER_THRESHOLD`] for [`STRAGGLER_MIN_HITS`] consecutive
/// observations is *confirmed*: its effective speed (expected/observed,
/// capped at 1.0) is recorded and fed to the balancer as a per-stage speed
/// downgrade, so subsequent rebalances shift layers off the slow worker.
/// Confirmation is sticky — a straggler that looks healthy again after the
/// balancer unloaded it stays downgraded.
#[derive(Debug, Clone)]
pub struct StragglerDetector {
    threshold: f64,
    min_hits: u32,
    hits: Vec<u32>,
    /// Confirmed effective speed per stage; exactly 1.0 = healthy.
    speeds: Vec<f64>,
}

impl StragglerDetector {
    /// A detector over `num_stages` stages with the default sensitivity.
    pub fn new(num_stages: usize) -> Self {
        Self::with_params(num_stages, STRAGGLER_THRESHOLD, STRAGGLER_MIN_HITS)
    }

    /// A detector with explicit sensitivity parameters.
    pub fn with_params(num_stages: usize, threshold: f64, min_hits: u32) -> Self {
        assert!(threshold > 1.0, "threshold must exceed 1.0");
        assert!(min_hits >= 1, "min_hits must be at least 1");
        StragglerDetector {
            threshold,
            min_hits,
            hits: vec![0; num_stages],
            speeds: vec![1.0; num_stages],
        }
    }

    /// Feed one round of per-stage timings (`observed[s]` measured,
    /// `expected[s]` predicted by the device specs).  Shorter slices than
    /// the detector's stage count are fine — a re-packed pipeline simply
    /// stops reporting the released stages.  Returns the stages *newly
    /// confirmed* this round as `(stage, effective_speed)` pairs.
    pub fn observe(&mut self, observed: &[f64], expected: &[f64]) -> Vec<(usize, f64)> {
        assert_eq!(observed.len(), expected.len());
        let mut confirmed = Vec::new();
        for s in 0..observed.len().min(self.hits.len()) {
            if expected[s] <= 0.0 {
                self.hits[s] = 0;
                continue;
            }
            let ratio = observed[s] / expected[s];
            if ratio >= self.threshold {
                self.hits[s] = self.hits[s].saturating_add(1);
                if self.hits[s] == self.min_hits && self.speeds[s] == 1.0 {
                    self.speeds[s] = (expected[s] / observed[s]).clamp(f64::MIN_POSITIVE, 1.0);
                    confirmed.push((s, self.speeds[s]));
                }
            } else if self.speeds[s] == 1.0 {
                // Unconfirmed stages must be *consecutively* slow; confirmed
                // ones keep their downgrade even when they look healthy
                // (the balancer unloading them is exactly what we expect).
                self.hits[s] = 0;
            }
        }
        confirmed
    }

    /// Whether `stage` has been confirmed as a straggler.
    pub fn is_straggler(&self, stage: usize) -> bool {
        self.speeds.get(stage).is_some_and(|&v| v < 1.0)
    }

    /// Per-stage effective-speed downgrades, or `None` while every stage is
    /// healthy (so homogeneous, straggler-free runs keep the speed-free
    /// balancer path bit-for-bit).
    pub fn downgrades(&self) -> Option<Vec<f64>> {
        if self.speeds.iter().all(|&v| v == 1.0) {
            None
        } else {
            Some(self.speeds.clone())
        }
    }
}

/// Free-function form of [`Profiler::profile`].
pub fn profile_layers(model: &Model, update: &LoadUpdate, device: &DeviceSpec) -> Vec<LayerLoad> {
    assert_eq!(
        update.num_layers(),
        model.num_layers(),
        "LoadUpdate must cover every model layer"
    );
    let memory = model.memory_model();
    model
        .layers()
        .iter()
        .map(|layer| {
            let l = layer.id;
            let fwd_time = device.compute_time(layer.flops_fwd * update.fwd_scale[l]);
            let bwd_time = if update.bwd_scale[l] > 0.0 {
                device.compute_time(layer.flops_bwd * update.bwd_scale[l])
            } else {
                0.0
            };
            let retention = update.param_retention[l];
            let param_count = (layer.param_count as f64 * retention) as u64;
            let dense_static = memory.layer_static_bytes(layer, 1.0);
            let static_bytes = (dense_static as f64 * update.memory_scale[l]) as u64;
            let activation_bytes = memory.layer_activation_bytes(layer);
            // Migration moves weights + optimizer state (+ sparse indices),
            // i.e. the static footprint, not the activations.
            let migration_bytes = static_bytes;
            LayerLoad {
                layer_id: l,
                fwd_time,
                bwd_time,
                param_count,
                static_bytes,
                activation_bytes,
                migration_bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;

    fn gpt() -> Model {
        Model::from_preset(ModelPreset::Gpt { layers: 24 })
    }

    #[test]
    fn identity_update_reproduces_baseline_costs() {
        let model = gpt();
        let device = DeviceSpec::h100_sxm5();
        let profiler = Profiler::new(device);
        let loads = profiler.profile(&model, &LoadUpdate::identity(model.num_layers()));
        assert_eq!(loads.len(), model.num_layers());
        for (load, layer) in loads.iter().zip(model.layers().iter()) {
            assert_eq!(load.layer_id, layer.id);
            assert_eq!(load.param_count, layer.param_count);
            assert!((load.fwd_time - device.compute_time(layer.flops_fwd)).abs() < 1e-12);
            assert!((load.bwd_time - device.compute_time(layer.flops_bwd)).abs() < 1e-12);
            assert!(load.static_bytes > 0);
            assert!(load.activation_bytes > 0);
        }
    }

    #[test]
    fn scales_are_applied_per_layer() {
        let model = gpt();
        let profiler = Profiler::new(DeviceSpec::h100_sxm5());
        let mut update = LoadUpdate::identity(model.num_layers());
        let target = model.transformer_layer_ids()[3];
        update.fwd_scale[target] = 0.5;
        update.bwd_scale[target] = 0.0; // e.g. frozen
        update.memory_scale[target] = 0.25;
        update.param_retention[target] = 0.25;
        let loads = profiler.profile(&model, &update);
        let baseline = profiler.profile(&model, &LoadUpdate::identity(model.num_layers()));
        assert!(loads[target].fwd_time < baseline[target].fwd_time);
        assert_eq!(loads[target].bwd_time, 0.0);
        assert!(loads[target].static_bytes < baseline[target].static_bytes);
        assert!(loads[target].param_count < baseline[target].param_count);
        // Other layers are untouched.
        let other = model.transformer_layer_ids()[5];
        assert_eq!(loads[other], baseline[other]);
    }

    #[test]
    fn profiling_cost_is_a_cheap_timer_readout() {
        let model = gpt();
        let profiler = Profiler::new(DeviceSpec::h100_sxm5());
        let loads = profiler.profile(&model, &LoadUpdate::identity(model.num_layers()));
        let cost = profiler.profiling_cost(&loads);
        // Reading out per-layer timers is far cheaper than executing the
        // model: well under a millisecond per layer, and much smaller than
        // one forward+backward pass.
        let full_pass: f64 = loads.iter().map(|l| l.fwd_time + l.bwd_time).sum();
        assert!(cost > 0.0);
        assert!(cost < full_pass);
        assert!(cost < 1.0e-3 * loads.len() as f64);
    }

    #[test]
    #[should_panic(expected = "every model layer")]
    fn mismatched_update_length_panics() {
        let model = gpt();
        let profiler = Profiler::new(DeviceSpec::h100_sxm5());
        let _ = profiler.profile(&model, &LoadUpdate::identity(3));
    }

    #[test]
    fn transient_spikes_never_confirm_a_straggler() {
        let mut detector = StragglerDetector::new(4);
        let expected = [1.0, 1.0, 1.0, 1.0];
        // Two slow rounds, then a healthy one, repeatedly: the consecutive
        // counter resets and stage 2 is never confirmed.
        for _ in 0..5 {
            assert!(detector
                .observe(&[1.0, 1.0, 2.0, 1.0], &expected)
                .is_empty());
            assert!(detector
                .observe(&[1.0, 1.0, 2.0, 1.0], &expected)
                .is_empty());
            assert!(detector
                .observe(&[1.0, 1.0, 1.0, 1.0], &expected)
                .is_empty());
        }
        assert!(!detector.is_straggler(2));
        assert!(detector.downgrades().is_none());
    }

    #[test]
    fn persistent_slowdown_confirms_once_with_the_estimated_speed() {
        let mut detector = StragglerDetector::new(4);
        let expected = [1.0, 1.0, 1.0, 1.0];
        let observed = [1.0, 1.0, 2.0, 1.0];
        assert!(detector.observe(&observed, &expected).is_empty());
        assert!(detector.observe(&observed, &expected).is_empty());
        let confirmed = detector.observe(&observed, &expected);
        assert_eq!(confirmed, vec![(2, 0.5)]);
        // Further slow rounds do not re-confirm.
        assert!(detector.observe(&observed, &expected).is_empty());
        assert!(detector.is_straggler(2));
        assert_eq!(detector.downgrades(), Some(vec![1.0, 1.0, 0.5, 1.0]));
        // A confirmed straggler that looks healthy again (the balancer
        // unloaded it) keeps its downgrade.
        assert!(detector.observe(&expected, &expected).is_empty());
        assert!(detector.is_straggler(2));
    }

    #[test]
    fn shrunken_pipelines_report_fewer_stages() {
        let mut detector = StragglerDetector::new(8);
        // Only 2 active stages after re-packing; must not panic or confirm.
        for _ in 0..10 {
            assert!(detector.observe(&[1.0, 1.0], &[1.0, 1.0]).is_empty());
        }
        assert!(detector.downgrades().is_none());
    }

    #[test]
    fn slower_device_produces_longer_times() {
        let model = gpt();
        let update = LoadUpdate::identity(model.num_layers());
        let h100 = profile_layers(&model, &update, &DeviceSpec::h100_sxm5());
        let a100 = profile_layers(&model, &update, &DeviceSpec::a100_sxm4());
        assert!(a100[1].fwd_time > h100[1].fwd_time);
    }
}
