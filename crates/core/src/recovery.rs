//! Failure recovery and live world re-scaling for elastic training.
//!
//! This module closes the loop the paper leaves open in §3.4.2: the
//! elastic-release path there *shrinks* a healthy job, but nothing can
//! survive a rank failure.  Here, a [`RecoveryCoordinator`] ties together
//! the pieces the workspace already has:
//!
//! 1. **Detect** — `dynmo-runtime`'s failure detector poisons every
//!    collective on a communicator containing a dead rank, so all survivors
//!    observe [`RuntimeError::RankFailed`] promptly.
//! 2. **Re-form** — the world communicator is rebuilt over the survivors
//!    (`Communicator::rebuild_survivors`, the fault-tolerant sibling of
//!    `ncclCommSplit`).
//! 3. **Re-balance** — the Partition balancer re-runs for the new world
//!    size over layer loads reconstructed from the checkpoint.
//! 4. **Replay** — trainer state is restored from the last checkpoint in a
//!    [`CheckpointStore`] and the lost iterations are re-executed.
//! 5. **Account** — every checkpoint write and recovery is charged to the
//!    `recovery` bucket of [`OverheadBreakdown`], next to the paper's
//!    profiling/algorithm/migration buckets.
//!
//! [`run_resilient`] drives an actual multi-rank training loop on the
//! simulated fabric under a [`FaultPlan`], and [`run_elastic_rescale`] does
//! the voluntary version: shrink the world mid-run, hand the GPUs back to
//! the job manager, and grow back — with layer-assignment conservation
//! checked at every step.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dynmo_dynamics::rng::Prng;
use dynmo_pipeline::{LayerLoad, StageAssignment};
use dynmo_resilience::{
    Checkpoint, CheckpointCostModel, CheckpointStore, LayerState, MemoryCheckpointStore,
    TimedStore, TrainerState,
};
use dynmo_runtime::{
    launch, Communicator, FaultInjector, FaultPlan, Payload, RankCtx, RuntimeError,
    SPOT_WARNING_ITERATIONS,
};
use dynmo_telemetry::{MarkerKind, NullRecorder, Recorder};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::balancer::{BalanceObjective, BalanceRequest, LoadBalancer, PartitionBalancer};
use crate::elastic::{FleetEvent, JobManager, MockJobManager};
use crate::overhead::OverheadBreakdown;

/// Knobs of the resilience machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Take a checkpoint every this many iterations (0 disables periodic
    /// checkpoints; the initial checkpoint is always taken).
    pub checkpoint_interval: u64,
    /// Keep at most this many checkpoints in the store.
    pub keep_checkpoints: usize,
    /// Cost model for checkpoint writes and restores.
    pub cost_model: CheckpointCostModel,
    /// Simulated seconds one training iteration costs, used to price the
    /// replayed iterations of a recovery.
    pub iteration_cost: f64,
    /// Simulated seconds to re-form the communicator world after a failure
    /// (`ncclCommSplit` + bootstrap exchange).
    pub rebuild_cost: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_interval: 25,
            keep_checkpoints: 2,
            cost_model: CheckpointCostModel::default(),
            iteration_cost: 0.25,
            rebuild_cost: 0.5,
        }
    }
}

/// Re-plans the job after a failure or an elastic re-scale: rebuilds the
/// balancer's view of the world from a checkpoint and prices the recovery.
pub struct RecoveryCoordinator {
    balancer: Box<dyn LoadBalancer + Send + Sync>,
    objective: BalanceObjective,
    config: RecoveryConfig,
}

impl RecoveryCoordinator {
    /// Build a coordinator around an explicit balancer.
    pub fn new(
        balancer: Box<dyn LoadBalancer + Send + Sync>,
        objective: BalanceObjective,
        config: RecoveryConfig,
    ) -> Self {
        RecoveryCoordinator {
            balancer,
            objective,
            config,
        }
    }

    /// The default coordinator: Partition balancer, time objective.
    pub fn partition_by_time(config: RecoveryConfig) -> Self {
        Self::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            config,
        )
    }

    /// The coordinator's configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Re-run the balancer for a new world size, deriving per-layer loads
    /// from the checkpointed state (retained parameters weigh compute;
    /// frozen layers only run forward).
    pub fn replan(&self, state: &TrainerState, new_world_size: usize) -> StageAssignment {
        let loads: Vec<LayerLoad> = state
            .layers
            .iter()
            .map(|layer| {
                let params = layer.weights.len().max(1) as f64 * layer.retention();
                let fwd = params.max(1e-9);
                let bwd = if layer.frozen { 0.0 } else { 2.0 * fwd };
                LayerLoad {
                    layer_id: layer.layer_id,
                    fwd_time: fwd,
                    bwd_time: bwd,
                    param_count: params as u64,
                    static_bytes: (params as u64) * 16,
                    activation_bytes: 0,
                    migration_bytes: (params as u64) * 16,
                }
            })
            .collect();
        let request = BalanceRequest::new(&loads, new_world_size, u64::MAX, self.objective)
            .with_inflight(vec![1; new_world_size]);
        self.balancer.rebalance(&request).assignment
    }

    /// Simulated cost of writing one checkpoint of `state`.
    pub fn checkpoint_cost(&self, state: &TrainerState) -> f64 {
        self.config.cost_model.write_cost(state.size_bytes())
    }

    /// Simulated cost of one recovery: restore read + communicator rebuild
    /// + `replayed` re-executed iterations.
    pub fn recovery_cost(&self, state: &TrainerState, replayed: u64) -> f64 {
        self.config.cost_model.read_cost(state.size_bytes())
            + self.config.rebuild_cost
            + replayed as f64 * self.config.iteration_cost
    }
}

/// The synthetic-but-deterministic training workload the multi-rank
/// harness executes: per-layer proxy weights updated by a fixed rule, with
/// optional layer freezing and magnitude pruning so the checkpoint carries
/// every kind of state the paper's dynamism mechanisms produce.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of model layers.
    pub num_layers: usize,
    /// Proxy weights per layer.
    pub weights_per_layer: usize,
    /// Seed for the deterministic initialization and noise streams.
    pub seed: u64,
    /// Freeze layer `l` at iteration `(l + 1) * freeze_every` (None = no
    /// freezing).
    pub freeze_every: Option<u64>,
    /// Magnitude-prune 10% of each layer's remaining weights every this
    /// many iterations (None = no pruning).
    pub prune_every: Option<u64>,
}

impl WorkloadConfig {
    /// A small default workload exercising freezing and pruning.
    pub fn small(num_layers: usize, seed: u64) -> Self {
        WorkloadConfig {
            num_layers,
            weights_per_layer: 16,
            seed,
            freeze_every: Some(40),
            prune_every: Some(30),
        }
    }
}

/// Configuration of one fault-injected resilient run.
#[derive(Debug, Clone)]
pub struct ResilientTrainingConfig {
    /// Initial world size (one pipeline stage per rank).
    pub world_size: usize,
    /// Iterations to complete.
    pub iterations: u64,
    /// The synthetic workload.
    pub workload: WorkloadConfig,
    /// Scheduled rank deaths.
    pub fault_plan: FaultPlan,
    /// Resilience knobs.
    pub recovery: RecoveryConfig,
}

impl ResilientTrainingConfig {
    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.world_size == 0 {
            return Err("world_size must be positive".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if self.workload.num_layers < self.world_size {
            return Err("need at least one layer per worker".into());
        }
        let dead: std::collections::BTreeSet<usize> = self
            .fault_plan
            .kills()
            .iter()
            .map(|k| k.rank)
            .chain(self.fault_plan.evictions().iter().map(|e| e.rank))
            .collect();
        if dead.len() >= self.world_size {
            return Err("fault plan kills the entire world".into());
        }
        for kill in self.fault_plan.kills() {
            if kill.rank >= self.world_size {
                return Err(format!("fault plan kills unknown rank {}", kill.rank));
            }
        }
        for eviction in self.fault_plan.evictions() {
            if eviction.rank >= self.world_size {
                return Err(format!("fault plan evicts unknown rank {}", eviction.rank));
            }
        }
        Ok(())
    }
}

/// One recovery episode observed during a resilient run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Iteration at which the survivors detected the failure.
    pub detected_at: u64,
    /// Global ranks that were dead at detection time.
    pub failed_ranks: Vec<usize>,
    /// Iteration of the checkpoint the survivors resumed from.
    pub resumed_from: u64,
    /// Iterations re-executed because of the rollback.
    pub replayed: u64,
    /// World size after the communicator was rebuilt.
    pub world_size_after: usize,
    /// Simulated recovery cost in seconds (restore + rebuild + replay).
    pub cost: f64,
}

/// Outcome of a fault-injected resilient run.
#[derive(Debug, Clone)]
pub struct ResilientRunReport {
    /// World size the job started with.
    pub initial_world_size: usize,
    /// World size at completion (initial minus failed ranks).
    pub final_world_size: usize,
    /// Iterations completed (equals the configured count: the job finishes
    /// despite failures).
    pub iterations: u64,
    /// Final training loss (sum over layers of mean |w|).
    pub final_loss: f64,
    /// Load imbalance ΔL (Eq. 2 of the paper) of the final assignment over
    /// the final per-layer loads.
    pub final_imbalance: f64,
    /// Layer→stage assignment in effect at the end.
    pub final_assignment: StageAssignment,
    /// FNV-1a checksum over the final per-layer state (weights, optimizer,
    /// masks, frozen flags), for exact cross-run comparison.
    pub weights_checksum: u64,
    /// Checkpoints written (including the initial one).
    pub checkpoints_taken: u64,
    /// Total iterations re-executed across all recoveries.
    pub replayed_iterations: u64,
    /// Every recovery episode, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Overhead accounting; resilience costs land in the `recovery` bucket.
    pub overhead: OverheadBreakdown,
    /// Fleet accounting events (failed ranks are released to the manager).
    pub fleet_events: Vec<FleetEvent>,
}

/// Shared bookkeeping the ranks update through locks/atomics, standing in
/// for the control plane (job manager + metrics store) of a real cluster.
struct SharedState {
    store: Mutex<TimedStore<MemoryCheckpointStore>>,
    job_manager: Mutex<MockJobManager>,
    overhead: Mutex<OverheadBreakdown>,
    recoveries: Mutex<Vec<RecoveryEvent>>,
    checkpoints_taken: AtomicU64,
    replayed_iterations: AtomicU64,
    recorder: Arc<dyn Recorder>,
}

impl SharedState {
    fn new(world_size: usize, recorder: Arc<dyn Recorder>) -> Self {
        SharedState {
            store: Mutex::new(TimedStore::new(MemoryCheckpointStore::new())),
            job_manager: Mutex::new(MockJobManager::new(world_size)),
            overhead: Mutex::new(OverheadBreakdown::new()),
            recoveries: Mutex::new(Vec::new()),
            checkpoints_taken: AtomicU64::new(0),
            replayed_iterations: AtomicU64::new(0),
            recorder,
        }
    }
}

/// Per-rank result of the harness.
struct RankOutcome {
    loss: f32,
    world_size: usize,
    assignment: StageAssignment,
    weights_checksum: u64,
    imbalance: f64,
}

/// ΔL (Eq. 2) of `assignment` over the compute proxy of `layers`: how much
/// the bottleneck stage exceeds the mean stage load.
fn assignment_imbalance(assignment: &StageAssignment, layers: &[LayerState]) -> f64 {
    let stages = assignment.num_stages();
    let mut totals = vec![0.0f64; stages.max(1)];
    for layer in layers {
        let weight = layer.weights.len().max(1) as f64
            * layer.retention()
            * if layer.frozen { 1.0 / 3.0 } else { 1.0 };
        let stage = assignment.stage_of(layer.layer_id);
        totals[stage] += weight;
    }
    crate::imbalance::load_imbalance(&totals)
}

fn ckpt_err(e: dynmo_resilience::CheckpointError) -> RuntimeError {
    RuntimeError::InvalidArgument(format!("checkpoint failure: {e}"))
}

/// Deterministic per-layer initialization: identical on every rank.
fn init_layers(workload: &WorkloadConfig) -> Vec<LayerState> {
    (0..workload.num_layers)
        .map(|layer_id| {
            let mut rng = Prng::seed_from(
                workload
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(layer_id as u64),
            );
            let weights: Vec<f32> = (0..workload.weights_per_layer)
                .map(|_| (rng.next_f64() as f32 - 0.5) * 2.0)
                .collect();
            LayerState {
                layer_id,
                optimizer: vec![0.0; weights.len()],
                pruning_mask: vec![true; weights.len()],
                frozen: false,
                rng_state: rng.state(),
                weights,
            }
        })
        .collect()
}

/// Apply the freeze/prune schedules due at `iteration` to one layer.
/// Deterministic in `(layer, iteration)` regardless of which rank hosts the
/// layer, so replays after recovery reproduce the original run exactly.
fn apply_schedules(layer: &mut LayerState, iteration: u64, workload: &WorkloadConfig) {
    if let Some(freeze_every) = workload.freeze_every {
        if freeze_every > 0 && iteration == (layer.layer_id as u64 + 1) * freeze_every {
            layer.frozen = true;
        }
    }
    if let Some(prune_every) = workload.prune_every {
        if prune_every > 0
            && iteration > 0
            && iteration.is_multiple_of(prune_every)
            && !layer.frozen
        {
            // Magnitude-prune 10% of the *remaining* weights, layer-locally.
            let mut kept: Vec<usize> = (0..layer.weights.len())
                .filter(|&i| layer.pruning_mask[i])
                .collect();
            let drop = kept.len() / 10;
            if drop > 0 {
                kept.sort_by(|&a, &b| {
                    layer.weights[a]
                        .abs()
                        .partial_cmp(&layer.weights[b].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                for &i in kept.iter().take(drop) {
                    layer.pruning_mask[i] = false;
                    layer.weights[i] = 0.0;
                    layer.optimizer[i] = 0.0;
                }
            }
        }
    }
}

/// One deterministic SGD-with-momentum-style update on a layer's proxy
/// weights.  The noise stream lives in the layer itself (not the rank), so
/// ownership changes and replays do not perturb the trajectory.
fn train_step(layer: &mut LayerState, iteration: u64) {
    if layer.frozen {
        return;
    }
    let mut rng = Prng::from_state(layer.rng_state);
    let lr = 0.05 / (1.0 + iteration as f64 / 200.0);
    for i in 0..layer.weights.len() {
        if !layer.pruning_mask[i] {
            continue;
        }
        let noise = (rng.next_f64() as f32 - 0.5) * 0.02;
        let grad = layer.weights[i] * 0.1 + noise;
        layer.optimizer[i] = 0.9 * layer.optimizer[i] + 0.1 * grad;
        layer.weights[i] -= lr as f32 * layer.optimizer[i];
    }
    layer.rng_state = rng.state();
}

/// A layer's contribution to the training loss: mean |w| over retained
/// weights (decays as training pulls weights toward zero).
fn layer_loss(layer: &LayerState) -> f32 {
    let kept: Vec<f32> = layer
        .weights
        .iter()
        .zip(&layer.pruning_mask)
        .filter(|(_, &m)| m)
        .map(|(w, _)| w.abs())
        .collect();
    if kept.is_empty() {
        0.0
    } else {
        kept.iter().sum::<f32>() / kept.len() as f32
    }
}

/// FNV-1a over the bit-exact content of every layer.
fn weights_checksum(layers: &[LayerState]) -> u64 {
    let mut buffer = Vec::new();
    for layer in layers {
        buffer.extend_from_slice(&(layer.layer_id as u64).to_le_bytes());
        for w in &layer.weights {
            buffer.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        for o in &layer.optimizer {
            buffer.extend_from_slice(&o.to_bits().to_le_bytes());
        }
        buffer.extend(layer.pruning_mask.iter().map(|&m| u8::from(m)));
        buffer.push(u8::from(layer.frozen));
    }
    dynmo_resilience::fnv1a(buffer)
}

/// Layers owned by `stage` under `assignment`.
fn owned_layers(assignment: &StageAssignment, stage: usize) -> Vec<usize> {
    assignment.layers_of(stage)
}

/// Gather every stage's fresh layer states onto local rank 0 and assemble
/// the full [`TrainerState`].  Returns `Some` on rank 0, `None` elsewhere.
fn gather_full_state(
    comm: &Communicator,
    assignment: &StageAssignment,
    layers: &[LayerState],
    iteration: u64,
    loss: f32,
) -> Result<Option<TrainerState>, RuntimeError> {
    let mine: Vec<&LayerState> = owned_layers(assignment, comm.rank())
        .into_iter()
        .map(|l| &layers[l])
        .collect();
    let text = serde_json::to_string(&mine)
        .map_err(|e| RuntimeError::InvalidArgument(format!("serialize layers: {e}")))?;
    let payload = Payload::Bytes(bytes::Bytes::from(text.into_bytes()));
    let gathered = comm.gather(0, payload)?;
    let Some(parts) = gathered else {
        return Ok(None);
    };
    let mut all: Vec<LayerState> = Vec::with_capacity(layers.len());
    for part in parts {
        let raw = part.into_bytes()?;
        let text = std::str::from_utf8(&raw)
            .map_err(|e| RuntimeError::PayloadMismatch(format!("layer payload utf8: {e}")))?;
        let states: Vec<LayerState> = serde_json::from_str(text)
            .map_err(|e| RuntimeError::PayloadMismatch(format!("layer payload parse: {e}")))?;
        all.extend(states);
    }
    all.sort_by_key(|layer| layer.layer_id);
    let mut metrics = std::collections::BTreeMap::new();
    metrics.insert("loss".to_string(), f64::from(loss));
    Ok(Some(TrainerState {
        iteration,
        world_size: comm.size(),
        assignment: assignment.clone(),
        layers: all,
        metrics,
        engine: None,
    }))
}

/// Save `state` (rank 0 only), pricing the write into the recovery bucket.
fn save_checkpoint(
    state: TrainerState,
    coordinator: &RecoveryCoordinator,
    shared: &SharedState,
) -> Result<(), RuntimeError> {
    let cost = coordinator.checkpoint_cost(&state);
    let checkpoint = Checkpoint::new(state).map_err(ckpt_err)?;
    let mut store = shared.store.lock();
    store.save(&checkpoint).map_err(ckpt_err)?;
    store.retain_last(coordinator.config.keep_checkpoints.max(1));
    drop(store);
    shared.overhead.lock().record_recovery(cost);
    shared.checkpoints_taken.fetch_add(1, Ordering::SeqCst);
    Ok(())
}

/// Run a fault-injected, checkpointed training job on the simulated
/// multi-rank runtime and recover from every scheduled failure.
///
/// Returns an error only for structural problems (bad config, checkpoint
/// corruption); scheduled rank deaths are *handled*, not propagated.
pub fn run_resilient(config: &ResilientTrainingConfig) -> Result<ResilientRunReport, RuntimeError> {
    run_resilient_recorded(config, Arc::new(NullRecorder))
}

/// [`run_resilient`] with a telemetry sink: spot-eviction advance warnings
/// surface as [`MarkerKind::EvictionWarning`] instants so a trace viewer
/// shows the warning → checkpoint → eviction → recovery sequence.
pub fn run_resilient_recorded(
    config: &ResilientTrainingConfig,
    recorder: Arc<dyn Recorder>,
) -> Result<ResilientRunReport, RuntimeError> {
    config.validate().map_err(RuntimeError::InvalidArgument)?;
    let coordinator = RecoveryCoordinator::partition_by_time(config.recovery);
    let shared = Arc::new(SharedState::new(config.world_size, recorder));

    // Initial checkpoint: every rank derives the same state, rank 0 writes
    // it before any rank starts, so recovery always has a floor.
    {
        let layers = init_layers(&config.workload);
        let assignment = StageAssignment::uniform(config.workload.num_layers, config.world_size);
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert("loss".to_string(), 0.0);
        let state = TrainerState {
            iteration: 0,
            world_size: config.world_size,
            assignment,
            layers,
            metrics,
            engine: None,
        };
        save_checkpoint(state, &coordinator, &shared)?;
    }

    let shared_for_ranks = Arc::clone(&shared);
    let coordinator = Arc::new(coordinator);
    let config_owned = config.clone();
    let results: Vec<Result<Option<RankOutcome>, RuntimeError>> =
        launch(config.world_size, move |ctx| {
            rank_body(&ctx, &config_owned, &coordinator, &shared_for_ranks)
        })?;

    let mut outcome: Option<RankOutcome> = None;
    for result in results {
        match result {
            Ok(Some(rank_outcome)) => {
                if outcome.is_none() {
                    outcome = Some(rank_outcome);
                }
            }
            Ok(None) => {}
            Err(err) => return Err(err),
        }
    }
    let outcome = outcome.ok_or_else(|| {
        RuntimeError::InvalidArgument("no rank survived the resilient run".to_string())
    })?;

    let shared = Arc::try_unwrap(shared).unwrap_or_else(|arc| SharedState {
        store: Mutex::new(arc.store.lock().clone()),
        job_manager: Mutex::new(arc.job_manager.lock().clone()),
        overhead: Mutex::new(*arc.overhead.lock()),
        recoveries: Mutex::new(arc.recoveries.lock().clone()),
        checkpoints_taken: AtomicU64::new(arc.checkpoints_taken.load(Ordering::SeqCst)),
        replayed_iterations: AtomicU64::new(arc.replayed_iterations.load(Ordering::SeqCst)),
        recorder: Arc::clone(&arc.recorder),
    });
    let mut overhead = shared.overhead.into_inner();
    {
        // Fold the store's measured wall-clock I/O into the diagnostic
        // companion; the modeled `recovery` bucket is untouched.
        let store = shared.store.lock();
        overhead.measured.checkpoint_io_seconds += store.io_seconds();
        overhead.measured.samples += store.io_ops();
    }
    Ok(ResilientRunReport {
        initial_world_size: config.world_size,
        final_world_size: outcome.world_size,
        iterations: config.iterations,
        final_loss: f64::from(outcome.loss),
        final_imbalance: outcome.imbalance,
        final_assignment: outcome.assignment,
        weights_checksum: outcome.weights_checksum,
        checkpoints_taken: shared.checkpoints_taken.load(Ordering::SeqCst),
        replayed_iterations: shared.replayed_iterations.load(Ordering::SeqCst),
        recoveries: shared.recoveries.into_inner(),
        overhead,
        fleet_events: shared.job_manager.into_inner().events().to_vec(),
    })
}

/// The per-rank training loop with failure handling.
fn rank_body(
    ctx: &RankCtx,
    config: &ResilientTrainingConfig,
    coordinator: &RecoveryCoordinator,
    shared: &SharedState,
) -> Result<Option<RankOutcome>, RuntimeError> {
    let me = ctx.rank();
    let injector = FaultInjector::new(config.fault_plan.clone(), ctx.fabric().detector().clone());
    let mut comm = ctx.world();
    let mut assignment = StageAssignment::uniform(config.workload.num_layers, config.world_size);
    let mut layers = init_layers(&config.workload);
    let mut iteration: u64 = 0;
    let mut loss: f32 = 0.0;

    while iteration < config.iterations {
        match run_iteration(
            &comm,
            &assignment,
            &mut layers,
            iteration,
            &injector,
            config,
            coordinator,
            shared,
        ) {
            Ok(iteration_loss) => {
                loss = iteration_loss;
                iteration += 1;
            }
            Err(RuntimeError::RankFailed { rank }) if rank == me => {
                // This rank was killed by the fault plan: simulate the
                // crash by dropping out of the job entirely.
                return Ok(None);
            }
            Err(RuntimeError::RankFailed { .. }) => {
                // A peer died.  Re-form the world, roll back, replay.
                // Recovery itself can observe *another* death (two ranks
                // dying at the same iteration surface one at a time to a
                // survivor whose rebuilt communicator still contains the
                // second victim): retry with the updated failed set until
                // the rendezvous succeeds on a fully-live survivor world.
                loop {
                    match recover(&comm, iteration, coordinator, shared) {
                        Ok((new_comm, new_assignment, new_layers, resumed_from)) => {
                            comm = new_comm;
                            assignment = new_assignment;
                            layers = new_layers;
                            iteration = resumed_from;
                            break;
                        }
                        Err(RuntimeError::RankFailed { rank }) if rank == me => {
                            return Ok(None);
                        }
                        Err(RuntimeError::RankFailed { .. }) => continue,
                        Err(other) => return Err(other),
                    }
                }
            }
            Err(other) => return Err(other),
        }
    }

    // Conclude: rank 0 of the final communicator assembles the final state,
    // hashes it, and broadcasts the checksum so every survivor reports the
    // same value.
    let final_state = gather_full_state(&comm, &assignment, &layers, iteration, loss)?;
    let summary_payload = if let Some(state) = &final_state {
        Payload::U64(vec![
            weights_checksum(&state.layers),
            assignment_imbalance(&assignment, &state.layers).to_bits(),
        ])
    } else {
        Payload::Empty
    };
    let summary = comm.broadcast(0, summary_payload)?.into_u64()?;

    Ok(Some(RankOutcome {
        loss,
        world_size: comm.size(),
        assignment,
        weights_checksum: summary[0],
        imbalance: f64::from_bits(summary[1]),
    }))
}

/// One training iteration: fault tick, schedules, local updates, global
/// loss, periodic checkpoint.
#[allow(clippy::too_many_arguments)]
fn run_iteration(
    comm: &Communicator,
    assignment: &StageAssignment,
    layers: &mut [LayerState],
    iteration: u64,
    injector: &FaultInjector,
    config: &ResilientTrainingConfig,
    coordinator: &RecoveryCoordinator,
    shared: &SharedState,
) -> Result<f32, RuntimeError> {
    injector.tick(comm.my_global_rank(), iteration)?;

    let owned = owned_layers(assignment, comm.rank());
    for &l in &owned {
        apply_schedules(&mut layers[l], iteration, &config.workload);
        train_step(&mut layers[l], iteration);
    }

    let partial: f32 = owned.iter().map(|&l| layer_loss(&layers[l])).sum();
    let loss = comm.allreduce_sum_f32(&[partial])?[0];

    // Checkpoint after every `interval` *completed* iterations.  The stored
    // `iteration` field is the next iteration to execute, so a restore
    // never re-applies an update the snapshot already contains.
    let interval = coordinator.config.checkpoint_interval;
    let periodic = interval > 0 && (iteration + 1).is_multiple_of(interval);

    // Spot-eviction advance warning: when any live member of this
    // communicator was just warned, checkpoint immediately so the imminent
    // eviction rolls back at most `SPOT_WARNING_ITERATIONS` iterations
    // instead of a whole checkpoint interval.  Every member of the
    // communicator computes the same predicate from the shared fault plan,
    // so the collective gather below stays aligned.
    let members = comm.members();
    let warned_here: Vec<usize> = config
        .fault_plan
        .warned_at(iteration)
        .into_iter()
        .filter(|rank| members.contains(rank))
        .collect();

    if periodic || !warned_here.is_empty() {
        if let Some(state) = gather_full_state(comm, assignment, layers, iteration + 1, loss)? {
            save_checkpoint(state, coordinator, shared)?;
        }
    }
    if comm.rank() == 0 {
        for rank in &warned_here {
            shared.recorder.instant(
                0,
                MarkerKind::EvictionWarning,
                &format!("rank {rank}"),
                iteration as f64,
                &[
                    ("iteration", iteration.to_string()),
                    ("rank", rank.to_string()),
                    ("evicts_in", SPOT_WARNING_ITERATIONS.to_string()),
                ],
            );
        }
    }
    Ok(loss)
}

/// Survivor-side recovery: rebuild the communicator, reload the newest
/// checkpoint, re-balance for the shrunken world, and report the rollback.
fn recover(
    comm: &Communicator,
    detected_at: u64,
    coordinator: &RecoveryCoordinator,
    shared: &SharedState,
) -> Result<(Communicator, StageAssignment, Vec<LayerState>, u64), RuntimeError> {
    // Only the ranks that died *out of this communicator* are new: ranks
    // handled by an earlier recovery are no longer members, so they are
    // neither re-released to the fleet nor re-reported in the event.
    let detector = comm.fabric().detector();
    let failed_now: Vec<usize> = comm
        .members()
        .iter()
        .copied()
        .filter(|&rank| detector.is_failed(rank))
        .collect();
    let new_comm = comm.rebuild_survivors()?.ok_or(RuntimeError::RankFailed {
        rank: comm.my_global_rank(),
    })?;
    // Rendezvous on the new communicator before touching the store, so no
    // survivor reads the checkpoint while another is still writing one.
    new_comm.barrier()?;

    let checkpoint = shared
        .store
        .lock()
        .latest()
        .map_err(ckpt_err)?
        .ok_or_else(|| {
            RuntimeError::InvalidArgument("no checkpoint available for recovery".to_string())
        })?;
    let state = checkpoint.verify().map_err(ckpt_err)?.clone();
    let assignment = coordinator.replan(&state, new_comm.size());
    let resumed_from = state.iteration;
    let replayed = detected_at.saturating_sub(resumed_from);

    if new_comm.rank() == 0 {
        // Release the dead GPUs back to the fleet and account the episode.
        let mut job_manager = shared.job_manager.lock();
        job_manager.set_iteration(detected_at);
        job_manager.release(&failed_now);
        drop(job_manager);
        let cost = coordinator.recovery_cost(&state, replayed);
        shared.overhead.lock().record_recovery(cost);
        shared
            .replayed_iterations
            .fetch_add(replayed, Ordering::SeqCst);
        shared.recoveries.lock().push(RecoveryEvent {
            detected_at,
            failed_ranks: failed_now,
            resumed_from,
            replayed,
            world_size_after: new_comm.size(),
            cost,
        });
    }

    Ok((new_comm, assignment, state.layers, resumed_from))
}

/// Configuration of a voluntary shrink→grow session.
#[derive(Debug, Clone)]
pub struct ElasticRescaleConfig {
    /// Full world size.
    pub world_size: usize,
    /// Total iterations to run.
    pub iterations: u64,
    /// The synthetic workload.
    pub workload: WorkloadConfig,
    /// Iteration at which the world shrinks.
    pub shrink_at: u64,
    /// World size during the shrunken phase.
    pub shrink_to: usize,
    /// Iteration at which the world grows back to full size.
    pub grow_at: u64,
    /// Resilience knobs (checkpoints carry state across re-scales).
    pub recovery: RecoveryConfig,
}

impl ElasticRescaleConfig {
    /// Validate phase ordering and sizes.
    pub fn validate(&self) -> Result<(), String> {
        if self.world_size == 0 || self.shrink_to == 0 {
            return Err("world sizes must be positive".into());
        }
        if self.shrink_to >= self.world_size {
            return Err("shrink_to must be smaller than world_size".into());
        }
        if !(self.shrink_at < self.grow_at && self.grow_at < self.iterations) {
            return Err("phases must satisfy shrink_at < grow_at < iterations".into());
        }
        if self.workload.num_layers < self.world_size {
            return Err("need at least one layer per worker".into());
        }
        Ok(())
    }
}

/// Outcome of [`run_elastic_rescale`].
#[derive(Debug, Clone)]
pub struct ElasticRescaleReport {
    /// World size in each phase: `[full, shrunken, full]`.
    pub phase_world_sizes: Vec<usize>,
    /// Whether every phase's assignment covered each layer exactly once,
    /// contiguously, within the phase's world size.
    pub layers_conserved: bool,
    /// Final training loss.
    pub final_loss: f64,
    /// Checksum of the final per-layer state.
    pub weights_checksum: u64,
    /// Fleet accounting: the shrink releases GPUs, the grow re-acquires
    /// them.
    pub fleet_events: Vec<FleetEvent>,
    /// Average GPUs allocated over the run (the paper's Figure 4 metric).
    pub average_allocated: f64,
    /// Overhead accounting (checkpoints + re-scale costs in `recovery`).
    pub overhead: OverheadBreakdown,
}

/// Check that `assignment` covers exactly the workload's layers, one stage
/// each, contiguously — the conservation invariant of every re-scale.
fn assignment_conserves_layers(assignment: &StageAssignment, num_layers: usize) -> bool {
    assignment.num_layers() == num_layers
        && assignment.is_contiguous()
        && assignment.counts().iter().sum::<usize>() == num_layers
}

/// Run a voluntary shrink→grow session: train on the full world, release
/// part of it mid-run (checkpoint + `comm_split` + re-balance), train on
/// the shrunken world, then grow back and finish on the full world.
pub fn run_elastic_rescale(
    config: &ElasticRescaleConfig,
) -> Result<ElasticRescaleReport, RuntimeError> {
    config.validate().map_err(RuntimeError::InvalidArgument)?;
    let coordinator = Arc::new(RecoveryCoordinator::partition_by_time(config.recovery));
    let shared = Arc::new(SharedState::new(config.world_size, Arc::new(NullRecorder)));
    let conserved = Arc::new(Mutex::new(true));

    let shared_for_ranks = Arc::clone(&shared);
    let coordinator_for_ranks = Arc::clone(&coordinator);
    let conserved_for_ranks = Arc::clone(&conserved);
    let config_owned = config.clone();
    let results: Vec<Result<RankOutcome, RuntimeError>> = launch(config.world_size, move |ctx| {
        elastic_rank_body(
            &ctx,
            &config_owned,
            &coordinator_for_ranks,
            &shared_for_ranks,
            &conserved_for_ranks,
        )
    })?;

    let mut first: Option<RankOutcome> = None;
    for result in results {
        let outcome = result?;
        if first.is_none() {
            first = Some(outcome);
        }
    }
    let outcome = first.expect("world_size >= 1 rank reported");

    let job_manager = shared.job_manager.lock().clone();
    let average_allocated = job_manager.average_allocated(config.iterations);
    let layers_conserved = *conserved.lock();
    let mut overhead = *shared.overhead.lock();
    {
        let store = shared.store.lock();
        overhead.measured.checkpoint_io_seconds += store.io_seconds();
        overhead.measured.samples += store.io_ops();
    }
    Ok(ElasticRescaleReport {
        phase_world_sizes: vec![config.world_size, config.shrink_to, config.world_size],
        layers_conserved,
        final_loss: f64::from(outcome.loss),
        weights_checksum: outcome.weights_checksum,
        fleet_events: job_manager.events().to_vec(),
        average_allocated,
        overhead,
    })
}

/// Per-rank body of the shrink→grow session.
fn elastic_rank_body(
    ctx: &RankCtx,
    config: &ElasticRescaleConfig,
    coordinator: &RecoveryCoordinator,
    shared: &SharedState,
    conserved: &Mutex<bool>,
) -> Result<RankOutcome, RuntimeError> {
    let world = ctx.world();
    let me = ctx.rank();
    let mut layers = init_layers(&config.workload);
    let mut loss: f32 = 0.0;

    let check_conservation = |assignment: &StageAssignment| {
        if !assignment_conserves_layers(assignment, config.workload.num_layers) {
            *conserved.lock() = false;
        }
    };

    // Phase 1: full world.
    let assignment = StageAssignment::uniform(config.workload.num_layers, config.world_size);
    check_conservation(&assignment);
    for iteration in 0..config.shrink_at {
        loss = train_phase_iteration(&world, &assignment, &mut layers, iteration, config)?;
    }
    // Checkpoint at the shrink boundary, then split off the released ranks.
    if let Some(state) = gather_full_state(&world, &assignment, &layers, config.shrink_at, loss)? {
        save_checkpoint(state, coordinator, shared)?;
    }
    world.barrier()?;
    if me == 0 {
        let mut job_manager = shared.job_manager.lock();
        job_manager.set_iteration(config.shrink_at);
        let released: Vec<usize> = (config.shrink_to..config.world_size).collect();
        job_manager
            .try_release(&released)
            .map_err(|e| RuntimeError::InvalidArgument(format!("elastic release: {e}")))?;
        shared
            .overhead
            .lock()
            .record_recovery(coordinator.config.rebuild_cost);
    }
    let active_ranks: Vec<usize> = (0..config.shrink_to).collect();
    let active = world.split_subset(&active_ranks)?;

    // Phase 2: shrunken world (released ranks idle until the grow barrier).
    if let Some(active) = &active {
        let checkpoint = shared
            .store
            .lock()
            .latest()
            .map_err(ckpt_err)?
            .expect("shrink checkpoint was just written");
        let state = checkpoint.verify().map_err(ckpt_err)?.clone();
        let shrunken_assignment = coordinator.replan(&state, config.shrink_to);
        check_conservation(&shrunken_assignment);
        layers = state.layers;
        for iteration in config.shrink_at..config.grow_at {
            loss = train_phase_iteration(
                active,
                &shrunken_assignment,
                &mut layers,
                iteration,
                config,
            )?;
        }
        if let Some(state) =
            gather_full_state(active, &shrunken_assignment, &layers, config.grow_at, loss)?
        {
            save_checkpoint(state, coordinator, shared)?;
        }
    }

    // Grow rendezvous: released ranks have been waiting here; active ranks
    // arrive once the shrunken phase is checkpointed.
    world.barrier()?;
    if me == 0 {
        let mut job_manager = shared.job_manager.lock();
        job_manager.set_iteration(config.grow_at);
        // Grow re-acquires the exact workers the shrink released; the
        // strict by-id path rejects any double acquire.
        let reacquired: Vec<usize> = (config.shrink_to..config.world_size).collect();
        job_manager
            .try_acquire(&reacquired)
            .map_err(|e| RuntimeError::InvalidArgument(format!("elastic acquire: {e}")))?;
        shared
            .overhead
            .lock()
            .record_recovery(coordinator.config.rebuild_cost);
    }

    // Phase 3: full world again, restored from the grow-point checkpoint.
    let checkpoint = shared
        .store
        .lock()
        .latest()
        .map_err(ckpt_err)?
        .expect("grow checkpoint was just written");
    let state = checkpoint.verify().map_err(ckpt_err)?.clone();
    let grown_assignment = coordinator.replan(&state, config.world_size);
    check_conservation(&grown_assignment);
    layers = state.layers;
    for iteration in config.grow_at..config.iterations {
        loss = train_phase_iteration(&world, &grown_assignment, &mut layers, iteration, config)?;
    }

    let final_state =
        gather_full_state(&world, &grown_assignment, &layers, config.iterations, loss)?;
    let summary_payload = if let Some(state) = &final_state {
        Payload::U64(vec![
            weights_checksum(&state.layers),
            assignment_imbalance(&grown_assignment, &state.layers).to_bits(),
        ])
    } else {
        Payload::Empty
    };
    let summary = world.broadcast(0, summary_payload)?.into_u64()?;

    Ok(RankOutcome {
        loss,
        world_size: world.size(),
        assignment: grown_assignment,
        weights_checksum: summary[0],
        imbalance: f64::from_bits(summary[1]),
    })
}

/// One iteration of an elastic phase (no fault injection).
fn train_phase_iteration(
    comm: &Communicator,
    assignment: &StageAssignment,
    layers: &mut [LayerState],
    iteration: u64,
    config: &ElasticRescaleConfig,
) -> Result<f32, RuntimeError> {
    let owned = owned_layers(assignment, comm.rank());
    for &l in &owned {
        apply_schedules(&mut layers[l], iteration, &config.workload);
        train_step(&mut layers[l], iteration);
    }
    let partial: f32 = owned.iter().map(|&l| layer_loss(&layers[l])).sum();
    Ok(comm.allreduce_sum_f32(&[partial])?[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config(world: usize, iterations: u64, plan: FaultPlan) -> ResilientTrainingConfig {
        ResilientTrainingConfig {
            world_size: world,
            iterations,
            workload: WorkloadConfig::small(world * 3, 42),
            fault_plan: plan,
            recovery: RecoveryConfig {
                checkpoint_interval: 10,
                ..RecoveryConfig::default()
            },
        }
    }

    #[test]
    fn failure_free_run_completes_with_checkpoints() {
        let report = run_resilient(&base_config(4, 35, FaultPlan::none())).unwrap();
        assert_eq!(report.final_world_size, 4);
        assert_eq!(report.iterations, 35);
        assert!(report.recoveries.is_empty());
        assert_eq!(report.replayed_iterations, 0);
        // Initial + iterations 10, 20, 30.
        assert_eq!(report.checkpoints_taken, 4);
        assert!(report.overhead.recovery > 0.0);
        assert_eq!(report.overhead.recovery_events, 4);
        assert!(report.final_loss > 0.0);
        assert!(report.fleet_events.is_empty());
        // The timed store measured real wall-clock seconds for the four
        // checkpoint writes (diagnostic only — not in the modeled total).
        assert!(report.overhead.measured.samples >= 4);
        assert!(report.overhead.measured.checkpoint_io_seconds >= 0.0);
        assert!(report.overhead.measured.balancer_seconds == 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_resilient(&base_config(3, 25, FaultPlan::none())).unwrap();
        let b = run_resilient(&base_config(3, 25, FaultPlan::none())).unwrap();
        assert_eq!(a.weights_checksum, b.weights_checksum);
        assert_eq!(a.final_loss, b.final_loss);
    }

    #[test]
    fn killed_rank_triggers_recovery_and_the_job_finishes() {
        let config = base_config(4, 40, FaultPlan::none().kill(2, 17));
        let report = run_resilient(&config).unwrap();
        assert_eq!(report.final_world_size, 3);
        assert_eq!(report.recoveries.len(), 1);
        let recovery = &report.recoveries[0];
        assert_eq!(recovery.failed_ranks, vec![2]);
        assert_eq!(recovery.resumed_from, 10);
        assert!(recovery.detected_at >= 17);
        assert!(recovery.replayed >= 7);
        assert_eq!(recovery.world_size_after, 3);
        assert!(recovery.cost > 0.0);
        assert!(report.replayed_iterations >= 7);
        // The failed GPU was released back to the fleet.
        assert_eq!(report.fleet_events.len(), 1);
        assert_eq!(report.fleet_events[0].delta, 1);
        assert_eq!(report.fleet_events[0].allocated_after, 3);
        // The final assignment covers every layer over the survivor world.
        assert!(assignment_conserves_layers(
            &report.final_assignment,
            config.workload.num_layers
        ));
        assert!(report.final_assignment.num_stages() <= 3);
    }

    #[test]
    fn recovered_run_matches_failure_free_run_bit_for_bit() {
        // The per-layer updates are deterministic in (layer, iteration), so
        // replaying from the checkpoint must reproduce the exact same final
        // weights the uninterrupted run produces.
        let clean = run_resilient(&base_config(4, 40, FaultPlan::none())).unwrap();
        let faulty = run_resilient(&base_config(4, 40, FaultPlan::none().kill(1, 23))).unwrap();
        assert_eq!(clean.weights_checksum, faulty.weights_checksum);
        let relative = (clean.final_loss - faulty.final_loss).abs() / clean.final_loss.max(1e-12);
        assert!(relative < 1e-3, "loss drift {relative}");
    }

    #[test]
    fn two_failures_are_survived() {
        let config = base_config(5, 45, FaultPlan::none().kill(4, 12).kill(1, 31));
        let report = run_resilient(&config).unwrap();
        assert_eq!(report.final_world_size, 3);
        assert_eq!(report.recoveries.len(), 2);
        assert_eq!(report.recoveries[1].world_size_after, 3);
        let clean = run_resilient(&base_config(5, 45, FaultPlan::none())).unwrap();
        assert_eq!(report.weights_checksum, clean.weights_checksum);
    }

    #[test]
    fn simultaneous_failures_at_the_same_iteration_are_survived() {
        // Regression: when two victims die in the same iteration, a
        // survivor can observe the deaths one at a time — its first
        // rebuilt communicator still contains the second victim and the
        // recovery rendezvous is poisoned.  The recovery retry loop must
        // absorb that and converge (this aborted the whole run before).
        // Interleaving-dependent, hence several trials.
        let clean = run_resilient(&base_config(5, 40, FaultPlan::none())).unwrap();
        for trial in 0..10 {
            let config = base_config(5, 40, FaultPlan::none().kill(1, 13).kill(3, 13));
            let report =
                run_resilient(&config).unwrap_or_else(|e| panic!("trial {trial} failed: {e}"));
            assert_eq!(report.final_world_size, 3);
            assert_eq!(report.weights_checksum, clean.weights_checksum);
            // No rank is ever double-released, even across overlapping
            // recoveries.
            let released: i64 = report.fleet_events.iter().map(|e| e.delta).sum();
            assert_eq!(released, 2);
        }
    }

    #[test]
    fn sequential_failures_release_each_rank_exactly_once() {
        // The second recovery must only release the newly-dead rank, not
        // re-release the one handled earlier (which would pollute the
        // rejection counters the job manager keeps).
        let config = base_config(5, 45, FaultPlan::none().kill(4, 12).kill(1, 31));
        let report = run_resilient(&config).unwrap();
        assert_eq!(report.recoveries.len(), 2);
        assert_eq!(report.recoveries[0].failed_ranks, vec![4]);
        assert_eq!(report.recoveries[1].failed_ranks, vec![1]);
        assert_eq!(report.fleet_events.len(), 2);
        assert!(report.fleet_events.iter().all(|e| e.delta == 1));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = base_config(2, 10, FaultPlan::none().kill(0, 1).kill(1, 2));
        assert!(run_resilient(&config).is_err(), "whole world killed");
        config.fault_plan = FaultPlan::none().kill(7, 1);
        assert!(run_resilient(&config).is_err(), "unknown rank");
        config.fault_plan = FaultPlan::none().evict(7, 1, 4);
        assert!(run_resilient(&config).is_err(), "unknown evicted rank");
        config.fault_plan = FaultPlan::none().kill(0, 5).evict(1, 2, 5);
        assert!(
            run_resilient(&config).is_err(),
            "whole world evicted+killed"
        );
        config.fault_plan = FaultPlan::none();
        config.world_size = 0;
        assert!(run_resilient(&config).is_err());
    }

    #[test]
    fn eviction_warning_checkpoints_immediately_and_emits_a_marker() {
        use dynmo_telemetry::{Event, MemoryRecorder};

        // Eviction of rank 2 at iteration 17 with the warning at 14.  The
        // warning forces a checkpoint at iteration 14 (stored as 15), so
        // the recovery resumes from 15 instead of the periodic 10 — the
        // rollback is bounded by the warning lead, not the interval.
        let config = base_config(4, 30, FaultPlan::none().evict(2, 14, 17));
        let recorder = Arc::new(MemoryRecorder::new());
        let report = run_resilient_recorded(&config, recorder.clone()).unwrap();
        assert_eq!(report.final_world_size, 3);
        assert_eq!(report.recoveries.len(), 1);
        let recovery = &report.recoveries[0];
        assert_eq!(recovery.failed_ranks, vec![2]);
        assert_eq!(recovery.resumed_from, 15, "warning checkpoint not used");
        assert!(recovery.replayed <= SPOT_WARNING_ITERATIONS);

        let warnings: Vec<String> = recorder
            .snapshot()
            .into_iter()
            .filter_map(|event| match event {
                Event::Instant(i) if i.kind == MarkerKind::EvictionWarning => Some(i.name),
                _ => None,
            })
            .collect();
        assert_eq!(warnings, vec!["rank 2".to_string()]);
    }

    #[test]
    fn spot_evicted_run_recovers_bit_for_bit() {
        // A stochastic spot schedule (deterministic per seed) interrupts
        // the run; recovery must still reproduce the failure-free weights
        // exactly, and every eviction gets its advance-warning checkpoint.
        let plan = FaultPlan::spot(4, 40, 0.02, 7);
        let evicted: std::collections::BTreeSet<usize> =
            plan.evictions().iter().map(|e| e.rank).collect();
        assert!(!evicted.is_empty(), "seed 7 should schedule evictions");
        assert!(!evicted.contains(&0), "rank 0 is immune");

        let clean = run_resilient(&base_config(4, 40, FaultPlan::none())).unwrap();
        let faulty = run_resilient(&base_config(4, 40, plan)).unwrap();
        assert_eq!(clean.weights_checksum, faulty.weights_checksum);
        assert_eq!(faulty.final_world_size, 4 - evicted.len());
        assert!(!faulty.recoveries.is_empty());
        // Warning-driven checkpoints bound every rollback by the lead time
        // (+1 because the victim can die mid-iteration after a replay).
        for recovery in &faulty.recoveries {
            assert!(recovery.replayed <= SPOT_WARNING_ITERATIONS + 1);
        }
    }

    #[test]
    fn replan_respects_world_size_and_conservation() {
        let coordinator = RecoveryCoordinator::partition_by_time(RecoveryConfig::default());
        let layers = init_layers(&WorkloadConfig::small(12, 7));
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert("loss".to_string(), 1.0);
        let state = TrainerState {
            iteration: 5,
            world_size: 4,
            assignment: StageAssignment::uniform(12, 4),
            layers,
            metrics,
            engine: None,
        };
        for world in [1, 2, 3, 4, 6] {
            let assignment = coordinator.replan(&state, world);
            assert!(assignment_conserves_layers(&assignment, 12));
            assert!(assignment.num_stages() <= world);
        }
    }

    #[test]
    fn elastic_shrink_grow_round_trips_the_world() {
        let config = ElasticRescaleConfig {
            world_size: 4,
            iterations: 36,
            workload: WorkloadConfig::small(12, 11),
            shrink_at: 12,
            shrink_to: 2,
            grow_at: 24,
            recovery: RecoveryConfig::default(),
        };
        let report = run_elastic_rescale(&config).unwrap();
        assert_eq!(report.phase_world_sizes, vec![4, 2, 4]);
        assert!(report.layers_conserved);
        assert!(report.final_loss > 0.0);
        // Fleet: one release of 2 GPUs, one re-acquire of 2 GPUs.
        assert_eq!(report.fleet_events.len(), 2);
        assert_eq!(report.fleet_events[0].delta, 2);
        assert_eq!(report.fleet_events[1].delta, -2);
        assert_eq!(report.fleet_events[1].allocated_after, 4);
        // Average allocation dips below the full fleet.
        assert!(report.average_allocated < 4.0);
        assert!(report.average_allocated > 2.0);
        assert!(report.overhead.recovery > 0.0);
    }

    #[test]
    fn elastic_rescale_matches_static_run_bit_for_bit() {
        let workload = WorkloadConfig::small(12, 19);
        let rescale = run_elastic_rescale(&ElasticRescaleConfig {
            world_size: 4,
            iterations: 30,
            workload,
            shrink_at: 10,
            shrink_to: 2,
            grow_at: 20,
            recovery: RecoveryConfig::default(),
        })
        .unwrap();
        let static_run = run_resilient(&ResilientTrainingConfig {
            world_size: 4,
            iterations: 30,
            workload,
            fault_plan: FaultPlan::none(),
            recovery: RecoveryConfig::default(),
        })
        .unwrap();
        assert_eq!(rescale.weights_checksum, static_run.weights_checksum);
    }

    #[test]
    fn elastic_config_validation() {
        let good = ElasticRescaleConfig {
            world_size: 4,
            iterations: 30,
            workload: WorkloadConfig::small(8, 1),
            shrink_at: 10,
            shrink_to: 2,
            grow_at: 20,
            recovery: RecoveryConfig::default(),
        };
        assert!(good.validate().is_ok());
        let mut bad = good.clone();
        bad.shrink_to = 4;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.grow_at = 5;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.workload.num_layers = 2;
        assert!(bad.validate().is_err());
    }
}
