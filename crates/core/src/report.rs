//! End-to-end training reports produced by the [`crate::trainer::Trainer`].

use serde::{Deserialize, Serialize};

use crate::overhead::OverheadBreakdown;

/// The measurable outcome of one simulated training run — the quantities
/// behind the paper's Figures 1, 3 and 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Name of the balancing configuration (e.g. `diffusion/by-time`,
    /// `static/megatron`).
    pub balancer: String,
    /// Name of the dynamism engine (e.g. `pruning/target-90%`).
    pub dynamism: String,
    /// Number of training iterations simulated.
    pub iterations: u64,
    /// Total wall-clock training time in seconds (compute + exposed
    /// communication + balancing overhead).
    pub total_time: f64,
    /// Total tokens processed across all data-parallel replicas.
    pub total_tokens: u64,
    /// End-to-end throughput in tokens/second (the Figure 3 y-axis).
    pub tokens_per_second: f64,
    /// Average per-iteration GPU idleness fraction (the Figure 1 y-axis).
    pub average_idleness: f64,
    /// Average pipeline bubble ratio over the run.
    pub average_bubble_ratio: f64,
    /// Mean load imbalance ΔL (Eq. 2) observed across the run.
    pub mean_imbalance: f64,
    /// Load imbalance at the final iteration.
    pub final_imbalance: f64,
    /// Balancing overhead breakdown (profiling / algorithm / migration).
    pub overhead: OverheadBreakdown,
    /// Overhead as a fraction of total training time.
    pub overhead_fraction: f64,
    /// Number of rebalance events executed.
    pub rebalance_events: u64,
    /// Average number of GPUs (per pipeline) in use over the run — the
    /// Figure 4 "average number of GPUs" metric.
    pub average_active_workers: f64,
    /// Active workers (pipeline stages in use) at the end of the run.
    pub final_active_workers: usize,
    /// Total GPU-seconds consumed (active workers × data parallel × time).
    pub gpu_seconds: f64,
    /// Throughput per GPU in tokens/second/GPU (the Figure 4 left axis,
    /// i.e. the performance-per-dollar proxy).
    pub tokens_per_second_per_gpu: f64,
    /// FNV-1a over the simulated per-iteration trajectory (iteration time,
    /// tokens, imbalance, assignment).  Deterministic for a given
    /// configuration and seed — wall-clock measurements are excluded — so
    /// a recovered run proves bit-identical replay by matching the
    /// failure-free run's value.
    pub trajectory_checksum: u64,
}

impl TrainingReport {
    /// Speedup of this run relative to a baseline run on the same workload.
    pub fn speedup_over(&self, baseline: &TrainingReport) -> f64 {
        if baseline.tokens_per_second <= 0.0 {
            return 0.0;
        }
        self.tokens_per_second / baseline.tokens_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tps: f64) -> TrainingReport {
        TrainingReport {
            balancer: "test".into(),
            dynamism: "test".into(),
            iterations: 10,
            total_time: 1.0,
            total_tokens: 1000,
            tokens_per_second: tps,
            average_idleness: 0.1,
            average_bubble_ratio: 0.1,
            mean_imbalance: 0.2,
            final_imbalance: 0.1,
            overhead: OverheadBreakdown::new(),
            overhead_fraction: 0.0,
            rebalance_events: 0,
            average_active_workers: 4.0,
            final_active_workers: 4,
            gpu_seconds: 4.0,
            tokens_per_second_per_gpu: tps / 4.0,
            trajectory_checksum: 0,
        }
    }

    #[test]
    fn speedup_is_a_throughput_ratio() {
        let fast = report(2000.0);
        let slow = report(1000.0);
        assert_eq!(fast.speedup_over(&slow), 2.0);
        assert_eq!(slow.speedup_over(&fast), 0.5);
        let zero = report(0.0);
        assert_eq!(fast.speedup_over(&zero), 0.0);
    }
}
