//! The end-to-end training loop (paper Figure 2).
//!
//! One [`Trainer`] drives: the dynamism engine (model/control-flow change),
//! the profiler (per-layer times & memory), the rebalance controller
//! (balance / re-pack / migrate), the pipeline simulator (iteration time,
//! idleness, bubbles), the hybrid data-parallel throughput model, and the
//! elastic job manager (GPU release).  The resulting
//! [`TrainingReport`](crate::report::TrainingReport) carries every quantity
//! the paper's evaluation section plots.

use dynmo_dynamics::DynamismEngine;
use dynmo_model::{ClusterConfig, Model};
use dynmo_pipeline::memory::inflight_microbatches;
use dynmo_pipeline::{
    load::{aggregate_stage_loads, apply_boundary_sizes},
    CommCostModel, HybridThroughputModel, LayerLoad, PipelineSimulator, ScheduleKind,
    StageAssignment,
};
use serde::{Deserialize, Serialize};

use dynmo_resilience::{
    Checkpoint, CheckpointCostModel, CheckpointStore, LayerState, TrainerState,
};

use crate::balancer::{stage_weights, BalanceObjective};
use crate::controller::RebalanceController;
use crate::elastic::{JobManager, MockJobManager};
use crate::imbalance::{load_imbalance, ImbalanceHistory};
use crate::overhead::OverheadBreakdown;
use crate::profiler::Profiler;
use crate::report::TrainingReport;

/// Configuration of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// The cluster (pipeline stages, data parallelism, device).
    pub cluster: ClusterConfig,
    /// The pipeline schedule to simulate.
    pub schedule: ScheduleKind,
    /// Number of training iterations.
    pub num_iterations: u64,
    /// Number of micro-batches per pipeline per iteration.
    pub num_microbatches: usize,
    /// Fraction of the data-parallel gradient all-reduce hidden behind the
    /// backward pass.
    pub allreduce_overlap: f64,
    /// The balancing objective used by the dynamic balancers.
    pub objective: BalanceObjective,
    /// Never consolidate below this many pipeline workers.
    pub min_workers: usize,
}

impl TrainerConfig {
    /// A configuration mirroring the paper's defaults for the given cluster:
    /// 1F1B schedule, four micro-batches per GPU (per [20] in the paper),
    /// mostly-overlapped gradient all-reduce.
    pub fn paper_defaults(cluster: ClusterConfig, num_iterations: u64) -> Self {
        TrainerConfig {
            cluster,
            schedule: ScheduleKind::OneFOneB,
            num_iterations,
            num_microbatches: cluster.pipeline_stages * 4,
            allreduce_overlap: 0.8,
            objective: BalanceObjective::ByTime,
            min_workers: 1,
        }
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        if self.num_iterations == 0 {
            return Err("num_iterations must be positive".into());
        }
        if self.num_microbatches == 0 {
            return Err("num_microbatches must be positive".into());
        }
        if self.min_workers == 0 {
            return Err("min_workers must be positive".into());
        }
        Ok(())
    }
}

/// Periodic checkpointing configuration for the simulated trainer.
struct Checkpointing {
    store: Box<dyn CheckpointStore + Send>,
    interval: u64,
    cost_model: CheckpointCostModel,
    keep: usize,
}

/// How many checkpoints the trainer retains by default — enough history to
/// roll back past a bad rebalance, bounded so a paper-scale run does not
/// accumulate hundreds of snapshots.
const DEFAULT_KEPT_CHECKPOINTS: usize = 8;

/// The end-to-end training loop.
pub struct Trainer {
    config: TrainerConfig,
    model: Model,
    profiler: Profiler,
    controller: RebalanceController,
    job_manager: MockJobManager,
    initial_assignment: Option<StageAssignment>,
    checkpointing: Option<Checkpointing>,
}

impl Trainer {
    /// Build a trainer for `model` under `config`, using `controller` for
    /// balancing decisions.
    pub fn new(model: Model, config: TrainerConfig, controller: RebalanceController) -> Self {
        config.validate().expect("invalid trainer configuration");
        let profiler = Profiler::new(config.cluster.device);
        let job_manager = MockJobManager::new(config.cluster.pipeline_stages);
        Trainer {
            config,
            model,
            profiler,
            controller,
            job_manager,
            initial_assignment: None,
            checkpointing: None,
        }
    }

    /// Enable periodic checkpointing: every `interval` iterations the
    /// trainer snapshots its restorable state (assignment, active workers,
    /// per-layer retention, key metrics) into `store`, and the simulated
    /// write cost is charged to the overhead report's `recovery` bucket —
    /// the fault-tolerance line item next to the paper's
    /// profiling/algorithm/migration buckets.
    pub fn with_checkpointing(
        mut self,
        store: Box<dyn CheckpointStore + Send>,
        interval: u64,
    ) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        self.checkpointing = Some(Checkpointing {
            store,
            interval,
            cost_model: CheckpointCostModel::default(),
            keep: DEFAULT_KEPT_CHECKPOINTS,
        });
        self
    }

    /// The checkpoint store, when checkpointing is enabled (for inspecting
    /// what a recovery would restore from).
    pub fn checkpoint_store(&self) -> Option<&(dyn CheckpointStore + Send)> {
        self.checkpointing.as_ref().map(|c| &*c.store)
    }

    /// Override the initial layer→stage assignment (static baselines such as
    /// DeepSpeed's parameter-balanced partitioning apply their split once,
    /// before training, instead of starting from the Megatron uniform
    /// split).  The assignment must cover every model layer and use at most
    /// the cluster's pipeline stages.
    pub fn with_initial_assignment(mut self, assignment: StageAssignment) -> Self {
        assert_eq!(
            assignment.num_layers(),
            self.model.num_layers(),
            "initial assignment must cover every model layer"
        );
        assert!(
            assignment.num_stages() <= self.config.cluster.pipeline_stages,
            "initial assignment uses more stages than the cluster has"
        );
        self.initial_assignment = Some(assignment);
        self
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// The job manager (for inspecting fleet events after a run).
    pub fn job_manager(&self) -> &MockJobManager {
        &self.job_manager
    }

    /// Run `engine` for the configured number of iterations and report.
    pub fn run(&mut self, engine: &mut dyn DynamismEngine) -> TrainingReport {
        let comm = CommCostModel::new(self.config.cluster);
        let simulator = PipelineSimulator::new(comm, self.config.schedule);
        let hybrid = HybridThroughputModel::new(comm, self.config.allreduce_overlap);
        let model_cfg = self.model.config().clone();

        let mut assignment = self.initial_assignment.clone().unwrap_or_else(|| {
            StageAssignment::uniform(self.model.num_layers(), self.config.cluster.pipeline_stages)
        });
        let mut active_workers = assignment.num_stages();
        let mut loads: Vec<LayerLoad> = Vec::new();
        let mut overhead = OverheadBreakdown::new();
        let mut imbalance_history = ImbalanceHistory::new();

        let mut total_time = 0.0f64;
        let mut total_tokens: u64 = 0;
        let mut idleness_sum = 0.0f64;
        let mut bubble_sum = 0.0f64;
        let mut active_worker_iterations = 0.0f64;
        let mut cached_iteration_time = 0.0f64;
        let mut cached_idleness = 0.0f64;
        let mut cached_bubble = 0.0f64;
        let mut cached_imbalance = 0.0f64;
        let mut cached_tokens: u64 = 0;
        let mut dirty = true;
        let mut last_imbalance = 0.0f64;

        for iteration in 0..self.config.num_iterations {
            self.job_manager.set_iteration(iteration);
            let update = engine.step(iteration);
            if update.changed || loads.is_empty() {
                loads = self.profiler.profile(&self.model, &update);
                dirty = true;
            }

            // Rebalance when due (black-box fixed cadence, §3.2).
            if self
                .controller
                .is_due(iteration, engine.rebalance_frequency())
            {
                let inflight: Vec<usize> = (0..active_workers)
                    .map(|s| {
                        inflight_microbatches(
                            self.config.schedule,
                            s,
                            active_workers,
                            self.config.num_microbatches,
                        )
                    })
                    .collect();
                let outcome = self.controller.rebalance(
                    &assignment,
                    &loads,
                    self.config.cluster.device.memory_capacity,
                    &inflight,
                    &comm,
                    self.config.min_workers,
                    self.config.num_microbatches,
                );
                let profiling_cost = self.profiler.profiling_cost(&loads);
                overhead.record(
                    profiling_cost,
                    outcome.algorithm_time,
                    outcome.migration_time,
                );
                total_time += profiling_cost + outcome.algorithm_time + outcome.migration_time;
                if !outcome.released_workers.is_empty() {
                    self.job_manager.release(&outcome.released_workers);
                }
                if outcome.assignment != assignment || outcome.active_workers != active_workers {
                    dirty = true;
                }
                active_workers = outcome.active_workers;
                assignment = outcome.assignment;
            }

            // Re-simulate the pipeline only when something changed.
            if dirty {
                let mut stage_loads = aggregate_stage_loads(
                    &loads,
                    assignment.layer_to_stage(),
                    assignment.num_stages(),
                );
                // Mechanisms that remove tokens (early exit) shrink the
                // boundary tensors of every stage behind the exit point,
                // and with them the pipeline's wire cost.
                apply_boundary_sizes(
                    &mut stage_loads,
                    assignment.layer_to_stage(),
                    &update.token_retention,
                    comm.activation_bytes(&model_cfg),
                );
                let report =
                    simulator.simulate(&model_cfg, &stage_loads, self.config.num_microbatches);
                let throughput = hybrid.throughput(
                    &model_cfg,
                    &report,
                    &stage_loads,
                    self.config.num_microbatches,
                );
                cached_iteration_time = throughput.iteration_time;
                cached_idleness = report.average_idleness();
                cached_bubble = report.bubble_ratio();
                cached_tokens = throughput.tokens_per_iteration;
                cached_imbalance =
                    load_imbalance(&stage_weights(&assignment, &loads, self.config.objective));
                dirty = false;
            }

            total_time += cached_iteration_time + engine.extra_overhead(iteration);
            total_tokens += cached_tokens;
            idleness_sum += cached_idleness;
            bubble_sum += cached_bubble;
            active_worker_iterations += active_workers as f64;
            last_imbalance = cached_imbalance;
            if iteration % 100 == 0 {
                imbalance_history.record(iteration, cached_imbalance);
            }

            // Periodic checkpoint: snapshot the restorable state and charge
            // the simulated write into the recovery overhead bucket.
            if let Some(checkpointing) = &mut self.checkpointing {
                if (iteration + 1).is_multiple_of(checkpointing.interval) {
                    let layers: Vec<LayerState> = loads
                        .iter()
                        .map(|load| LayerState {
                            layer_id: load.layer_id,
                            weights: vec![load.param_count as f32],
                            optimizer: vec![0.0],
                            pruning_mask: vec![true],
                            frozen: load.bwd_time == 0.0,
                            rng_state: 0,
                        })
                        .collect();
                    let mut metrics = std::collections::BTreeMap::new();
                    metrics.insert("imbalance".to_string(), cached_imbalance);
                    metrics.insert("total_time".to_string(), total_time);
                    metrics.insert("total_tokens".to_string(), total_tokens as f64);
                    let state = TrainerState {
                        iteration: iteration + 1,
                        world_size: active_workers,
                        assignment: assignment.clone(),
                        layers,
                        metrics,
                    };
                    match Checkpoint::new(state) {
                        Ok(checkpoint) => {
                            let cost = checkpointing
                                .cost_model
                                .write_cost(checkpoint.state.size_bytes());
                            match checkpointing.store.save(&checkpoint) {
                                Ok(()) => {
                                    checkpointing.store.retain_last(checkpointing.keep);
                                    overhead.record_recovery(cost);
                                    total_time += cost;
                                }
                                Err(err) => eprintln!(
                                    "warning: checkpoint at iteration {} not saved: {err}",
                                    iteration + 1
                                ),
                            }
                        }
                        Err(err) => eprintln!(
                            "warning: checkpoint at iteration {} not taken: {err}",
                            iteration + 1
                        ),
                    }
                }
            }
        }

        let iterations = self.config.num_iterations;
        let tokens_per_second = if total_time > 0.0 {
            total_tokens as f64 / total_time
        } else {
            0.0
        };
        let average_active_workers = active_worker_iterations / iterations as f64;
        let gpu_seconds =
            average_active_workers * self.config.cluster.data_parallel as f64 * total_time;
        let total_gpus_now = active_workers * self.config.cluster.data_parallel;
        TrainingReport {
            balancer: self.controller.name(),
            dynamism: engine.name(),
            iterations,
            total_time,
            total_tokens,
            tokens_per_second,
            average_idleness: idleness_sum / iterations as f64,
            average_bubble_ratio: bubble_sum / iterations as f64,
            mean_imbalance: imbalance_history.mean(),
            final_imbalance: last_imbalance,
            overhead,
            overhead_fraction: overhead.fraction_of(total_time),
            rebalance_events: overhead.rebalance_events,
            average_active_workers,
            final_active_workers: total_gpus_now / self.config.cluster.data_parallel.max(1),
            gpu_seconds,
            tokens_per_second_per_gpu: if gpu_seconds > 0.0 {
                total_tokens as f64 / gpu_seconds
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{DiffusionBalancer, PartitionBalancer};
    use crate::controller::RebalancePolicy;
    use crate::repack::RepackConfig;
    use dynmo_dynamics::{
        EarlyExitEngine, EarlyExitMethod, FreezingEngine, FreezingPolicy, GradualPruningEngine,
        PruningSchedule,
    };
    use dynmo_model::{DeviceSpec, ModelPreset};

    fn small_cluster(stages: usize) -> ClusterConfig {
        ClusterConfig {
            gpus_per_node: stages,
            pipeline_stages: stages,
            data_parallel: 1,
            device: DeviceSpec::h100_sxm5(),
        }
    }

    fn config(stages: usize, iterations: u64) -> TrainerConfig {
        TrainerConfig {
            cluster: small_cluster(stages),
            schedule: ScheduleKind::OneFOneB,
            num_iterations: iterations,
            num_microbatches: stages * 4,
            allreduce_overlap: 0.8,
            objective: BalanceObjective::ByTime,
            min_workers: 1,
        }
    }

    fn dynamic_controller() -> RebalanceController {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    }

    fn static_controller() -> RebalanceController {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::disabled(),
        )
    }

    #[test]
    fn config_validation_catches_degenerate_values() {
        let mut cfg = config(4, 10);
        cfg.num_iterations = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = config(4, 10);
        cfg.num_microbatches = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = config(4, 10);
        cfg.min_workers = 0;
        assert!(cfg.validate().is_err());
        assert!(config(4, 10).validate().is_ok());
    }

    #[test]
    fn dynamic_rebalancing_beats_static_on_early_exit() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut static_trainer = Trainer::new(model.clone(), config(8, 300), static_controller());
        let mut dynamic_trainer = Trainer::new(model.clone(), config(8, 300), dynamic_controller());

        let mut engine_a = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 11);
        let mut engine_b = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 11);
        let static_report = static_trainer.run(&mut engine_a);
        let dynamic_report = dynamic_trainer.run(&mut engine_b);

        assert!(
            dynamic_report.tokens_per_second > static_report.tokens_per_second * 1.2,
            "dynamic {} vs static {}",
            dynamic_report.tokens_per_second,
            static_report.tokens_per_second
        );
        // Rebalancing reduces both idleness and measured imbalance.
        assert!(dynamic_report.average_idleness < static_report.average_idleness);
        assert!(dynamic_report.mean_imbalance < static_report.mean_imbalance);
        assert!(dynamic_report.rebalance_events > 0);
        assert_eq!(static_report.rebalance_events, 0);
        // Overhead stays in the single-digit-percent range the paper claims.
        assert!(dynamic_report.overhead_fraction < 0.1);
    }

    #[test]
    fn diffusion_and_partition_reach_similar_throughput() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 32 });
        let run = |controller: RebalanceController| {
            let mut trainer = Trainer::new(model.clone(), config(8, 200), controller);
            let mut engine = FreezingEngine::new(&model, FreezingPolicy::paper_default(), 3);
            trainer.run(&mut engine)
        };
        let partition = run(RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        ));
        let diffusion = run(RebalanceController::new(
            Box::new(DiffusionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        ));
        let ratio = diffusion.tokens_per_second / partition.tokens_per_second;
        assert!(ratio > 0.85 && ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn repacking_reduces_average_gpu_usage_under_pruning() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        // Compress the pruning schedule into a short run.
        let schedule = PruningSchedule {
            initial_sparsity: 0.0,
            final_sparsity: 0.9,
            start_iteration: 50,
            frequency: 50,
            num_steps: 4,
        };
        let repack = RepackConfig {
            max_memory: DeviceSpec::h100_sxm5().memory_capacity,
            target_num_workers: 2,
            utilization_cap: 0.9,
        };
        let controller = RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy {
                enabled: true,
                frequency: Some(dynmo_dynamics::RebalanceFrequency::EveryN(50)),
                repack: Some(repack),
            },
        );
        let mut trainer = Trainer::new(model.clone(), config(8, 400), controller);
        let mut engine = GradualPruningEngine::new(&model, schedule, 5);
        let report = trainer.run(&mut engine);
        assert!(
            report.average_active_workers < 8.0,
            "average workers {}",
            report.average_active_workers
        );
        assert!(report.final_active_workers < 8);
        assert!(!trainer.job_manager().events().is_empty());
        // Throughput per GPU must not collapse when consolidating.
        assert!(report.tokens_per_second_per_gpu > 0.0);
    }

    #[test]
    fn checkpointing_snapshots_state_and_charges_recovery_overhead() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut trainer = Trainer::new(model.clone(), config(4, 60), dynamic_controller())
            .with_checkpointing(Box::new(dynmo_resilience::MemoryCheckpointStore::new()), 20);
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        let report = trainer.run(&mut engine);
        assert!(report.overhead.recovery > 0.0);
        assert_eq!(report.overhead.recovery_events, 3);
        let store = trainer.checkpoint_store().unwrap();
        assert_eq!(store.iterations(), vec![20, 40, 60]);
        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.iteration(), 60);
        let state = latest.verify().unwrap();
        // 24 transformer blocks plus the embedding and head layers.
        assert_eq!(state.layers.len(), 26);
        assert!(state.metrics.contains_key("imbalance"));
        // Without checkpointing the recovery bucket stays empty.
        let mut plain = Trainer::new(model.clone(), config(4, 60), dynamic_controller());
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        let plain_report = plain.run(&mut engine);
        assert_eq!(plain_report.overhead.recovery, 0.0);
        assert!(plain.checkpoint_store().is_none());
    }

    #[test]
    fn advanced_schedules_thread_through_the_trainer() {
        // The interleaved and zero-bubble schedules must run end-to-end
        // through the trainer (profiler → balancer → simulator → report)
        // and, with the same dynamism trajectory (same seed), never produce
        // a larger pipeline bubble than non-interleaved 1F1B.
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let run = |schedule: ScheduleKind| {
            let mut cfg = config(4, 60);
            cfg.schedule = schedule;
            let mut trainer = Trainer::new(model.clone(), cfg, dynamic_controller());
            let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7);
            trainer.run(&mut engine)
        };
        let base = run(ScheduleKind::OneFOneB);
        for schedule in [
            ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
            ScheduleKind::ZeroBubbleH1,
        ] {
            let report = run(schedule);
            assert!(
                report.average_bubble_ratio <= base.average_bubble_ratio + 1e-9,
                "{schedule:?}: bubble {} vs 1F1B {}",
                report.average_bubble_ratio,
                base.average_bubble_ratio
            );
            assert!(report.tokens_per_second >= base.tokens_per_second);
            assert_eq!(report.total_tokens, base.total_tokens);
        }
    }

    #[test]
    fn report_totals_are_consistent() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut trainer = Trainer::new(model.clone(), config(4, 50), dynamic_controller());
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::AdpC, 1);
        let report = trainer.run(&mut engine);
        assert_eq!(report.iterations, 50);
        assert!(report.total_time > 0.0);
        assert_eq!(report.total_tokens, 50 * 16 * 2 * 2048);
        let recomputed = report.total_tokens as f64 / report.total_time;
        assert!((recomputed - report.tokens_per_second).abs() / recomputed < 1e-9);
        assert!(report.average_bubble_ratio >= 0.0 && report.average_bubble_ratio < 1.0);
        assert!(report.overhead_fraction >= 0.0);
    }
}
