//! The end-to-end training loop (paper Figure 2).
//!
//! One [`Trainer`] drives: the dynamism engine (model/control-flow change),
//! the profiler (per-layer times & memory), the rebalance controller
//! (balance / re-pack / migrate), the pipeline simulator (iteration time,
//! idleness, bubbles), the hybrid data-parallel throughput model, and the
//! elastic job manager (GPU release).  The resulting
//! [`TrainingReport`](crate::report::TrainingReport) carries every quantity
//! the paper's evaluation section plots.

use std::sync::Arc;

use dynmo_dynamics::{ComposedEngine, DynamismEngine};
use dynmo_model::{ClusterConfig, Model};
use dynmo_pipeline::memory::inflight_microbatches;
use dynmo_pipeline::{
    load::{aggregate_stage_loads, apply_boundary_sizes},
    CommCostModel, HybridThroughputModel, LayerLoad, PipelineSimulator, ScheduleKind,
    StageAssignment,
};
use dynmo_telemetry::{LogLevel, MarkerKind, NullRecorder, Recorder, Stopwatch};
use serde::{Deserialize, Serialize};

use dynmo_resilience::{
    Checkpoint, CheckpointCostModel, CheckpointStore, LayerState, TrainerState,
};

use crate::balancer::{stage_weights, BalanceObjective};
use crate::controller::RebalanceController;
use crate::elastic::{JobManager, MockJobManager};
use crate::imbalance::{load_imbalance, ImbalanceHistory};
use crate::overhead::OverheadBreakdown;
use crate::profiler::{Profiler, StragglerDetector};
use crate::report::TrainingReport;

/// Configuration of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// The cluster (pipeline stages, data parallelism, device).
    pub cluster: ClusterConfig,
    /// The pipeline schedule to simulate.
    pub schedule: ScheduleKind,
    /// Number of training iterations.
    pub num_iterations: u64,
    /// Number of micro-batches per pipeline per iteration.
    pub num_microbatches: usize,
    /// Fraction of the data-parallel gradient all-reduce hidden behind the
    /// backward pass.
    pub allreduce_overlap: f64,
    /// The balancing objective used by the dynamic balancers.
    pub objective: BalanceObjective,
    /// Never consolidate below this many pipeline workers.
    pub min_workers: usize,
}

impl TrainerConfig {
    /// A configuration mirroring the paper's defaults for the given cluster:
    /// 1F1B schedule, four micro-batches per GPU (per [20] in the paper),
    /// mostly-overlapped gradient all-reduce.
    pub fn paper_defaults(cluster: ClusterConfig, num_iterations: u64) -> Self {
        let num_microbatches = cluster.pipeline_stages * 4;
        TrainerConfig {
            cluster,
            schedule: ScheduleKind::OneFOneB,
            num_iterations,
            num_microbatches,
            allreduce_overlap: 0.8,
            objective: BalanceObjective::ByTime,
            min_workers: 1,
        }
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        if self.num_iterations == 0 {
            return Err("num_iterations must be positive".into());
        }
        if self.num_microbatches == 0 {
            return Err("num_microbatches must be positive".into());
        }
        if self.min_workers == 0 {
            return Err("min_workers must be positive".into());
        }
        Ok(())
    }
}

/// Periodic checkpointing configuration for the simulated trainer.
struct Checkpointing {
    store: Box<dyn CheckpointStore + Send>,
    interval: u64,
    cost_model: CheckpointCostModel,
    keep: usize,
}

/// How many checkpoints the trainer retains by default — enough history to
/// roll back past a bad rebalance, bounded so a paper-scale run does not
/// accumulate hundreds of snapshots.
const DEFAULT_KEPT_CHECKPOINTS: usize = 8;

/// Incremental FNV-1a over the per-iteration simulated trajectory: iteration
/// time, tokens, imbalance, and the layer→stage assignment.  Wall-clock
/// quantities (the measured balancing-algorithm time) are deliberately
/// excluded, so the checksum is bit-reproducible across runs and machines —
/// a recovered run must land on exactly the failure-free run's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TrajectoryHash(dynmo_resilience::Fnv1a);

impl TrajectoryHash {
    fn new() -> Self {
        TrajectoryHash(dynmo_resilience::Fnv1a::new())
    }

    fn from_u64(state: u64) -> Self {
        TrajectoryHash(dynmo_resilience::Fnv1a::from_state(state))
    }

    fn value(&self) -> u64 {
        self.0.state()
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }

    fn record_iteration(
        &mut self,
        iteration: u64,
        iteration_time: f64,
        tokens: u64,
        imbalance: f64,
        assignment: &StageAssignment,
    ) {
        self.push_bytes(&iteration.to_le_bytes());
        self.push_bytes(&iteration_time.to_bits().to_le_bytes());
        self.push_bytes(&tokens.to_le_bytes());
        self.push_bytes(&imbalance.to_bits().to_le_bytes());
        for &stage in assignment.layer_to_stage() {
            self.push_bytes(&(stage as u64).to_le_bytes());
        }
    }
}

/// Metric keys the trainer stores in its checkpoints so a resumed run can
/// restore every accumulator bit-for-bit (f64 values round-trip exactly
/// through the JSON layer).
mod metric_keys {
    pub const TOTAL_TIME: &str = "total_time";
    pub const TOTAL_TOKENS: &str = "total_tokens";
    pub const IMBALANCE: &str = "imbalance";
    pub const IDLENESS_SUM: &str = "idleness_sum";
    pub const BUBBLE_SUM: &str = "bubble_sum";
    pub const ACTIVE_WORKER_ITERATIONS: &str = "active_worker_iterations";
    pub const TRAJECTORY_LO: &str = "trajectory_lo";
    pub const TRAJECTORY_HI: &str = "trajectory_hi";
    pub const OV_PROFILING: &str = "overhead_profiling";
    pub const OV_ALGORITHM: &str = "overhead_algorithm";
    pub const OV_MIGRATION: &str = "overhead_migration";
    pub const OV_RECOVERY: &str = "overhead_recovery";
    pub const OV_REBALANCE_EVENTS: &str = "overhead_rebalance_events";
    pub const OV_RECOVERY_EVENTS: &str = "overhead_recovery_events";
    /// Per-sample imbalance-history keys: `imbalance@<iteration>`.
    pub const IMBALANCE_AT_PREFIX: &str = "imbalance@";
}

fn read_metric(state: &TrainerState, key: &str) -> Result<f64, String> {
    state
        .metrics
        .get(key)
        .copied()
        .ok_or_else(|| format!("checkpoint is missing the '{key}' metric"))
}

/// The restorable payload of a checkpoint — layers, assignment, engine
/// state — with empty metrics.  The simulated write cost is priced on this
/// payload alone, so the price never depends on bookkeeping size.
fn base_state(
    iteration: u64,
    world_size: usize,
    assignment: &StageAssignment,
    loads: &[LayerLoad],
    engine: &mut dyn DynamismEngine,
) -> TrainerState {
    let layers: Vec<LayerState> = loads
        .iter()
        .map(|load| LayerState {
            layer_id: load.layer_id,
            weights: vec![load.param_count as f32],
            optimizer: vec![0.0],
            pruning_mask: vec![true],
            frozen: load.bwd_time == 0.0,
            rng_state: 0,
        })
        .collect();
    TrainerState {
        iteration,
        world_size,
        assignment: assignment.clone(),
        layers,
        metrics: std::collections::BTreeMap::new(),
        engine: Some(engine.export_state()),
    }
}

/// The resume accumulators a snapshot carries so a resumed run restores
/// every report quantity bit-for-bit.
struct ResumeMetrics<'a> {
    cached_imbalance: f64,
    total_time: f64,
    total_tokens: u64,
    idleness_sum: f64,
    bubble_sum: f64,
    active_worker_iterations: f64,
    trajectory: u64,
    overhead: &'a OverheadBreakdown,
    imbalance_history: &'a ImbalanceHistory,
}

fn fill_metrics(state: &mut TrainerState, resume: &ResumeMetrics<'_>) {
    let metrics = &mut state.metrics;
    metrics.insert(metric_keys::IMBALANCE.into(), resume.cached_imbalance);
    metrics.insert(metric_keys::TOTAL_TIME.into(), resume.total_time);
    metrics.insert(metric_keys::TOTAL_TOKENS.into(), resume.total_tokens as f64);
    metrics.insert(metric_keys::IDLENESS_SUM.into(), resume.idleness_sum);
    metrics.insert(metric_keys::BUBBLE_SUM.into(), resume.bubble_sum);
    metrics.insert(
        metric_keys::ACTIVE_WORKER_ITERATIONS.into(),
        resume.active_worker_iterations,
    );
    let hash = resume.trajectory;
    metrics.insert(
        metric_keys::TRAJECTORY_LO.into(),
        (hash & 0xFFFF_FFFF) as f64,
    );
    metrics.insert(metric_keys::TRAJECTORY_HI.into(), (hash >> 32) as f64);
    metrics.insert(metric_keys::OV_PROFILING.into(), resume.overhead.profiling);
    metrics.insert(metric_keys::OV_ALGORITHM.into(), resume.overhead.algorithm);
    metrics.insert(metric_keys::OV_MIGRATION.into(), resume.overhead.migration);
    metrics.insert(metric_keys::OV_RECOVERY.into(), resume.overhead.recovery);
    metrics.insert(
        metric_keys::OV_REBALANCE_EVENTS.into(),
        resume.overhead.rebalance_events as f64,
    );
    metrics.insert(
        metric_keys::OV_RECOVERY_EVENTS.into(),
        resume.overhead.recovery_events as f64,
    );
    for &(it, value) in resume.imbalance_history.samples() {
        metrics.insert(format!("{}{it}", metric_keys::IMBALANCE_AT_PREFIX), value);
    }
}

/// Transform a checkpointed [`TrainerState`] for an elastic rescale to
/// `new_world_size` pipeline stages — the fleet controller's
/// checkpoint-shrink-resume (and grow) hook.  The assignment is re-laid
/// out uniformly over the new world (the rebalance controller balances it
/// properly at its next due iteration), and `rescale_cost` simulated
/// seconds (checkpoint write + communicator rebuild) are charged into the
/// checkpointed total time and the recovery overhead bucket, so the
/// resumed run's accumulators include the rescale just as
/// [`crate::recovery::run_elastic_rescale`] charges its own.  The
/// trajectory checksum is deliberately untouched: it hashes only
/// per-iteration simulated quantities, so outside the rescale windows a
/// shrunken-and-regrown run stays bit-identical to an undisturbed one.
pub fn rescale_trainer_state(
    state: &TrainerState,
    new_world_size: usize,
    rescale_cost: f64,
) -> Result<TrainerState, String> {
    if new_world_size == 0 {
        return Err("cannot rescale to zero pipeline stages".into());
    }
    if !rescale_cost.is_finite() || rescale_cost < 0.0 {
        return Err(format!(
            "rescale cost {rescale_cost} must be finite and ≥ 0"
        ));
    }
    if state.engine.is_none() {
        return Err("checkpoint carries no engine state; cannot rescale".into());
    }
    let total_time = read_metric(state, metric_keys::TOTAL_TIME)?;
    let recovery = read_metric(state, metric_keys::OV_RECOVERY)?;
    let recovery_events = read_metric(state, metric_keys::OV_RECOVERY_EVENTS)?;
    let mut out = state.clone();
    out.world_size = new_world_size;
    out.assignment = StageAssignment::uniform(state.assignment.num_layers(), new_world_size);
    out.metrics
        .insert(metric_keys::TOTAL_TIME.into(), total_time + rescale_cost);
    out.metrics
        .insert(metric_keys::OV_RECOVERY.into(), recovery + rescale_cost);
    out.metrics.insert(
        metric_keys::OV_RECOVERY_EVENTS.into(),
        recovery_events + 1.0,
    );
    Ok(out)
}

/// The outcome of [`Trainer::run_segment`]: the cumulative report at the
/// segment boundary plus the exported [`TrainerState`] the next segment
/// (possibly on a rescaled world) resumes from.
pub struct SegmentOutcome {
    /// Cumulative training report from iteration 0 through the boundary.
    pub report: TrainingReport,
    /// Restorable snapshot at the boundary (engine state included).
    pub state: TrainerState,
}

/// The end-to-end training loop.
pub struct Trainer {
    config: TrainerConfig,
    model: Model,
    profiler: Profiler,
    controller: RebalanceController,
    job_manager: MockJobManager,
    initial_assignment: Option<StageAssignment>,
    checkpointing: Option<Checkpointing>,
    recorder: Arc<dyn Recorder>,
    straggler_injection: Option<Vec<f64>>,
}

impl Trainer {
    /// Build a trainer for `model` under `config`, using `controller` for
    /// balancing decisions.
    pub fn new(model: Model, config: TrainerConfig, controller: RebalanceController) -> Self {
        config.validate().expect("invalid trainer configuration");
        let profiler = Profiler::new(config.cluster.device);
        let job_manager = MockJobManager::new(config.cluster.pipeline_stages);
        Trainer {
            config,
            model,
            profiler,
            controller,
            job_manager,
            initial_assignment: None,
            checkpointing: None,
            recorder: Arc::new(NullRecorder),
            straggler_injection: None,
        }
    }

    /// Inject per-stage compute slowdowns — the simulation-side ground truth
    /// for straggler experiments.  Stage `s` runs `slowdowns[s]`× slower than
    /// its device spec predicts.  The balancer is *not* told: it only learns
    /// about the slowdown once the profiler's [`StragglerDetector`] confirms
    /// it (persistently slow for several consecutive observations), at which
    /// point the stage's effective speed is downgraded in every subsequent
    /// rebalance and a `StragglerDetected` marker is recorded.
    pub fn with_straggler_injection(mut self, slowdowns: Vec<f64>) -> Self {
        assert_eq!(
            slowdowns.len(),
            self.config.cluster.pipeline_stages,
            "straggler injection must cover every pipeline stage"
        );
        assert!(
            slowdowns.iter().all(|&s| s >= 1.0),
            "straggler slowdowns must be >= 1.0 (1.0 = healthy)"
        );
        self.straggler_injection = Some(slowdowns);
        self
    }

    /// Attach a telemetry recorder.  Each newly simulated iteration's
    /// per-rank op timeline is recorded as spans on group 0 (offset by the
    /// simulated clock so iterations tile into continuous tracks), with
    /// instant markers for rebalance and checkpoint events and log events
    /// replacing stderr warnings.  Everything recorded is simulated-time
    /// data: enabling a recorder never changes a report, a checksum, or a
    /// sweep artifact.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Enable periodic checkpointing: every `interval` iterations the
    /// trainer snapshots its restorable state (assignment, active workers,
    /// per-layer retention, key metrics) into `store`, and the simulated
    /// write cost is charged to the overhead report's `recovery` bucket —
    /// the fault-tolerance line item next to the paper's
    /// profiling/algorithm/migration buckets.
    pub fn with_checkpointing(
        mut self,
        store: Box<dyn CheckpointStore + Send>,
        interval: u64,
    ) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        self.checkpointing = Some(Checkpointing {
            store,
            interval,
            cost_model: CheckpointCostModel::default(),
            keep: DEFAULT_KEPT_CHECKPOINTS,
        });
        self
    }

    /// The checkpoint store, when checkpointing is enabled (for inspecting
    /// what a recovery would restore from).
    pub fn checkpoint_store(&self) -> Option<&(dyn CheckpointStore + Send)> {
        self.checkpointing.as_ref().map(|c| &*c.store)
    }

    /// Override the initial layer→stage assignment (static baselines such as
    /// DeepSpeed's parameter-balanced partitioning apply their split once,
    /// before training, instead of starting from the Megatron uniform
    /// split).  The assignment must cover every model layer and use at most
    /// the cluster's pipeline stages.
    pub fn with_initial_assignment(mut self, assignment: StageAssignment) -> Self {
        assert_eq!(
            assignment.num_layers(),
            self.model.num_layers(),
            "initial assignment must cover every model layer"
        );
        assert!(
            assignment.num_stages() <= self.config.cluster.pipeline_stages,
            "initial assignment uses more stages than the cluster has"
        );
        self.initial_assignment = Some(assignment);
        self
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// The job manager (for inspecting fleet events after a run).
    pub fn job_manager(&self) -> &MockJobManager {
        &self.job_manager
    }

    /// Run `engine` for the configured number of iterations and report.
    pub fn run(&mut self, engine: &mut dyn DynamismEngine) -> TrainingReport {
        self.run_from(engine, None, None, false)
            .expect("a fresh (non-resumed) run cannot fail to start")
            .0
    }

    /// Run an ordered *stack* of dynamism mechanisms acting on the same
    /// model: the engines are composed (see
    /// [`ComposedEngine`](dynmo_dynamics::ComposedEngine)), their per-layer
    /// load updates merged multiplicatively, and the merged multipliers are
    /// what the profiler — and through it both balancer families — observe.
    ///
    /// # Panics
    ///
    /// Panics if the stack is invalid (empty, duplicate mechanisms, nested
    /// composites) — construct the [`ComposedEngine`] yourself and call
    /// [`Trainer::run`] to handle that fallibly.
    pub fn run_stack(&mut self, engines: Vec<Box<dyn DynamismEngine + Send>>) -> TrainingReport {
        let mut composed = ComposedEngine::new(engines).expect("invalid composite stack");
        self.run(&mut composed)
    }

    /// Resume a run from a checkpointed [`TrainerState`]: the engine's
    /// internal state (every sub-engine's RNG streams and masks, for a
    /// composed stack) is restored from the snapshot, the assignment,
    /// active-worker count, and all report accumulators are rewound to the
    /// checkpoint, and the remaining iterations are replayed.  The replay
    /// reproduces the original run's simulated trajectory bit-for-bit: the
    /// resumed report's `trajectory_checksum` equals the failure-free
    /// run's.
    ///
    /// Fails if the snapshot carries no engine state, the engine state does
    /// not match `engine`, or a resume accumulator is missing (a v1-style
    /// checkpoint).
    pub fn resume(
        &mut self,
        engine: &mut dyn DynamismEngine,
        state: &TrainerState,
    ) -> Result<TrainingReport, String> {
        Ok(self.run_from(engine, Some(state), None, false)?.0)
    }

    /// Run a bounded *segment* of the training loop: from `resume` (or
    /// iteration 0) up to — exclusive of nothing — iteration `until`, then
    /// stop at the boundary and export the restorable state.  Chaining
    /// segments with each outcome's `state` as the next call's `resume`
    /// reproduces an unsegmented run's trajectory checksum bit-for-bit
    /// (the rebalance controller is stateless in `iteration`, and every
    /// accumulator round-trips through the snapshot), which is what lets a
    /// fleet controller interleave training with serving on a shared clock
    /// and still pin the trainer's trajectory against an undisturbed run.
    pub fn run_segment(
        &mut self,
        engine: &mut dyn DynamismEngine,
        resume: Option<&TrainerState>,
        until: u64,
    ) -> Result<SegmentOutcome, String> {
        let (report, state) = self.run_from(engine, resume, Some(until), true)?;
        Ok(SegmentOutcome {
            report,
            state: state.expect("segment runs export their final state"),
        })
    }

    fn run_from(
        &mut self,
        engine: &mut dyn DynamismEngine,
        resume: Option<&TrainerState>,
        until: Option<u64>,
        export_state: bool,
    ) -> Result<(TrainingReport, Option<TrainerState>), String> {
        let recorder = Arc::clone(&self.recorder);
        let comm = CommCostModel::new(self.config.cluster.clone());
        let simulator = PipelineSimulator::new(comm.clone(), self.config.schedule);
        let hybrid = HybridThroughputModel::new(comm.clone(), self.config.allreduce_overlap);
        let model_cfg = self.model.config().clone();

        // Heterogeneous-cluster speeds/capacities (known a priori from the
        // device specs) plus the straggler detector (fed at runtime from
        // observed vs. expected stage times).  All of this is `None` on a
        // homogeneous, straggler-free run, which keeps that path bit-identical
        // to the speed-free code.
        let pipeline_stages = self.config.cluster.pipeline_stages;
        let base_speeds = self.config.cluster.stage_speeds();
        let stage_capacities = self.config.cluster.stage_capacities();
        let mut detector = StragglerDetector::new(pipeline_stages);
        // Ground-truth per-stage compute slowdown the *simulator* applies:
        // the device generation's speed deficit plus any injected straggler.
        let actual_slowdowns: Option<Vec<f64>> =
            if base_speeds.is_none() && self.straggler_injection.is_none() {
                None
            } else {
                Some(
                    (0..pipeline_stages)
                        .map(|s| {
                            let speed = base_speeds.as_ref().map_or(1.0, |v| v[s]);
                            let inject = self.straggler_injection.as_ref().map_or(1.0, |v| v[s]);
                            inject / speed
                        })
                        .collect(),
                )
            };

        let mut assignment = self.initial_assignment.clone().unwrap_or_else(|| {
            StageAssignment::uniform(self.model.num_layers(), self.config.cluster.pipeline_stages)
        });
        let mut active_workers = assignment.num_stages();
        let mut loads: Vec<LayerLoad> = Vec::new();
        let mut overhead = OverheadBreakdown::new();
        let mut imbalance_history = ImbalanceHistory::new();

        let mut total_time = 0.0f64;
        let mut total_tokens: u64 = 0;
        let mut idleness_sum = 0.0f64;
        let mut bubble_sum = 0.0f64;
        let mut active_worker_iterations = 0.0f64;
        let mut cached_iteration_time = 0.0f64;
        let mut cached_idleness = 0.0f64;
        let mut cached_bubble = 0.0f64;
        let mut cached_imbalance = 0.0f64;
        let mut cached_tokens: u64 = 0;
        let mut dirty = true;
        let mut last_imbalance = 0.0f64;
        let mut trajectory = TrajectoryHash::new();
        let mut start_iteration = 0u64;

        let end_iteration = until.unwrap_or(self.config.num_iterations);
        if end_iteration > self.config.num_iterations {
            return Err(format!(
                "segment boundary {} exceeds the configured {} iterations",
                end_iteration, self.config.num_iterations
            ));
        }

        if let Some(state) = resume {
            let engine_state = state
                .engine
                .as_ref()
                .ok_or("checkpoint carries no engine state; cannot resume the dynamism stack")?;
            engine.import_state(engine_state)?;
            if state.iteration > end_iteration {
                return Err(format!(
                    "checkpoint is at iteration {} but the run only has {}",
                    state.iteration, end_iteration
                ));
            }
            // The engine-name check above cannot catch a same-typed engine
            // on a differently sized model; the assignment shape can.
            if state.assignment.num_layers() != self.model.num_layers() {
                return Err(format!(
                    "checkpoint assignment covers {} layers but the model has {}",
                    state.assignment.num_layers(),
                    self.model.num_layers()
                ));
            }
            if state.assignment.num_stages() > self.config.cluster.pipeline_stages {
                return Err(format!(
                    "checkpoint assignment uses {} stages but the cluster has {}",
                    state.assignment.num_stages(),
                    self.config.cluster.pipeline_stages
                ));
            }
            assignment = state.assignment.clone();
            active_workers = state.world_size;
            start_iteration = state.iteration;
            total_time = read_metric(state, metric_keys::TOTAL_TIME)?;
            total_tokens = read_metric(state, metric_keys::TOTAL_TOKENS)? as u64;
            idleness_sum = read_metric(state, metric_keys::IDLENESS_SUM)?;
            bubble_sum = read_metric(state, metric_keys::BUBBLE_SUM)?;
            active_worker_iterations = read_metric(state, metric_keys::ACTIVE_WORKER_ITERATIONS)?;
            last_imbalance = read_metric(state, metric_keys::IMBALANCE)?;
            let lo = read_metric(state, metric_keys::TRAJECTORY_LO)? as u64;
            let hi = read_metric(state, metric_keys::TRAJECTORY_HI)? as u64;
            trajectory = TrajectoryHash::from_u64(lo | (hi << 32));
            overhead.profiling = read_metric(state, metric_keys::OV_PROFILING)?;
            overhead.algorithm = read_metric(state, metric_keys::OV_ALGORITHM)?;
            overhead.migration = read_metric(state, metric_keys::OV_MIGRATION)?;
            overhead.recovery = read_metric(state, metric_keys::OV_RECOVERY)?;
            overhead.rebalance_events =
                read_metric(state, metric_keys::OV_REBALANCE_EVENTS)? as u64;
            overhead.recovery_events = read_metric(state, metric_keys::OV_RECOVERY_EVENTS)? as u64;
            let mut samples: Vec<(u64, f64)> = state
                .metrics
                .iter()
                .filter_map(|(key, &value)| {
                    key.strip_prefix(metric_keys::IMBALANCE_AT_PREFIX)
                        .and_then(|it| it.parse::<u64>().ok())
                        .map(|it| (it, value))
                })
                .collect();
            samples.sort_by_key(|&(it, _)| it);
            for (it, value) in samples {
                imbalance_history.record(it, value);
            }
        }

        for iteration in start_iteration..end_iteration {
            self.job_manager.set_iteration(iteration);
            let update = engine.step(iteration);
            if update.changed || loads.is_empty() {
                loads = self.profiler.profile(&self.model, &update);
                dirty = true;
            }

            // Straggler detection: compare the observed per-stage compute
            // times (which include the injected slowdown) against what the
            // device specs predict, and confirm persistent outliers.
            if let Some(injection) = &self.straggler_injection {
                let ideal = stage_weights(&assignment, &loads, BalanceObjective::ByTime);
                let expected: Vec<f64> = ideal
                    .iter()
                    .enumerate()
                    .map(|(s, &w)| w / base_speeds.as_ref().map_or(1.0, |v| v[s]))
                    .collect();
                let observed: Vec<f64> = expected
                    .iter()
                    .enumerate()
                    .map(|(s, &e)| e * injection.get(s).copied().unwrap_or(1.0))
                    .collect();
                for (stage, speed) in detector.observe(&observed, &expected) {
                    recorder.instant(
                        0,
                        MarkerKind::StragglerDetected,
                        &format!("stage {stage}"),
                        total_time,
                        &[
                            ("iteration", iteration.to_string()),
                            ("stage", stage.to_string()),
                            ("effective_speed", format!("{speed:.4}")),
                        ],
                    );
                }
            }

            // Rebalance when due (black-box fixed cadence, §3.2).
            if self
                .controller
                .is_due(iteration, engine.rebalance_frequency())
            {
                let inflight: Vec<usize> = (0..active_workers)
                    .map(|s| {
                        inflight_microbatches(
                            self.config.schedule,
                            s,
                            active_workers,
                            self.config.num_microbatches,
                        )
                    })
                    .collect();
                // The balancer sees the device-spec speeds (known a priori)
                // multiplied by the detector's confirmed downgrades — never
                // the raw injection, which it has no way to observe directly.
                let downgrades = detector.downgrades();
                let effective_speeds: Option<Vec<f64>> =
                    if base_speeds.is_none() && downgrades.is_none() {
                        None
                    } else {
                        Some(
                            (0..pipeline_stages)
                                .map(|s| {
                                    base_speeds.as_ref().map_or(1.0, |v| v[s])
                                        * downgrades.as_ref().map_or(1.0, |v| v[s])
                                })
                                .collect(),
                        )
                    };
                let outcome = self.controller.rebalance(
                    &assignment,
                    &loads,
                    self.config.cluster.device.memory_capacity,
                    &inflight,
                    &comm,
                    self.config.min_workers,
                    self.config.num_microbatches,
                    effective_speeds.as_deref(),
                    stage_capacities.as_deref(),
                );
                let profiling_cost = self.profiler.profiling_cost(&loads);
                overhead.record(
                    profiling_cost,
                    outcome.algorithm_time,
                    outcome.migration_time,
                );
                // The wall-clock the controller actually burned, kept apart
                // from the modeled buckets (never checkpointed or pinned).
                overhead.measured.record_balancer(outcome.algorithm_time);
                overhead.measured.record_planning(outcome.planning_time);
                total_time += profiling_cost + outcome.algorithm_time + outcome.migration_time;
                recorder.instant(
                    0,
                    MarkerKind::Rebalance,
                    &format!("iter {iteration}"),
                    total_time,
                    &[
                        ("iteration", iteration.to_string()),
                        ("active_workers", outcome.active_workers.to_string()),
                        ("released", outcome.released_workers.len().to_string()),
                        ("migrated_layers", outcome.migration.num_moves().to_string()),
                        ("rounds", outcome.rounds.to_string()),
                    ],
                );
                if !outcome.released_workers.is_empty() {
                    self.job_manager.release(&outcome.released_workers);
                }
                if outcome.assignment != assignment || outcome.active_workers != active_workers {
                    dirty = true;
                }
                active_workers = outcome.active_workers;
                assignment = outcome.assignment;
            }

            // Re-simulate the pipeline only when something changed.
            if dirty {
                let mut stage_loads = aggregate_stage_loads(
                    &loads,
                    assignment.layer_to_stage(),
                    assignment.num_stages(),
                );
                // Mechanisms that remove tokens (early exit) shrink the
                // boundary tensors of every stage behind the exit point,
                // and with them the pipeline's wire cost.
                apply_boundary_sizes(
                    &mut stage_loads,
                    assignment.layer_to_stage(),
                    &update.token_retention,
                    comm.activation_bytes(&model_cfg),
                );
                // Apply the ground-truth slowdowns: a slow device (or an
                // injected straggler) stretches its stage's compute times in
                // the simulated pipeline, whether or not the balancer has
                // caught on yet.
                if let Some(slowdowns) = &actual_slowdowns {
                    for (s, load) in stage_loads.iter_mut().enumerate() {
                        let factor = slowdowns.get(s).copied().unwrap_or(1.0);
                        load.fwd_time *= factor;
                        load.bwd_time *= factor;
                    }
                }
                let report =
                    simulator.simulate(&model_cfg, &stage_loads, self.config.num_microbatches);
                // Trace the freshly simulated timeline (iterations between
                // changes reuse it, so the trace records keyframes — one
                // span set per distinct pipeline shape).
                recorder.record_iteration(0, iteration, total_time, &report);
                let throughput = hybrid.throughput(
                    &model_cfg,
                    &report,
                    &stage_loads,
                    self.config.num_microbatches,
                );
                cached_iteration_time = throughput.iteration_time;
                cached_idleness = report.average_idleness();
                cached_bubble = report.bubble_ratio();
                cached_tokens = throughput.tokens_per_iteration;
                cached_imbalance =
                    load_imbalance(&stage_weights(&assignment, &loads, self.config.objective));
                dirty = false;
            }

            total_time += cached_iteration_time + engine.extra_overhead(iteration);
            total_tokens += cached_tokens;
            idleness_sum += cached_idleness;
            bubble_sum += cached_bubble;
            active_worker_iterations += active_workers as f64;
            last_imbalance = cached_imbalance;
            trajectory.record_iteration(
                iteration,
                cached_iteration_time,
                cached_tokens,
                cached_imbalance,
                &assignment,
            );
            if iteration % 100 == 0 {
                imbalance_history.record(iteration, cached_imbalance);
            }

            // Periodic checkpoint: snapshot the restorable state — layer
            // loads, the dynamism stack's engine state, and every report
            // accumulator — and charge the simulated write into the
            // recovery overhead bucket.  The write cost is charged *before*
            // the accumulators are captured, so a resumed run's totals
            // include this write exactly as the original run's do.
            if let Some(checkpointing) = &mut self.checkpointing {
                if (iteration + 1).is_multiple_of(checkpointing.interval) {
                    let mut state =
                        base_state(iteration + 1, active_workers, &assignment, &loads, engine);
                    // Cost is priced on the payload (layers + assignment +
                    // engine state); the resume metrics below are a few
                    // dozen scalars and are deliberately excluded so the
                    // price does not depend on bookkeeping size.  The
                    // snapshot carries the *post-charge* totals (so a
                    // resumed run's accumulators include this write exactly
                    // as the original run's do), but the accumulators are
                    // only committed once the save lands — a failed save
                    // stays free, as before.
                    let cost = checkpointing.cost_model.write_cost(state.size_bytes());
                    let charged_total_time = total_time + cost;
                    let mut charged_overhead = overhead;
                    charged_overhead.record_recovery(cost);
                    fill_metrics(
                        &mut state,
                        &ResumeMetrics {
                            cached_imbalance,
                            total_time: charged_total_time,
                            total_tokens,
                            idleness_sum,
                            bubble_sum,
                            active_worker_iterations,
                            trajectory: trajectory.value(),
                            overhead: &charged_overhead,
                            imbalance_history: &imbalance_history,
                        },
                    );
                    match Checkpoint::new(state) {
                        Ok(checkpoint) => {
                            let (saved, io_seconds) =
                                Stopwatch::time(|| checkpointing.store.save(&checkpoint));
                            match saved {
                                Ok(()) => {
                                    checkpointing.store.retain_last(checkpointing.keep);
                                    overhead = charged_overhead;
                                    total_time = charged_total_time;
                                    // Real store I/O seconds, as a measured
                                    // diagnostic next to the modeled cost.
                                    overhead.measured.record_checkpoint_io(io_seconds);
                                    recorder.instant(
                                        0,
                                        MarkerKind::Checkpoint,
                                        &format!("iter {}", iteration + 1),
                                        total_time,
                                        &[
                                            ("iteration", (iteration + 1).to_string()),
                                            ("simulated_cost_s", format!("{cost:.6}")),
                                        ],
                                    );
                                }
                                Err(err) => recorder.log(
                                    LogLevel::Warn,
                                    &format!(
                                        "checkpoint at iteration {} not saved: {err}",
                                        iteration + 1
                                    ),
                                ),
                            }
                        }
                        Err(err) => recorder.log(
                            LogLevel::Warn,
                            &format!("checkpoint at iteration {} not taken: {err}", iteration + 1),
                        ),
                    }
                }
            }
        }

        // Export the boundary snapshot before the report moves anything:
        // segment callers resume the next chunk (or a rescaled world) from
        // exactly this state.
        let final_state = if export_state {
            if loads.is_empty() {
                return Err("cannot export a segment state before any iteration ran".into());
            }
            let mut state = base_state(end_iteration, active_workers, &assignment, &loads, engine);
            fill_metrics(
                &mut state,
                &ResumeMetrics {
                    cached_imbalance,
                    total_time,
                    total_tokens,
                    idleness_sum,
                    bubble_sum,
                    active_worker_iterations,
                    trajectory: trajectory.value(),
                    overhead: &overhead,
                    imbalance_history: &imbalance_history,
                },
            );
            Some(state)
        } else {
            None
        };

        let iterations = end_iteration;
        let tokens_per_second = if total_time > 0.0 {
            total_tokens as f64 / total_time
        } else {
            0.0
        };
        let average_active_workers = active_worker_iterations / iterations as f64;
        let gpu_seconds =
            average_active_workers * self.config.cluster.data_parallel as f64 * total_time;
        let total_gpus_now = active_workers * self.config.cluster.data_parallel;
        let report = TrainingReport {
            balancer: self.controller.name(),
            dynamism: engine.name(),
            iterations,
            total_time,
            total_tokens,
            tokens_per_second,
            average_idleness: idleness_sum / iterations as f64,
            average_bubble_ratio: bubble_sum / iterations as f64,
            mean_imbalance: imbalance_history.mean(),
            final_imbalance: last_imbalance,
            overhead,
            overhead_fraction: overhead.fraction_of(total_time),
            rebalance_events: overhead.rebalance_events,
            average_active_workers,
            final_active_workers: total_gpus_now / self.config.cluster.data_parallel.max(1),
            gpu_seconds,
            tokens_per_second_per_gpu: if gpu_seconds > 0.0 {
                total_tokens as f64 / gpu_seconds
            } else {
                0.0
            },
            trajectory_checksum: trajectory.value(),
        };
        Ok((report, final_state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{DiffusionBalancer, PartitionBalancer};
    use crate::controller::RebalancePolicy;
    use crate::repack::RepackConfig;
    use dynmo_dynamics::{
        EarlyExitEngine, EarlyExitMethod, FreezingEngine, FreezingPolicy, GradualPruningEngine,
        PruningSchedule,
    };
    use dynmo_model::{DeviceSpec, ModelPreset};

    fn small_cluster(stages: usize) -> ClusterConfig {
        ClusterConfig::homogeneous(stages, stages, 1, DeviceSpec::h100_sxm5())
    }

    fn config(stages: usize, iterations: u64) -> TrainerConfig {
        TrainerConfig {
            cluster: small_cluster(stages),
            schedule: ScheduleKind::OneFOneB,
            num_iterations: iterations,
            num_microbatches: stages * 4,
            allreduce_overlap: 0.8,
            objective: BalanceObjective::ByTime,
            min_workers: 1,
        }
    }

    fn dynamic_controller() -> RebalanceController {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    }

    fn static_controller() -> RebalanceController {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::disabled(),
        )
    }

    #[test]
    fn config_validation_catches_degenerate_values() {
        let mut cfg = config(4, 10);
        cfg.num_iterations = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = config(4, 10);
        cfg.num_microbatches = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = config(4, 10);
        cfg.min_workers = 0;
        assert!(cfg.validate().is_err());
        assert!(config(4, 10).validate().is_ok());
    }

    #[test]
    fn dynamic_rebalancing_beats_static_on_early_exit() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut static_trainer = Trainer::new(model.clone(), config(8, 300), static_controller());
        let mut dynamic_trainer = Trainer::new(model.clone(), config(8, 300), dynamic_controller());

        let mut engine_a = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 11);
        let mut engine_b = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 11);
        let static_report = static_trainer.run(&mut engine_a);
        let dynamic_report = dynamic_trainer.run(&mut engine_b);

        assert!(
            dynamic_report.tokens_per_second > static_report.tokens_per_second * 1.2,
            "dynamic {} vs static {}",
            dynamic_report.tokens_per_second,
            static_report.tokens_per_second
        );
        // Rebalancing reduces both idleness and measured imbalance.
        assert!(dynamic_report.average_idleness < static_report.average_idleness);
        assert!(dynamic_report.mean_imbalance < static_report.mean_imbalance);
        assert!(dynamic_report.rebalance_events > 0);
        assert_eq!(static_report.rebalance_events, 0);
        // Overhead stays in the single-digit-percent range the paper claims.
        assert!(dynamic_report.overhead_fraction < 0.1);
    }

    #[test]
    fn diffusion_and_partition_reach_similar_throughput() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 32 });
        let run = |controller: RebalanceController| {
            let mut trainer = Trainer::new(model.clone(), config(8, 200), controller);
            let mut engine = FreezingEngine::new(&model, FreezingPolicy::paper_default(), 3);
            trainer.run(&mut engine)
        };
        let partition = run(RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        ));
        let diffusion = run(RebalanceController::new(
            Box::new(DiffusionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        ));
        let ratio = diffusion.tokens_per_second / partition.tokens_per_second;
        assert!(ratio > 0.85 && ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn repacking_reduces_average_gpu_usage_under_pruning() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        // Compress the pruning schedule into a short run.
        let schedule = PruningSchedule {
            initial_sparsity: 0.0,
            final_sparsity: 0.9,
            start_iteration: 50,
            frequency: 50,
            num_steps: 4,
        };
        let repack = RepackConfig {
            max_memory: DeviceSpec::h100_sxm5().memory_capacity,
            target_num_workers: 2,
            utilization_cap: 0.9,
        };
        let controller = RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy {
                enabled: true,
                frequency: Some(dynmo_dynamics::RebalanceFrequency::EveryN(50)),
                repack: Some(repack),
            },
        );
        let mut trainer = Trainer::new(model.clone(), config(8, 400), controller);
        let mut engine = GradualPruningEngine::new(&model, schedule, 5);
        let report = trainer.run(&mut engine);
        assert!(
            report.average_active_workers < 8.0,
            "average workers {}",
            report.average_active_workers
        );
        assert!(report.final_active_workers < 8);
        assert!(!trainer.job_manager().events().is_empty());
        // Throughput per GPU must not collapse when consolidating.
        assert!(report.tokens_per_second_per_gpu > 0.0);
    }

    #[test]
    fn checkpointing_snapshots_state_and_charges_recovery_overhead() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut trainer = Trainer::new(model.clone(), config(4, 60), dynamic_controller())
            .with_checkpointing(Box::new(dynmo_resilience::MemoryCheckpointStore::new()), 20);
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        let report = trainer.run(&mut engine);
        assert!(report.overhead.recovery > 0.0);
        assert_eq!(report.overhead.recovery_events, 3);
        let store = trainer.checkpoint_store().unwrap();
        assert_eq!(store.iterations(), vec![20, 40, 60]);
        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.iteration(), 60);
        let state = latest.verify().unwrap();
        // 24 transformer blocks plus the embedding and head layers.
        assert_eq!(state.layers.len(), 26);
        assert!(state.metrics.contains_key("imbalance"));
        // Without checkpointing the recovery bucket stays empty.
        let mut plain = Trainer::new(model.clone(), config(4, 60), dynamic_controller());
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        let plain_report = plain.run(&mut engine);
        assert_eq!(plain_report.overhead.recovery, 0.0);
        assert!(plain.checkpoint_store().is_none());
    }

    #[test]
    fn advanced_schedules_thread_through_the_trainer() {
        // The interleaved and zero-bubble schedules must run end-to-end
        // through the trainer (profiler → balancer → simulator → report)
        // and, with the same dynamism trajectory (same seed), never produce
        // a larger pipeline bubble than non-interleaved 1F1B.
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let run = |schedule: ScheduleKind| {
            let mut cfg = config(4, 60);
            cfg.schedule = schedule;
            let mut trainer = Trainer::new(model.clone(), cfg, dynamic_controller());
            let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7);
            trainer.run(&mut engine)
        };
        let base = run(ScheduleKind::OneFOneB);
        for schedule in [
            ScheduleKind::Interleaved1F1B { virtual_stages: 2 },
            ScheduleKind::ZeroBubbleH1,
        ] {
            let report = run(schedule);
            assert!(
                report.average_bubble_ratio <= base.average_bubble_ratio + 1e-9,
                "{schedule:?}: bubble {} vs 1F1B {}",
                report.average_bubble_ratio,
                base.average_bubble_ratio
            );
            assert!(report.tokens_per_second >= base.tokens_per_second);
            assert_eq!(report.total_tokens, base.total_tokens);
        }
    }

    #[test]
    fn composite_stack_threads_through_the_trainer() {
        // A pruning + freezing + early-exit stack must run end-to-end, and
        // its merged load (strictly below any single mechanism's) must not
        // break the balancer/simulator path.  Identical stacks produce
        // identical trajectories.
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let stack = || -> Vec<Box<dyn DynamismEngine + Send>> {
            let schedule = PruningSchedule {
                initial_sparsity: 0.0,
                final_sparsity: 0.9,
                start_iteration: 20,
                frequency: 20,
                num_steps: 3,
            };
            vec![
                Box::new(GradualPruningEngine::new(&model, schedule, 5)),
                Box::new(FreezingEngine::new(
                    &model,
                    FreezingPolicy {
                        check_interval: 10,
                        first_freeze_iteration: 20,
                        stagger_per_layer: 4,
                        never_freeze_fraction: 0.25,
                        jitter: 0.1,
                    },
                    6,
                )),
                Box::new(EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7)),
            ]
        };
        let run = || {
            let mut trainer = Trainer::new(model.clone(), config(4, 80), dynamic_controller());
            trainer.run_stack(stack())
        };
        let a = run();
        let b = run();
        assert!(a.dynamism.starts_with("composite["));
        assert!(a.total_tokens > 0);
        assert!(a.rebalance_events > 0);
        assert_eq!(a.trajectory_checksum, b.trajectory_checksum);
        assert_eq!(a.total_tokens, b.total_tokens);
    }

    #[test]
    fn segmented_runs_reproduce_the_unsegmented_trajectory_bit_for_bit() {
        // Chaining run_segment calls (fresh Trainer per chunk, state
        // threaded through) must land on exactly the unsegmented run's
        // accumulators — the property the fleet controller's shared-clock
        // interleaving rests on.
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut plain = Trainer::new(model.clone(), config(4, 120), dynamic_controller());
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7);
        let full = plain.run(&mut engine);

        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7);
        let mut state: Option<dynmo_resilience::TrainerState> = None;
        let mut last: Option<TrainingReport> = None;
        for until in [30u64, 60, 90, 120] {
            let mut trainer = Trainer::new(model.clone(), config(4, 120), dynamic_controller());
            let segment = trainer
                .run_segment(&mut engine, state.as_ref(), until)
                .unwrap();
            assert_eq!(segment.state.iteration, until);
            state = Some(segment.state);
            last = Some(segment.report);
        }
        let segmented = last.unwrap();
        assert_eq!(segmented.trajectory_checksum, full.trajectory_checksum);
        assert_eq!(segmented.total_tokens, full.total_tokens);
        // total_time carries the *measured* balancer wall-clock of each
        // rebalance event, which no two runs reproduce bit-for-bit; every
        // simulated accumulator must still agree exactly.
        assert!(
            (segmented.total_time - full.total_time).abs() < 1e-3,
            "segmented {} vs full {}",
            segmented.total_time,
            full.total_time
        );
        assert_eq!(
            segmented.average_idleness.to_bits(),
            full.average_idleness.to_bits()
        );
    }

    #[test]
    fn rescale_hook_reshapes_the_world_and_charges_recovery() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7);
        let mut trainer = Trainer::new(model.clone(), config(8, 80), dynamic_controller());
        let first = trainer.run_segment(&mut engine, None, 40).unwrap();

        let shrunk = rescale_trainer_state(&first.state, 4, 2.5).unwrap();
        assert_eq!(shrunk.world_size, 4);
        assert_eq!(shrunk.assignment.num_stages(), 4);
        assert_eq!(shrunk.assignment.num_layers(), model.num_layers());
        let before = first.state.metrics["total_time"];
        assert!((shrunk.metrics["total_time"] - (before + 2.5)).abs() < 1e-12);
        assert!(
            (shrunk.metrics["overhead_recovery"]
                - (first.state.metrics["overhead_recovery"] + 2.5))
                .abs()
                < 1e-12
        );

        // The shrunken world resumes and finishes on a 4-stage cluster.
        let mut small = Trainer::new(model.clone(), config(4, 80), dynamic_controller());
        let second = small.run_segment(&mut engine, Some(&shrunk), 80).unwrap();
        assert_eq!(second.state.iteration, 80);
        assert_eq!(second.state.world_size, 4);
        assert!(second.report.total_tokens > first.report.total_tokens);
        assert!(second.report.overhead.recovery >= 2.5);

        // Degenerate rescales are rejected.
        assert!(rescale_trainer_state(&first.state, 0, 1.0).is_err());
        assert!(rescale_trainer_state(&first.state, 4, f64::NAN).is_err());
    }

    #[test]
    fn resume_rejects_checkpoints_without_engine_state() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut trainer = Trainer::new(model.clone(), config(4, 60), dynamic_controller());
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        let state = dynmo_resilience::TrainerState {
            iteration: 20,
            world_size: 4,
            assignment: StageAssignment::uniform(26, 4),
            layers: Vec::new(),
            metrics: std::collections::BTreeMap::new(),
            engine: None,
        };
        let err = trainer.resume(&mut engine, &state).unwrap_err();
        assert!(err.contains("no engine state"), "error: {err}");
    }

    #[test]
    fn resume_rejects_checkpoints_from_a_differently_shaped_model() {
        // A same-typed engine on a differently sized model passes the
        // engine-name check; the assignment shape guard must catch it with
        // an Err instead of panicking deep in the loop.
        let small = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut donor = Trainer::new(small.clone(), config(4, 40), dynamic_controller())
            .with_checkpointing(Box::new(dynmo_resilience::MemoryCheckpointStore::new()), 20);
        let mut engine = EarlyExitEngine::new(&small, EarlyExitMethod::Calm, 3);
        donor.run(&mut engine);
        let state = donor
            .checkpoint_store()
            .unwrap()
            .latest()
            .unwrap()
            .unwrap()
            .verify()
            .unwrap()
            .clone();

        let large = Model::from_preset(ModelPreset::Gpt { layers: 32 });
        let mut trainer = Trainer::new(large.clone(), config(4, 40), dynamic_controller());
        let mut engine = EarlyExitEngine::new(&large, EarlyExitMethod::Calm, 3);
        let err = trainer.resume(&mut engine, &state).unwrap_err();
        assert!(err.contains("layers"), "error: {err}");
    }

    #[test]
    fn checkpoints_now_carry_the_engine_state() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut trainer = Trainer::new(model.clone(), config(4, 40), dynamic_controller())
            .with_checkpointing(Box::new(dynmo_resilience::MemoryCheckpointStore::new()), 20);
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        trainer.run(&mut engine);
        let latest = trainer
            .checkpoint_store()
            .unwrap()
            .latest()
            .unwrap()
            .unwrap();
        let state = latest.verify().unwrap();
        let engine_state = state.engine.as_ref().expect("engine state captured");
        assert_eq!(engine_state.name, engine.name());
        assert_eq!(engine_state.rng_streams.len(), 1);
        // Resume accumulators are present.
        for key in [
            "total_time",
            "idleness_sum",
            "trajectory_lo",
            "trajectory_hi",
        ] {
            assert!(state.metrics.contains_key(key), "missing metric {key}");
        }
    }

    #[test]
    fn recorder_captures_timelines_and_markers_without_changing_the_report() {
        use dynmo_telemetry::{Event, MemoryRecorder};

        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let recorder = Arc::new(MemoryRecorder::new());
        let mut traced = Trainer::new(model.clone(), config(4, 120), dynamic_controller())
            .with_checkpointing(Box::new(dynmo_resilience::MemoryCheckpointStore::new()), 40)
            .with_recorder(recorder.clone());
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        let traced_report = traced.run(&mut engine);

        let mut plain = Trainer::new(model.clone(), config(4, 120), dynamic_controller())
            .with_checkpointing(Box::new(dynmo_resilience::MemoryCheckpointStore::new()), 40);
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        let plain_report = plain.run(&mut engine);

        // Enabling the recorder changes nothing simulated — bit for bit.
        assert_eq!(
            traced_report.trajectory_checksum,
            plain_report.trajectory_checksum
        );
        assert_eq!(traced_report.total_tokens, plain_report.total_tokens);
        // `total_time` is charged with wall-clock `algorithm_time`, so it is
        // only approximately reproducible across independent runs; the
        // checksum above is the bit-exact contract.
        assert!((traced_report.total_time - plain_report.total_time).abs() < 0.1);

        // ... but the event stream carries the run's structure.
        let events = recorder.snapshot();
        let spans = events
            .iter()
            .filter(|e| matches!(e, Event::Span(_)))
            .count();
        let rebalances = events
            .iter()
            .filter(|e| matches!(e, Event::Instant(i) if i.kind == MarkerKind::Rebalance))
            .count();
        let checkpoints = events
            .iter()
            .filter(|e| matches!(e, Event::Instant(i) if i.kind == MarkerKind::Checkpoint))
            .count();
        assert!(spans > 0, "per-rank op spans recorded");
        assert!(rebalances > 0, "rebalance markers recorded");
        assert_eq!(checkpoints, 3, "one marker per checkpoint");

        // Wall-clock stopwatches fed the measured overhead buckets.
        let measured = traced_report.overhead.measured;
        assert!(measured.samples > 0);
        assert!(measured.balancer_seconds >= 0.0);
        assert!(measured.checkpoint_io_seconds >= 0.0);
        // The modeled buckets stay untouched by measurement: the wall-clock
        // seconds live only in `measured`, never in the headline total
        // (which itself carries wall-clock algorithm time, so compare
        // approximately across runs).
        assert!((traced_report.overhead.total() - plain_report.overhead.total()).abs() < 0.1);
    }

    #[test]
    fn straggler_detection_downgrades_the_slow_stage_and_records_a_marker() {
        use dynmo_telemetry::{Event, MemoryRecorder};

        // Stage 2 secretly runs 2× slower than its spec.  A static run just
        // eats the slowdown; a dynamic run must detect it, emit exactly one
        // StragglerDetected marker for stage 2, and shift layers off the
        // slow stage for a clearly better throughput.
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let injection = vec![1.0, 1.0, 2.0, 1.0];
        let recorder = Arc::new(MemoryRecorder::new());
        // Pin a tight cadence: the engine's own recommendation (every ~100
        // iterations for early exit) would leave half this short run
        // unbalanced and the margin would measure the cadence, not the
        // detector.
        let every10 = || {
            RebalanceController::new(
                Box::new(PartitionBalancer::new()),
                BalanceObjective::ByTime,
                RebalancePolicy {
                    enabled: true,
                    frequency: Some(dynmo_dynamics::RebalanceFrequency::EveryN(10)),
                    repack: None,
                },
            )
        };
        let mut dynamic = Trainer::new(model.clone(), config(4, 200), every10())
            .with_straggler_injection(injection.clone())
            .with_recorder(recorder.clone());
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        let dynamic_report = dynamic.run(&mut engine);

        let mut static_trainer = Trainer::new(model.clone(), config(4, 200), static_controller())
            .with_straggler_injection(injection);
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        let static_report = static_trainer.run(&mut engine);

        let markers: Vec<_> = recorder
            .snapshot()
            .into_iter()
            .filter_map(|e| match e {
                Event::Instant(i) if i.kind == MarkerKind::StragglerDetected => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(markers.len(), 1, "exactly one straggler confirmed");
        assert!(markers[0].name.contains("stage 2"), "{}", markers[0].name);
        assert!(
            dynamic_report.tokens_per_second > static_report.tokens_per_second * 1.15,
            "dynamic {} vs static {}",
            dynamic_report.tokens_per_second,
            static_report.tokens_per_second
        );
    }

    #[test]
    fn heterogeneous_cluster_rebalancing_beats_the_even_split() {
        // Two generations (H100 + A100) in one pipeline: the device-weighted
        // balancer must beat a static uniform split even with a *static*
        // workload (the imbalance comes from the hardware, not the model).
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let cluster = ClusterConfig::hetero_two_gen(2, 4, 1);
        let run = |controller: RebalanceController| {
            let mut cfg = config(4, 100);
            cfg.cluster = cluster.clone();
            let mut trainer = Trainer::new(model.clone(), cfg, controller);
            let mut engine = FreezingEngine::new(&model, FreezingPolicy::paper_default(), 3);
            trainer.run(&mut engine)
        };
        let dynamic = run(RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy {
                enabled: true,
                frequency: Some(dynmo_dynamics::RebalanceFrequency::EveryN(10)),
                repack: None,
            },
        ));
        let static_run = run(static_controller());
        assert!(
            dynamic.tokens_per_second > static_run.tokens_per_second * 1.1,
            "dynamic {} vs static {}",
            dynamic.tokens_per_second,
            static_run.tokens_per_second
        );
    }

    #[test]
    fn hetero_cluster_with_equal_devices_matches_homogeneous_bit_for_bit() {
        // The explicit-device path with all-equal specs must take the
        // weighted code and still land on the homogeneous trajectory
        // checksum exactly.
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let run = |cluster: ClusterConfig| {
            let mut cfg = config(4, 120);
            cfg.cluster = cluster;
            let mut trainer = Trainer::new(model.clone(), cfg, dynamic_controller());
            let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
            trainer.run(&mut engine)
        };
        let homogeneous = run(small_cluster(4));
        let explicit = run(small_cluster(4).with_devices(vec![DeviceSpec::h100_sxm5(); 4]));
        assert_eq!(
            homogeneous.trajectory_checksum,
            explicit.trajectory_checksum
        );
        assert_eq!(homogeneous.total_tokens, explicit.total_tokens);
    }

    #[test]
    fn report_totals_are_consistent() {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut trainer = Trainer::new(model.clone(), config(4, 50), dynamic_controller());
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::AdpC, 1);
        let report = trainer.run(&mut engine);
        assert_eq!(report.iterations, 50);
        assert!(report.total_time > 0.0);
        assert_eq!(report.total_tokens, 50 * 16 * 2 * 2048);
        let recomputed = report.total_tokens as f64 / report.total_time;
        assert!((recomputed - report.tokens_per_second).abs() / recomputed < 1e-9);
        assert!(report.average_bubble_ratio >= 0.0 && report.average_bubble_ratio < 1.0);
        assert!(report.overhead_fraction >= 0.0);
    }
}
