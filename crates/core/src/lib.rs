//! # dynmo-core
//!
//! The DynMo system itself (paper §3): an autonomous, elastic load-balancing
//! layer for pipeline-parallel training of dynamic LLMs.
//!
//! The pieces map one-to-one onto the paper's Figure 2 flow:
//!
//! 1. **Dynamism** happens in the model (provided by `dynmo-dynamics`
//!    engines — MoE routing, pruning, freezing, sparse attention, early
//!    exit, MoD).
//! 2. **Profiling** ([`profiler`]) measures per-layer execution time and
//!    memory after each dynamism event (the "first iteration after each
//!    dynamism operation is used for profiling").
//! 3. **Load balancing** ([`balancer`]) redistributes layers across pipeline
//!    stages: the centralized [`balancer::PartitionBalancer`]
//!    (DeepSpeed-style partitioning by parameters or by execution time) and
//!    the decentralized iterative [`balancer::DiffusionBalancer`] (Lemma 2),
//!    both subject to per-worker memory constraints.
//! 4. **Re-packing** ([`repack`], Algorithm 2) consolidates the shrinking
//!    workload onto fewer GPUs; [`elastic`] releases the idle GPUs back to
//!    the job manager (the paper's ECK/Kubernetes integration, mocked here).
//! 5. **Training continues** ([`trainer`]) with the balanced pipeline; the
//!    [`controller`] decides when to rebalance and accounts for the
//!    overhead breakdown reported in the paper's Figure 4 (profiling /
//!    balancing algorithm / layer migration).
//! 6. **Failures are survived** ([`recovery`], beyond the paper): trainer
//!    state is checkpointed into a `dynmo-resilience` store, rank deaths
//!    injected by the runtime's `FaultPlan` are detected fabric-wide, the
//!    world is re-formed over the survivors, the balancer re-runs for the
//!    new world size, and training replays from the last checkpoint — with
//!    the cost charged to the overhead report's `recovery` bucket.

#![warn(missing_docs)]

pub mod balancer;
pub mod composite;
pub mod controller;
pub mod elastic;
pub mod imbalance;
pub mod migration;
pub mod overhead;
pub mod profiler;
pub mod recovery;
pub mod repack;
pub mod report;
pub mod trainer;

pub use balancer::{BalanceObjective, DiffusionBalancer, LoadBalancer, PartitionBalancer};
pub use composite::{run_composite_with_recovery, CompositeRecoveryReport, CompositeRunSpec};
pub use controller::{RebalanceController, RebalancePolicy};
pub use elastic::{FleetError, JobManager, MockJobManager};
pub use imbalance::load_imbalance;
pub use migration::{MigrationPlan, MigrationStep};
pub use overhead::OverheadBreakdown;
pub use profiler::{profile_layers, Profiler, StragglerDetector};
pub use recovery::{
    run_elastic_rescale, run_resilient, run_resilient_recorded, ElasticRescaleConfig,
    ElasticRescaleReport, RecoveryConfig, RecoveryCoordinator, RecoveryEvent, ResilientRunReport,
    ResilientTrainingConfig, WorkloadConfig,
};
pub use repack::{plan_repack, RepackConfig, RepackPlan};
pub use report::TrainingReport;
pub use trainer::{rescale_trainer_state, SegmentOutcome, Trainer, TrainerConfig};
