//! The structured event vocabulary recorders accept.
//!
//! Events are deliberately plain data: simulated-time spans on
//! `(group, lane)` tracks, instant markers, counter samples, and log
//! lines.  A *group* maps to a Perfetto process (a training run, a serving
//! fleet, a resilient world) and a *lane* to a thread within it (a
//! pipeline rank, a replica, an autoscaler).

use serde::{Deserialize, Serialize};

/// Severity of a [`LogEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogLevel {
    /// Routine progress information.
    Info,
    /// Something degraded but the run continues (e.g. a checkpoint write
    /// failed and will be retried at the next interval).
    Warn,
    /// An unrecoverable condition reported before returning an error.
    Error,
}

impl LogLevel {
    /// Short uppercase label (`INFO`/`WARN`/`ERROR`).
    pub fn label(&self) -> &'static str {
        match self {
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
        }
    }
}

/// What an [`InstantEvent`] marks on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarkerKind {
    /// The rebalance controller committed a new assignment.
    Rebalance,
    /// A checkpoint was written.
    Checkpoint,
    /// State was restored from a checkpoint after a failure.
    Restore,
    /// Replayed iterations after a restore caught back up.
    Replay,
    /// The autoscaler added replicas.
    ScaleOut,
    /// The autoscaler drained and released replicas.
    ScaleIn,
    /// A fault was injected (a rank was killed).
    Fault,
    /// The profiler confirmed a persistent straggler and downgraded the
    /// rank's effective speed.
    StragglerDetected,
    /// A spot/preemptible rank received an eviction warning.
    EvictionWarning,
    /// A fleet controller took GPUs away from the training job to relieve
    /// a serving tenant's SLO breach.
    GpuSteal,
    /// A fleet controller returned GPUs to the training job in a serving
    /// trough.
    GpuReturn,
    /// A fleet controller drained a lower-priority serving tenant to free
    /// GPUs for a higher-priority one.
    Preemption,
    /// Anything else worth a timeline pin.
    Info,
}

impl MarkerKind {
    /// Stable lowercase name used in trace `args` and track names.
    pub fn name(&self) -> &'static str {
        match self {
            MarkerKind::Rebalance => "rebalance",
            MarkerKind::Checkpoint => "checkpoint",
            MarkerKind::Restore => "restore",
            MarkerKind::Replay => "replay",
            MarkerKind::ScaleOut => "scale_out",
            MarkerKind::ScaleIn => "scale_in",
            MarkerKind::Fault => "fault",
            MarkerKind::StragglerDetected => "straggler_detected",
            MarkerKind::EvictionWarning => "eviction_warning",
            MarkerKind::GpuSteal => "gpu_steal",
            MarkerKind::GpuReturn => "gpu_return",
            MarkerKind::Preemption => "preemption",
            MarkerKind::Info => "info",
        }
    }
}

/// A completed span on one lane: `[start, end]` in simulated seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Track group (Perfetto process), e.g. one training run.
    pub group: usize,
    /// Lane within the group (Perfetto thread), e.g. a pipeline rank.
    pub lane: usize,
    /// Short span name (e.g. an op label like `F3`).
    pub name: String,
    /// Start time in simulated seconds.
    pub start: f64,
    /// End time in simulated seconds (`end >= start`).
    pub end: f64,
}

/// A zero-duration marker pinned to one point of a group's timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstantEvent {
    /// Track group the marker belongs to.
    pub group: usize,
    /// Marker classification (drives the marker lane it renders on).
    pub kind: MarkerKind,
    /// Human-readable marker name.
    pub name: String,
    /// Simulated time of the event.
    pub time: f64,
    /// Free-form key/value details rendered in the trace viewer.
    pub args: Vec<(String, String)>,
}

/// One sample of a numeric series (rendered as a counter track).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEvent {
    /// Track group the counter belongs to.
    pub group: usize,
    /// Counter name (one chart per name).
    pub name: String,
    /// Simulated time of the sample.
    pub time: f64,
    /// Sampled value.
    pub value: f64,
}

/// A log line emitted by a library crate (replaces ad-hoc `eprintln!`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEvent {
    /// Severity.
    pub level: LogLevel,
    /// Message text.
    pub message: String,
}

/// Any record a [`crate::Recorder`] can receive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A completed simulated-time span.
    Span(SpanEvent),
    /// An instant marker.
    Instant(InstantEvent),
    /// A counter sample.
    Counter(CounterEvent),
    /// A log line.
    Log(LogEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_names_are_stable() {
        assert_eq!(MarkerKind::Rebalance.name(), "rebalance");
        assert_eq!(MarkerKind::ScaleIn.name(), "scale_in");
        assert_eq!(MarkerKind::StragglerDetected.name(), "straggler_detected");
        assert_eq!(MarkerKind::EvictionWarning.name(), "eviction_warning");
        assert_eq!(LogLevel::Warn.label(), "WARN");
    }

    #[test]
    fn events_round_trip_through_json() {
        let e = Event::Instant(InstantEvent {
            group: 1,
            kind: MarkerKind::Checkpoint,
            name: "ckpt@40".to_string(),
            time: 12.5,
            args: vec![("iteration".to_string(), "40".to_string())],
        });
        let text = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
    }
}
