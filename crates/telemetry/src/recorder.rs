//! The [`Recorder`] trait plus the no-op and in-memory implementations.

use parking_lot::Mutex;

use dynmo_pipeline::metrics::IterationReport;

use crate::event::{CounterEvent, Event, InstantEvent, LogEvent, LogLevel, MarkerKind, SpanEvent};

/// Sink for structured telemetry events.
///
/// Library crates hold an `Arc<dyn Recorder>` and emit through the
/// convenience methods below; every method gates on [`Recorder::enabled`],
/// so with the default [`NullRecorder`] an instrumented code path costs one
/// virtual call and allocates nothing.
///
/// Recorders only ever receive *simulated* time.  Wall-clock measurement
/// goes through [`crate::Stopwatch`] into overhead accounting instead, so
/// recorded event streams — like the sweeps and trajectory checksums —
/// are bit-reproducible across machines and thread counts.
pub trait Recorder: Send + Sync {
    /// Whether events are being kept.  Emission sites may use this to skip
    /// building event payloads entirely.
    fn enabled(&self) -> bool;

    /// Record one event (called only when [`Recorder::enabled`] is true,
    /// but implementations must tolerate unconditional calls).
    fn record(&self, event: Event);

    /// Record a completed simulated-time span on `(group, lane)`.
    fn span(&self, group: usize, lane: usize, name: &str, start: f64, end: f64) {
        if self.enabled() {
            self.record(Event::Span(SpanEvent {
                group,
                lane,
                name: name.to_string(),
                start,
                end,
            }));
        }
    }

    /// Record an instant marker with key/value details.
    fn instant(
        &self,
        group: usize,
        kind: MarkerKind,
        name: &str,
        time: f64,
        args: &[(&str, String)],
    ) {
        if self.enabled() {
            self.record(Event::Instant(InstantEvent {
                group,
                kind,
                name: name.to_string(),
                time,
                args: args
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
            }));
        }
    }

    /// Record a counter sample.
    fn counter(&self, group: usize, name: &str, time: f64, value: f64) {
        if self.enabled() {
            self.record(Event::Counter(CounterEvent {
                group,
                name: name.to_string(),
                time,
                value,
            }));
        }
    }

    /// Record a log line (the telemetry replacement for `eprintln!` in
    /// library crates).
    fn log(&self, level: LogLevel, message: &str) {
        if self.enabled() {
            self.record(Event::Log(LogEvent {
                level,
                message: message.to_string(),
            }));
        }
    }

    /// Record every op span of one simulated iteration: rank `r`'s
    /// timeline lands on lane `r` of `group`, offset by `t0` (the
    /// simulated time at which the iteration started) so consecutive
    /// iterations tile into one continuous per-rank track.
    fn record_iteration(&self, group: usize, iteration: u64, t0: f64, report: &IterationReport) {
        if !self.enabled() {
            return;
        }
        for (rank, timeline) in report.timelines.iter().enumerate() {
            for span in &timeline.spans {
                self.record(Event::Span(SpanEvent {
                    group,
                    lane: rank,
                    name: span.op.trace_label(),
                    start: t0 + span.start,
                    end: t0 + span.end,
                }));
            }
        }
        self.counter(group, "makespan", t0 + report.makespan, report.makespan);
        let _ = iteration;
    }
}

/// The default recorder: drops everything, reports `enabled() == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// A recorder that buffers events in memory for later export.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone the buffered events in record order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drain the buffered events, leaving the recorder empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        self.events.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_pipeline::metrics::{OpSpan, WorkerTimeline};
    use dynmo_pipeline::schedule::{worker_op_order, ScheduleKind};

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.span(0, 0, "F0", 0.0, 1.0);
        r.log(LogLevel::Error, "dropped");
    }

    #[test]
    fn memory_recorder_buffers_in_order() {
        let r = MemoryRecorder::new();
        r.span(0, 1, "F0", 0.0, 1.0);
        r.instant(
            0,
            MarkerKind::Rebalance,
            "rebalance",
            1.0,
            &[("rounds", "3".to_string())],
        );
        r.counter(0, "replicas", 2.0, 4.0);
        r.log(LogLevel::Info, "hello");
        let events = r.snapshot();
        assert_eq!(events.len(), 4);
        assert!(matches!(&events[0], Event::Span(s) if s.lane == 1 && s.name == "F0"));
        assert!(matches!(&events[1], Event::Instant(i) if i.kind == MarkerKind::Rebalance));
        assert!(matches!(&events[2], Event::Counter(c) if c.value == 4.0));
        assert!(matches!(&events[3], Event::Log(l) if l.message == "hello"));
        assert_eq!(r.take().len(), 4);
        assert!(r.is_empty());
    }

    #[test]
    fn record_iteration_offsets_spans_by_t0() {
        let ops = worker_op_order(ScheduleKind::OneFOneB, 0, 1, 2);
        let timeline = WorkerTimeline {
            spans: ops
                .iter()
                .enumerate()
                .map(|(i, op)| OpSpan {
                    op: *op,
                    start: i as f64,
                    end: i as f64 + 1.0,
                })
                .collect(),
        };
        let report = IterationReport {
            makespan: 4.0,
            per_worker_busy: vec![4.0],
            per_worker_idle: vec![0.0],
            timelines: vec![timeline],
            stage_compute_times: vec![4.0],
        };
        let r = MemoryRecorder::new();
        r.record_iteration(7, 0, 100.0, &report);
        let events = r.snapshot();
        // 4 op spans + 1 makespan counter sample.
        assert_eq!(events.len(), 5);
        match &events[0] {
            Event::Span(s) => {
                assert_eq!(s.group, 7);
                assert_eq!(s.start, 100.0);
                assert_eq!(s.name, "F0");
            }
            other => panic!("expected span, got {other:?}"),
        }
    }
}
