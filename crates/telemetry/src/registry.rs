//! A deterministic counter/histogram registry.
//!
//! A [`MetricsRegistry`] names a set of monotonically-accumulated counters
//! and streaming histograms ([`StreamingSummary`] sketches).  Storage is a
//! `BTreeMap`, so snapshots enumerate metrics in name order and serialize
//! identically run-to-run — registry output can sit inside pinned
//! artifacts without breaking byte-identity.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::sketch::{StreamingSummary, SummaryStats};

/// Named counters and histogram sketches.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, f64>,
    histograms: BTreeMap<String, StreamingSummary>,
}

/// A point-in-time, name-ordered view of a registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter totals, in name order.
    pub counters: Vec<(String, f64)>,
    /// Histogram summaries, in name order.
    pub histograms: Vec<(String, SummaryStats)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    pub fn incr(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Feed one observation into histogram `name` (created on first use).
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Summary of histogram `name` (all zeros if never observed).
    pub fn histogram(&self, name: &str) -> SummaryStats {
        self.histograms
            .get(name)
            .map(|h| h.stats())
            .unwrap_or_default()
    }

    /// Name-ordered snapshot of everything in the registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.stats()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = MetricsRegistry::new();
        r.incr("requests", 1.0);
        r.incr("requests", 2.0);
        assert_eq!(r.counter("requests"), 3.0);
        assert_eq!(r.counter("missing"), 0.0);
    }

    #[test]
    fn histograms_summarize_observations() {
        let mut r = MetricsRegistry::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.observe("ttft", v);
        }
        let stats = r.histogram("ttft");
        assert_eq!(stats.count, 4);
        assert_eq!(stats.p50, 2.0);
        assert_eq!(stats.mean, 2.5);
        assert_eq!(r.histogram("missing"), SummaryStats::default());
    }

    #[test]
    fn snapshots_enumerate_in_name_order() {
        let mut r = MetricsRegistry::new();
        r.incr("zeta", 1.0);
        r.incr("alpha", 1.0);
        r.observe("mid", 1.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        assert_eq!(snap.counters[1].0, "zeta");
        assert_eq!(snap.histograms[0].0, "mid");
    }
}
