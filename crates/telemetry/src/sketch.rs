//! Streaming quantile estimation: the P² algorithm and a latency-summary
//! sketch built on it.
//!
//! [`P2Quantile`] is the classic Jain & Chlamtac (1985) *P-squared*
//! estimator: five markers track the running quantile with O(1) memory and
//! O(1) update cost, adjusting marker heights with a piecewise-parabolic
//! prediction.  [`StreamingSummary`] bundles three sketches (p50/p95/p99)
//! with count/sum/min/max — and keeps an exact buffer for small series so
//! summaries are *bit-identical* to the sort-based path until the series
//! outgrows the buffer, at which point memory becomes O(1) in the number
//! of observations (ROADMAP item 2a: 10M-request traces must not hold 10M
//! latencies just to report a p99).

use serde::{Deserialize, Serialize};

/// The `q`-th percentile (0 < q ≤ 1) of an ascending-sorted slice using
/// the nearest-rank definition; 0 for an empty slice.  Mirrors
/// `dynmo_serve::metrics::percentile` exactly so exact-mode summaries are
/// bit-identical to the sort-based path.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Streaming estimator of a single quantile with five markers (P²).
///
/// Exact (nearest-rank over the buffered observations) while `n ≤ 5`;
/// afterwards an O(1)-memory estimate whose error shrinks as the stream
/// grows.  Updates are deterministic: the estimate depends only on the
/// observation sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    /// The target quantile in (0, 1).
    q: f64,
    /// Marker heights (the first five observations, sorted, until the
    /// estimator transitions to streaming mode).
    heights: Vec<f64>,
    /// Actual marker positions (1-based observation ranks).
    positions: Vec<f64>,
    /// Desired marker positions.
    desired: Vec<f64>,
    /// Desired-position increments per observation.
    increments: Vec<f64>,
    /// Observations seen.
    count: u64,
}

impl P2Quantile {
    /// A sketch for quantile `q` (e.g. `0.99`); panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            heights: Vec::with_capacity(5),
            positions: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            desired: vec![1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: vec![0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            // Initialization: buffer and keep sorted; these double as the
            // exact small-n values and the initial marker heights.
            let at = self
                .heights
                .iter()
                .position(|h| x < *h)
                .unwrap_or(self.heights.len());
            self.heights.insert(at, x);
            return;
        }

        let h = &mut self.heights;
        // 1. Find the cell k (0-based: markers k and k+1 bracket x),
        //    stretching the extreme markers when x falls outside them.
        let k = if x < h[0] {
            h[0] = x;
            0
        } else if x >= h[4] {
            h[4] = x;
            3
        } else {
            // h[k] <= x < h[k+1] for some k in 0..=3.
            (0..4).find(|&i| x < h[i + 1]).unwrap_or(3)
        };

        // 2. Shift positions above the cell; advance all desired positions.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // 3. Adjust the three interior markers toward their desired
        //    positions, preferring the parabolic prediction and falling
        //    back to linear interpolation when it would break monotonicity.
        for i in 1..4 {
            let mut n = [0.0f64; 5];
            n.copy_from_slice(&self.positions);
            let d = self.desired[i] - n[i];
            let room_up = n[i + 1] - n[i] > 1.0;
            let room_down = n[i - 1] - n[i] < -1.0;
            if (d >= 1.0 && room_up) || (d <= -1.0 && room_down) {
                let d = d.signum();
                let parabolic = h[i]
                    + d / (n[i + 1] - n[i - 1])
                        * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]));
                h[i] = if h[i - 1] < parabolic && parabolic < h[i + 1] {
                    parabolic
                } else {
                    // Linear step toward the neighbour in direction d.
                    let j = if d > 0.0 { i + 1 } else { i - 1 };
                    h[i] + d * (h[j] - h[i]) / (n[j] - n[i])
                };
                self.positions[i] += d;
            }
        }
    }

    /// Current estimate: exact (nearest-rank) while `n ≤ 5`, the middle
    /// marker height afterwards; 0 before any observation.
    pub fn value(&self) -> f64 {
        if self.count <= 5 {
            nearest_rank(&self.heights, self.q)
        } else {
            self.heights[2]
        }
    }
}

/// The four numbers a latency summary reports, plus stream aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Observations seen.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

/// Streaming p50/p95/p99/mean with a bounded exact buffer.
///
/// While the series fits in the buffer (`exact_limit` values) the summary
/// is computed by sorting — bit-identical to
/// `LatencySummary::from_values`, including the order of the mean's
/// summation — so existing small-n results do not change.  Past the limit
/// the buffer is dropped (not grown) and the three P² sketches take over:
/// peak memory becomes O(1) in the number of observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingSummary {
    /// Exact values, kept only while `count <= exact_limit`.
    exact: Option<Vec<f64>>,
    /// Buffer size at which the summary switches to sketch mode.
    exact_limit: usize,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingSummary {
    /// Default exact-buffer size: series up to this length summarize
    /// exactly (and cheaply — one sort at summary time, not per call).
    pub const DEFAULT_EXACT_LIMIT: usize = 8192;

    /// A summary with the default exact buffer.
    pub fn new() -> Self {
        Self::with_exact_limit(Self::DEFAULT_EXACT_LIMIT)
    }

    /// A summary that stays exact up to `limit` observations (0 = pure
    /// sketch from the first observation).
    pub fn with_exact_limit(limit: usize) -> Self {
        StreamingSummary {
            exact: Some(Vec::new()),
            exact_limit: limit,
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.p50.observe(x);
        self.p95.observe(x);
        self.p99.observe(x);
        if let Some(buf) = &mut self.exact {
            if buf.len() < self.exact_limit {
                buf.push(x);
            } else {
                // Outgrew the buffer: free it and rely on the sketches.
                self.exact = None;
            }
        }
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the summary is still in exact (sort-based) mode.
    pub fn is_exact(&self) -> bool {
        self.exact.is_some()
    }

    /// Summarize the stream so far.  Exact mode reproduces the sort-based
    /// summary bit-for-bit; sketch mode reports P² estimates and the
    /// running mean.  An empty stream summarizes to all zeros.
    pub fn stats(&self) -> SummaryStats {
        if self.count == 0 {
            return SummaryStats::default();
        }
        match &self.exact {
            Some(values) => {
                // Mirrors LatencySummary::from_values exactly: sort, take
                // nearest-rank percentiles, and average over the *sorted*
                // order (f64 addition is order-sensitive).
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("observations are finite"));
                SummaryStats {
                    p50: nearest_rank(&sorted, 0.50),
                    p95: nearest_rank(&sorted, 0.95),
                    p99: nearest_rank(&sorted, 0.99),
                    mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
                    count: self.count,
                    min: self.min,
                    max: self.max,
                }
            }
            None => SummaryStats {
                p50: self.p50.value(),
                p95: self.p95.value(),
                p99: self.p99.value(),
                mean: self.sum / self.count as f64,
                count: self.count,
                min: self.min,
                max: self.max,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64: deterministic, seedable, good enough for test streams.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn uniform01(state: &mut u64) -> f64 {
        (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn exact_for_five_or_fewer_observations() {
        let mut sk = P2Quantile::new(0.5);
        for (i, x) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            sk.observe(*x);
            let mut sorted = [5.0, 1.0, 4.0, 2.0, 3.0][..=i].to_vec();
            sorted.sort_by(|a: &f64, b| a.partial_cmp(b).unwrap());
            assert_eq!(
                sk.value(),
                nearest_rank(&sorted, 0.5),
                "after {} obs",
                i + 1
            );
        }
        assert_eq!(sk.value(), 3.0);
    }

    #[test]
    fn median_of_uniform_stream_converges() {
        let mut sk = P2Quantile::new(0.5);
        let mut state = 42u64;
        for _ in 0..50_000 {
            sk.observe(uniform01(&mut state));
        }
        assert!((sk.value() - 0.5).abs() < 0.01, "median {}", sk.value());
    }

    #[test]
    fn p99_of_uniform_stream_converges() {
        let mut sk = P2Quantile::new(0.99);
        let mut state = 7u64;
        for _ in 0..50_000 {
            sk.observe(uniform01(&mut state));
        }
        assert!((sk.value() - 0.99).abs() < 0.005, "p99 {}", sk.value());
    }

    #[test]
    fn marker_heights_stay_sorted() {
        let mut sk = P2Quantile::new(0.95);
        let mut state = 11u64;
        for i in 0..10_000 {
            // A nasty mix: uniform noise plus occasional large spikes.
            let x = if i % 97 == 0 {
                100.0 + uniform01(&mut state)
            } else {
                uniform01(&mut state)
            };
            sk.observe(x);
            if sk.count() > 5 {
                for w in sk.heights.windows(2) {
                    assert!(w[0] <= w[1], "markers out of order: {:?}", sk.heights);
                }
            }
        }
    }

    #[test]
    fn streaming_summary_is_bit_identical_to_sort_path_while_exact() {
        let mut state = 3u64;
        let values: Vec<f64> = (0..1000).map(|_| uniform01(&mut state) * 10.0).collect();
        let mut sum = StreamingSummary::new();
        for v in &values {
            sum.observe(*v);
        }
        assert!(sum.is_exact());
        let stats = sum.stats();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(stats.p50, nearest_rank(&sorted, 0.50));
        assert_eq!(stats.p95, nearest_rank(&sorted, 0.95));
        assert_eq!(stats.p99, nearest_rank(&sorted, 0.99));
        assert_eq!(stats.mean, sorted.iter().sum::<f64>() / sorted.len() as f64);
        assert_eq!(stats.count, 1000);
    }

    #[test]
    fn summary_drops_the_buffer_past_the_limit() {
        let mut sum = StreamingSummary::with_exact_limit(100);
        let mut state = 5u64;
        for _ in 0..100 {
            sum.observe(uniform01(&mut state));
        }
        assert!(sum.is_exact());
        sum.observe(0.5);
        assert!(!sum.is_exact(), "buffer must be freed past the limit");
        let stats = sum.stats();
        assert_eq!(stats.count, 101);
        assert!(stats.p50 > 0.0 && stats.p50 < 1.0);
    }

    #[test]
    fn sketch_mode_tracks_exact_percentiles_on_large_streams() {
        let mut sum = StreamingSummary::with_exact_limit(0);
        let mut state = 1234u64;
        let mut values = Vec::new();
        for _ in 0..100_000 {
            // Log-normal-ish latency distribution.
            let u = uniform01(&mut state).max(1e-12);
            let v = uniform01(&mut state);
            let z = (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
            let x = (0.25 * z).exp();
            values.push(x);
            sum.observe(x);
        }
        assert!(!sum.is_exact());
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let stats = sum.stats();
        for (est, q) in [(stats.p50, 0.50), (stats.p95, 0.95), (stats.p99, 0.99)] {
            let exact = nearest_rank(&values, q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.01, "q={q}: est {est} vs exact {exact} (rel {rel})");
        }
        let exact_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((stats.mean - exact_mean).abs() / exact_mean < 1e-9);
    }

    #[test]
    fn empty_summary_is_all_zeros() {
        assert_eq!(StreamingSummary::new().stats(), SummaryStats::default());
    }
}
