//! Wall-clock measurement scopes.
//!
//! A [`Stopwatch`] is the only place telemetry touches real time.  Its
//! readings feed *measured* overhead accounting (`OverheadBreakdown`'s
//! `measured` buckets in `dynmo-core`) and are never recorded as events,
//! checkpointed, or folded into checksums — the determinism pins stay
//! byte-identical no matter how slow the machine is.

use std::time::Instant;

/// A running wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    // The designated wall-clock choke point (see clippy.toml): every other
    // crate measures time through Stopwatch, never Instant directly.
    #[allow(clippy::disallowed_methods)]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Time a closure, returning its result and the elapsed seconds.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let sw = Stopwatch::start();
        let out = f();
        (out, sw.elapsed_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_and_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_seconds();
        let b = sw.elapsed_seconds();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let (value, seconds) = Stopwatch::time(|| 40 + 2);
        assert_eq!(value, 42);
        assert!(seconds >= 0.0);
    }
}
