//! Chrome-trace-event (Perfetto) JSON export.
//!
//! [`TraceBuilder`] assembles a trace in the JSON *trace event format*
//! that `ui.perfetto.dev` and `chrome://tracing` open directly: complete
//! spans (`ph:"X"`, microsecond timestamps), process-scoped instant
//! markers (`ph:"i"`), counter tracks (`ph:"C"`) and process/thread name
//! metadata (`ph:"M"`).  Recorder groups map to Perfetto *processes* and
//! lanes to *threads*, so a training run renders as one track per pipeline
//! rank with rebalance/checkpoint markers pinned across the process.
//!
//! [`validate_trace_json`] re-parses an emitted artifact and checks the
//! structural rules above; CI runs it (via the `trace_export` bin) on
//! every push.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Serialize, Value};

use crate::event::Event;

/// Lane (Perfetto tid) instant markers are attached to.
const MARKER_LANE: u64 = 9_000;
/// Lane (Perfetto tid) log lines are attached to.
const LOG_LANE: u64 = 9_001;

/// Newtype letting a hand-built [`Value`] tree ride through the
/// `serde_json` shim's `to_string` entry points.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn micros(seconds: f64) -> Value {
    Value::F64(seconds * 1e6)
}

/// Incrementally builds one trace-event JSON artifact.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Value>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of trace events added so far (including metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name the process `pid` (one per recorder group).
    pub fn process_name(&mut self, pid: usize, name: &str) {
        self.metadata(pid, None, "process_name", name);
    }

    /// Name thread `tid` of process `pid` (one per lane).
    pub fn thread_name(&mut self, pid: usize, tid: u64, name: &str) {
        self.metadata(pid, Some(tid), "thread_name", name);
    }

    fn metadata(&mut self, pid: usize, tid: Option<u64>, kind: &str, name: &str) {
        let mut entries = vec![
            ("name", Value::Str(kind.to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::U64(pid as u64)),
        ];
        if let Some(tid) = tid {
            entries.push(("tid", Value::U64(tid)));
        }
        entries.push(("args", map(vec![("name", Value::Str(name.to_string()))])));
        self.events.push(map(entries));
    }

    /// Add a complete span (`ph:"X"`); times in seconds.
    pub fn span(&mut self, pid: usize, tid: u64, name: &str, start: f64, end: f64) {
        self.events.push(map(vec![
            ("name", Value::Str(name.to_string())),
            ("cat", Value::Str("sim".to_string())),
            ("ph", Value::Str("X".to_string())),
            ("ts", micros(start)),
            ("dur", micros((end - start).max(0.0))),
            ("pid", Value::U64(pid as u64)),
            ("tid", Value::U64(tid)),
        ]));
    }

    /// Add a process-scoped instant marker (`ph:"i"`, `s:"p"`).
    pub fn instant(&mut self, pid: usize, name: &str, time: f64, args: &[(String, String)]) {
        let arg_entries: Vec<(String, Value)> = args
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect();
        self.events.push(map(vec![
            ("name", Value::Str(name.to_string())),
            ("cat", Value::Str("marker".to_string())),
            ("ph", Value::Str("i".to_string())),
            ("s", Value::Str("p".to_string())),
            ("ts", micros(time)),
            ("pid", Value::U64(pid as u64)),
            ("tid", Value::U64(MARKER_LANE)),
            ("args", Value::Map(arg_entries)),
        ]));
    }

    /// Add one sample of counter `name` (`ph:"C"`).
    pub fn counter(&mut self, pid: usize, name: &str, time: f64, value: f64) {
        self.events.push(map(vec![
            ("name", Value::Str(name.to_string())),
            ("ph", Value::Str("C".to_string())),
            ("ts", micros(time)),
            ("pid", Value::U64(pid as u64)),
            ("args", map(vec![("value", Value::F64(value))])),
        ]));
    }

    /// Map recorded [`Event`]s into trace events.  Each event's `group`
    /// becomes process `pid_offset + group`; span lanes become threads,
    /// instants pin to the process marker lane (named `kind: name`), logs
    /// land on a dedicated log lane.
    pub fn add_events(&mut self, pid_offset: usize, events: &[Event]) {
        for event in events {
            match event {
                Event::Span(s) => {
                    self.span(pid_offset + s.group, s.lane as u64, &s.name, s.start, s.end);
                }
                Event::Instant(i) => {
                    let mut args: Vec<(String, String)> =
                        vec![("kind".to_string(), i.kind.name().to_string())];
                    args.extend(i.args.iter().cloned());
                    let name = format!("{}: {}", i.kind.name(), i.name);
                    self.instant(pid_offset + i.group, &name, i.time, &args);
                }
                Event::Counter(c) => {
                    self.counter(pid_offset + c.group, &c.name, c.time, c.value);
                }
                Event::Log(l) => {
                    // Logs have no simulated timestamp; pin them at t=0 on
                    // their own lane so they stay visible but out of the way.
                    self.events.push(map(vec![
                        (
                            "name",
                            Value::Str(format!("[{}] {}", l.level.label(), l.message)),
                        ),
                        ("cat", Value::Str("log".to_string())),
                        ("ph", Value::Str("i".to_string())),
                        ("s", Value::Str("t".to_string())),
                        ("ts", Value::F64(0.0)),
                        ("pid", Value::U64(pid_offset as u64)),
                        ("tid", Value::U64(LOG_LANE)),
                    ]));
                }
            }
        }
    }

    /// Render the trace as pretty-printed trace-event JSON.
    pub fn to_json(&self) -> String {
        let root = map(vec![
            ("displayTimeUnit", Value::Str("ms".to_string())),
            ("traceEvents", Value::Seq(self.events.clone())),
        ]);
        serde_json::to_string_pretty(&Raw(root)).expect("trace serialization cannot fail")
    }

    /// Write the trace JSON to `path`, creating parent directories.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_json())
    }
}

/// Aggregate structural facts about a validated trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total trace events.
    pub events: usize,
    /// Complete spans (`ph:"X"`).
    pub spans: usize,
    /// Instant markers (`ph:"i"`).
    pub instants: usize,
    /// Counter samples (`ph:"C"`).
    pub counters: usize,
    /// Metadata records (`ph:"M"`).
    pub metadata: usize,
    /// Distinct `(pid, tid)` pairs carrying spans.
    pub span_tracks: usize,
    /// Distinct `pid`s seen across all events.
    pub processes: usize,
    /// Sorted, deduplicated instant-marker names.
    pub instant_names: Vec<String>,
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::I64(n) => Some(*n as f64),
        Value::U64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parse `text` as trace-event JSON and check the structural rules the
/// exporter promises: a `traceEvents` array whose entries carry a phase,
/// a name, a numeric `pid`, and — for spans — numeric `ts` and
/// non-negative `dur`.  Returns counts for downstream assertions.
pub fn validate_trace_json(text: &str) -> Result<TraceStats, String> {
    let root = serde_json::parse_value(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let entries = root
        .as_map()
        .ok_or_else(|| "trace root must be a JSON object".to_string())?;
    let events = field(entries, "traceEvents")
        .ok_or_else(|| "missing traceEvents".to_string())?
        .as_seq()
        .ok_or_else(|| "traceEvents must be an array".to_string())?;

    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    let mut tracks = std::collections::BTreeSet::new();
    let mut processes = std::collections::BTreeSet::new();
    let mut names = std::collections::BTreeSet::new();

    for (i, event) in events.iter().enumerate() {
        let entries = event
            .as_map()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let ph = match field(entries, "ph") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return Err(format!("traceEvents[{i}] missing phase `ph`")),
        };
        let name = match field(entries, "name") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(format!("traceEvents[{i}] missing `name`")),
        };
        let pid = field(entries, "pid")
            .and_then(numeric)
            .ok_or_else(|| format!("traceEvents[{i}] missing numeric `pid`"))?;
        processes.insert(pid as u64);
        if ph != "M" && field(entries, "ts").and_then(numeric).is_none() {
            return Err(format!("traceEvents[{i}] ({ph}) missing numeric `ts`"));
        }
        match ph {
            "X" => {
                let dur = field(entries, "dur")
                    .and_then(numeric)
                    .ok_or_else(|| format!("traceEvents[{i}] span missing `dur`"))?;
                if dur < 0.0 {
                    return Err(format!("traceEvents[{i}] span has negative duration"));
                }
                let tid = field(entries, "tid")
                    .and_then(numeric)
                    .ok_or_else(|| format!("traceEvents[{i}] span missing `tid`"))?;
                tracks.insert((pid as u64, tid as u64));
                stats.spans += 1;
            }
            "i" => {
                names.insert(name);
                stats.instants += 1;
            }
            "C" => stats.counters += 1,
            "M" => stats.metadata += 1,
            other => return Err(format!("traceEvents[{i}] has unknown phase `{other}`")),
        }
    }

    stats.span_tracks = tracks.len();
    stats.processes = processes.len();
    stats.instant_names = names.into_iter().collect();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MarkerKind;
    use crate::recorder::{MemoryRecorder, Recorder};

    fn sample_trace() -> TraceBuilder {
        let r = MemoryRecorder::new();
        r.span(0, 0, "F0", 0.0, 1.0);
        r.span(0, 1, "F0", 1.0, 2.0);
        r.instant(
            0,
            MarkerKind::Rebalance,
            "iter 10",
            2.0,
            &[("rounds", "2".to_string())],
        );
        r.counter(0, "replicas", 2.5, 3.0);
        let mut trace = TraceBuilder::new();
        trace.process_name(0, "training");
        trace.thread_name(0, 0, "rank 0");
        trace.thread_name(0, 1, "rank 1");
        trace.add_events(0, &r.snapshot());
        trace
    }

    #[test]
    fn emitted_trace_validates_and_counts_match() {
        let trace = sample_trace();
        let stats = validate_trace_json(&trace.to_json()).expect("trace must validate");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.metadata, 3);
        assert_eq!(stats.span_tracks, 2);
        assert_eq!(stats.processes, 1);
        assert_eq!(stats.instant_names, vec!["rebalance: iter 10".to_string()]);
    }

    #[test]
    fn spans_convert_to_microseconds() {
        let mut trace = TraceBuilder::new();
        trace.span(0, 0, "F0", 1.5, 2.0);
        let json = trace.to_json();
        assert!(json.contains("1500000"), "ts must be µs: {json}");
        assert!(json.contains("500000"), "dur must be µs: {json}");
    }

    #[test]
    fn validation_rejects_malformed_traces() {
        assert!(validate_trace_json("[]").is_err());
        assert!(validate_trace_json("{\"traceEvents\": 3}").is_err());
        assert!(validate_trace_json("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
        let no_dur = r#"{"traceEvents": [{"ph": "X", "name": "F0", "pid": 0, "tid": 0, "ts": 0}]}"#;
        assert!(validate_trace_json(no_dur).is_err());
        assert!(validate_trace_json("not json").is_err());
    }

    #[test]
    fn group_offsets_become_processes() {
        let r = MemoryRecorder::new();
        r.span(0, 0, "a", 0.0, 1.0);
        r.span(1, 0, "b", 0.0, 1.0);
        let mut trace = TraceBuilder::new();
        trace.add_events(5, &r.snapshot());
        let stats = validate_trace_json(&trace.to_json()).unwrap();
        assert_eq!(stats.processes, 2); // pids 5 and 6
        assert_eq!(stats.span_tracks, 2);
    }
}
