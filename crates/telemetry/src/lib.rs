//! # dynmo-telemetry
//!
//! Observability for the DynMo stack: a structured event/span recorder,
//! streaming quantile sketches, wall-clock profiling scopes, and a
//! Chrome-trace-event/Perfetto exporter.
//!
//! The crate is built around one determinism contract, inherited from the
//! trainer's `trajectory_checksum` and the sweep byte-identity pins:
//!
//! * **Simulated time is data.** Span and instant events carry simulated
//!   seconds from the pipeline simulator.  Recording them is a pure
//!   function of the run, so enabling a recorder never changes a sweep
//!   artifact and traces themselves are reproducible bit-for-bit.
//! * **Wall-clock is measurement, not data.** [`Stopwatch`] scopes feed
//!   *measured* seconds into overhead accounting
//!   (`OverheadBreakdown.measured` in `dynmo-core`), and that measurement
//!   never enters checksums, checkpoints, or sweep rows compared across
//!   thread counts.
//!
//! The entry point is the [`Recorder`] trait: library crates accept an
//! `Arc<dyn Recorder>` and emit events through it.  The default
//! [`NullRecorder`] reports `enabled() == false`, so every emission site
//! short-circuits to a single virtual call and instrumented code paths cost
//! nothing when observability is off.  [`MemoryRecorder`] buffers events
//! for later export through [`perfetto::TraceBuilder`], which writes a
//! JSON artifact openable directly in `ui.perfetto.dev`.

#![warn(missing_docs)]

pub mod event;
pub mod perfetto;
pub mod recorder;
pub mod registry;
pub mod sketch;
pub mod stopwatch;

pub use event::{CounterEvent, Event, InstantEvent, LogEvent, LogLevel, MarkerKind, SpanEvent};
pub use perfetto::{validate_trace_json, TraceBuilder, TraceStats};
pub use recorder::{MemoryRecorder, NullRecorder, Recorder};
pub use registry::{MetricsRegistry, RegistrySnapshot};
pub use sketch::{P2Quantile, StreamingSummary, SummaryStats};
pub use stopwatch::Stopwatch;
