//! Property tests pinning the P² sketch against the exact nearest-rank
//! percentile (ISSUE 7 satellite): exact while the series fits in five
//! markers, and within a tight quantile band on random Poisson-like and
//! log-normal samples once streaming.

use dynmo_telemetry::{P2Quantile, StreamingSummary};
use proptest::prelude::*;

/// Exact nearest-rank percentile (the serve-crate definition).
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn sorted_copy(values: &[f64]) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sorted
}

/// Assert `estimate` lands inside the exact quantile band `q ± slack`.
fn assert_in_band(values: &[f64], estimate: f64, q: f64, slack: f64) {
    let sorted = sorted_copy(values);
    let lo = nearest_rank(&sorted, (q - slack).max(0.001));
    let hi = nearest_rank(&sorted, (q + slack).min(0.999));
    assert!(
        estimate >= lo - 1e-9 && estimate <= hi + 1e-9,
        "q={q}: estimate {estimate} outside exact band [{lo}, {hi}] (n={})",
        values.len()
    );
}

/// Turn pairs of uniforms into log-normal samples via Box–Muller.
fn log_normal(uniforms: &[f64], sigma: f64) -> Vec<f64> {
    uniforms
        .chunks_exact(2)
        .map(|uv| {
            let u = uv[0].clamp(1e-12, 1.0);
            let z = (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * uv[1]).cos();
            (sigma * z).exp()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// While n ≤ 5 the sketch IS the exact percentile, bit for bit.
    #[test]
    fn exact_up_to_five_observations(
        values in prop::collection::vec(0.0f64..100.0, 1..6),
        q_pct in 1u32..100,
    ) {
        let q = q_pct as f64 / 100.0;
        let mut sk = P2Quantile::new(q);
        for v in &values {
            sk.observe(*v);
        }
        prop_assert_eq!(sk.value(), nearest_rank(&sorted_copy(&values), q));
    }

    /// Streaming on uniform-ish continuous samples stays within a ±4%
    /// quantile band of the exact percentile for p50/p95.
    #[test]
    fn streaming_tracks_exact_on_continuous_samples(
        values in prop::collection::vec(0.01f64..10.0, 1500..2500),
    ) {
        for q in [0.50, 0.95] {
            let mut sk = P2Quantile::new(q);
            for v in &values {
                sk.observe(*v);
            }
            assert_in_band(&values, sk.value(), q, 0.04);
        }
    }

    /// Log-normal latencies (the shape serving traces actually have).
    #[test]
    fn streaming_tracks_exact_on_log_normal_samples(
        uniforms in prop::collection::vec(0.0001f64..0.9999, 3000..4000),
        sigma_milli in 100u32..600,
    ) {
        let values = log_normal(&uniforms, sigma_milli as f64 / 1000.0);
        for q in [0.50, 0.95] {
            let mut sk = P2Quantile::new(q);
            for v in &values {
                sk.observe(*v);
            }
            assert_in_band(&values, sk.value(), q, 0.04);
        }
    }

    /// Discrete Poisson-like counts (heavy ties — the P² edge case).
    #[test]
    fn streaming_tracks_exact_on_discrete_counts(
        counts in prop::collection::vec(0u64..40, 1500..2500),
    ) {
        let values: Vec<f64> = counts.iter().map(|c| *c as f64).collect();
        for q in [0.50, 0.95] {
            let mut sk = P2Quantile::new(q);
            for v in &values {
                sk.observe(*v);
            }
            // Ties quantize the achievable band: allow one unit of slack
            // around the exact band on top of the quantile slack.
            let sorted = sorted_copy(&values);
            let lo = nearest_rank(&sorted, (q - 0.05f64).max(0.001)) - 1.0;
            let hi = nearest_rank(&sorted, (q + 0.05f64).min(0.999)) + 1.0;
            let est = sk.value();
            prop_assert!(est >= lo && est <= hi, "q={q}: {est} outside [{lo}, {hi}]");
        }
    }

    /// The streaming summary in exact mode is bit-identical to the
    /// sort-based path regardless of input order.
    #[test]
    fn summary_exact_mode_matches_sort_path(
        values in prop::collection::vec(0.0f64..50.0, 0..200),
    ) {
        let mut summary = StreamingSummary::new();
        for v in &values {
            summary.observe(*v);
        }
        let stats = summary.stats();
        let sorted = sorted_copy(&values);
        if values.is_empty() {
            prop_assert_eq!(stats.p50, 0.0);
            prop_assert_eq!(stats.mean, 0.0);
        } else {
            prop_assert_eq!(stats.p50, nearest_rank(&sorted, 0.50));
            prop_assert_eq!(stats.p95, nearest_rank(&sorted, 0.95));
            prop_assert_eq!(stats.p99, nearest_rank(&sorted, 0.99));
            prop_assert_eq!(stats.mean, sorted.iter().sum::<f64>() / sorted.len() as f64);
        }
    }
}
