//! Collective operations over a [`Communicator`].
//!
//! These are the collective patterns the DynMo paper actually uses:
//!
//! * `gather` / `scatter` — Algorithm 1 (global magnitude pruning) gathers
//!   local top-k magnitudes on rank 0 and scatters back per-rank
//!   keep-indices.  The paper implements these with NCCL P2P send/recv
//!   because message sizes differ per rank; we do the same here (the
//!   root posts/receives one message per peer).
//! * `allreduce` — data-parallel gradient synchronization.
//! * `alltoall` — MoE token exchange between expert-parallel ranks.
//! * `broadcast` / `barrier` — control-flow coordination around rebalancing
//!   and re-packing steps.
//!
//! The algorithms used are simple root-based linear algorithms: the point of
//! this runtime is correctness of the distributed *logic*, not wire-time
//! performance (communication time is modeled analytically by
//! `dynmo-pipeline`'s cost model).

use crate::communicator::{Communicator, SYSTEM_TAG_BASE};
use crate::error::{Result, RuntimeError};
use crate::payload::Payload;
use crate::stats::CollectiveKind;
use crate::Tag;

/// Tag offsets for each collective so that concurrent collectives on the
/// same communicator do not interfere with each other as long as callers
/// invoke them in the same order on every rank (the MPI requirement).
const TAG_BROADCAST: Tag = SYSTEM_TAG_BASE + 0x100;
const TAG_GATHER: Tag = SYSTEM_TAG_BASE + 0x200;
const TAG_SCATTER: Tag = SYSTEM_TAG_BASE + 0x300;
const TAG_ALLREDUCE_UP: Tag = SYSTEM_TAG_BASE + 0x400;
const TAG_ALLREDUCE_DOWN: Tag = SYSTEM_TAG_BASE + 0x401;
const TAG_ALLTOALL: Tag = SYSTEM_TAG_BASE + 0x500;
const TAG_BARRIER_UP: Tag = SYSTEM_TAG_BASE + 0x600;
const TAG_BARRIER_DOWN: Tag = SYSTEM_TAG_BASE + 0x601;
const TAG_ALLGATHER: Tag = SYSTEM_TAG_BASE + 0x700;

/// Element-wise reduction operators supported by the reduce/allreduce family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f32], value: &[f32]) {
        for (a, v) in acc.iter_mut().zip(value.iter()) {
            match self {
                ReduceOp::Sum => *a += *v,
                ReduceOp::Max => *a = a.max(*v),
                ReduceOp::Min => *a = a.min(*v),
            }
        }
    }
}

impl Communicator {
    /// Broadcast `payload` from local rank `root` to every member; every rank
    /// receives the root's payload as the return value.
    pub fn broadcast(&self, root: usize, payload: Payload) -> Result<Payload> {
        self.fabric()
            .stats()
            .record_collective(CollectiveKind::Broadcast);
        if root >= self.size() {
            return Err(RuntimeError::InvalidArgument(format!(
                "broadcast root {root} out of range for communicator of size {}",
                self.size()
            )));
        }
        if self.rank() == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send_internal(dst, TAG_BROADCAST, payload.clone())?;
                }
            }
            Ok(payload)
        } else {
            self.recv_internal(root, TAG_BROADCAST)
        }
    }

    /// Gather one payload per rank on `root`.  The root receives
    /// `Some(payloads)` ordered by local rank; other ranks receive `None`.
    /// Payload sizes may differ per rank (the Algorithm 1 use case).
    pub fn gather(&self, root: usize, payload: Payload) -> Result<Option<Vec<Payload>>> {
        self.fabric()
            .stats()
            .record_collective(CollectiveKind::Gather);
        if root >= self.size() {
            return Err(RuntimeError::InvalidArgument(format!(
                "gather root {root} out of range for communicator of size {}",
                self.size()
            )));
        }
        if self.rank() == root {
            let mut gathered: Vec<Option<Payload>> = vec![None; self.size()];
            gathered[root] = Some(payload);
            for (src, slot) in gathered.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv_internal(src, TAG_GATHER)?);
                }
            }
            Ok(Some(
                gathered
                    .into_iter()
                    .map(|p| p.expect("all slots are filled"))
                    .collect(),
            ))
        } else {
            self.send_internal(root, TAG_GATHER, payload)?;
            Ok(None)
        }
    }

    /// Scatter one payload per rank from `root`.  The root must pass
    /// `Some(payloads)` with exactly one entry per member rank; other ranks
    /// pass `None`.  Each rank returns the payload destined for it.
    pub fn scatter(&self, root: usize, payloads: Option<Vec<Payload>>) -> Result<Payload> {
        self.fabric()
            .stats()
            .record_collective(CollectiveKind::Scatter);
        if root >= self.size() {
            return Err(RuntimeError::InvalidArgument(format!(
                "scatter root {root} out of range for communicator of size {}",
                self.size()
            )));
        }
        if self.rank() == root {
            let payloads = payloads.ok_or_else(|| {
                RuntimeError::InvalidArgument("scatter root must provide payloads".to_string())
            })?;
            if payloads.len() != self.size() {
                return Err(RuntimeError::InvalidArgument(format!(
                    "scatter expects {} payloads, got {}",
                    self.size(),
                    payloads.len()
                )));
            }
            let mut mine = None;
            for (dst, p) in payloads.into_iter().enumerate() {
                if dst == root {
                    mine = Some(p);
                } else {
                    self.send_internal(dst, TAG_SCATTER, p)?;
                }
            }
            Ok(mine.expect("root payload present"))
        } else {
            if payloads.is_some() {
                return Err(RuntimeError::InvalidArgument(
                    "only the scatter root may provide payloads".to_string(),
                ));
            }
            self.recv_internal(root, TAG_SCATTER)
        }
    }

    /// All-gather: every rank contributes a payload and receives every rank's
    /// payload, ordered by local rank.
    pub fn allgather(&self, payload: Payload) -> Result<Vec<Payload>> {
        self.fabric()
            .stats()
            .record_collective(CollectiveKind::AllGather);
        // Gather to rank 0 then broadcast each entry.
        let n = self.size();
        if self.rank() == 0 {
            let mut gathered: Vec<Option<Payload>> = vec![None; n];
            gathered[0] = Some(payload);
            for (src, slot) in gathered.iter_mut().enumerate().skip(1) {
                *slot = Some(self.recv_internal(src, TAG_ALLGATHER)?);
            }
            let gathered: Vec<Payload> = gathered
                .into_iter()
                .map(|p| p.expect("all slots filled"))
                .collect();
            for dst in 1..n {
                for item in &gathered {
                    self.send_internal(dst, TAG_ALLGATHER + 1, item.clone())?;
                }
            }
            Ok(gathered)
        } else {
            self.send_internal(0, TAG_ALLGATHER, payload)?;
            let mut gathered = Vec::with_capacity(n);
            for _ in 0..n {
                gathered.push(self.recv_internal(0, TAG_ALLGATHER + 1)?);
            }
            Ok(gathered)
        }
    }

    /// Reduce `f32` vectors element-wise onto `root` with operator `op`.
    /// All ranks must pass vectors of identical length.
    pub fn reduce_f32(&self, root: usize, value: &[f32], op: ReduceOp) -> Result<Option<Vec<f32>>> {
        self.fabric()
            .stats()
            .record_collective(CollectiveKind::Reduce);
        if self.rank() == root {
            let mut acc = value.to_vec();
            for src in 0..self.size() {
                if src != root {
                    let v = self.recv_internal(src, TAG_ALLREDUCE_UP)?.into_f32()?;
                    if v.len() != acc.len() {
                        return Err(RuntimeError::PayloadMismatch(format!(
                            "reduce length mismatch: {} vs {}",
                            v.len(),
                            acc.len()
                        )));
                    }
                    op.apply(&mut acc, &v);
                }
            }
            Ok(Some(acc))
        } else {
            self.send_internal(root, TAG_ALLREDUCE_UP, Payload::F32(value.to_vec()))?;
            Ok(None)
        }
    }

    /// All-reduce `f32` vectors element-wise with operator `op`; every rank
    /// receives the reduced vector.
    pub fn allreduce_f32(&self, value: &[f32], op: ReduceOp) -> Result<Vec<f32>> {
        self.fabric()
            .stats()
            .record_collective(CollectiveKind::AllReduce);
        // Reduce to 0, then broadcast.
        if self.rank() == 0 {
            let mut acc = value.to_vec();
            for src in 1..self.size() {
                let v = self.recv_internal(src, TAG_ALLREDUCE_UP)?.into_f32()?;
                if v.len() != acc.len() {
                    return Err(RuntimeError::PayloadMismatch(format!(
                        "allreduce length mismatch: {} vs {}",
                        v.len(),
                        acc.len()
                    )));
                }
                op.apply(&mut acc, &v);
            }
            for dst in 1..self.size() {
                self.send_internal(dst, TAG_ALLREDUCE_DOWN, Payload::F32(acc.clone()))?;
            }
            Ok(acc)
        } else {
            self.send_internal(0, TAG_ALLREDUCE_UP, Payload::F32(value.to_vec()))?;
            self.recv_internal(0, TAG_ALLREDUCE_DOWN)?.into_f32()
        }
    }

    /// Convenience sum all-reduce used throughout the training loop.
    pub fn allreduce_sum_f32(&self, value: &[f32]) -> Result<Vec<f32>> {
        self.allreduce_f32(value, ReduceOp::Sum)
    }

    /// Convenience max all-reduce (e.g. finding the slowest stage).
    pub fn allreduce_max_f32(&self, value: &[f32]) -> Result<Vec<f32>> {
        self.allreduce_f32(value, ReduceOp::Max)
    }

    /// All-to-all personalized exchange: `sends[i]` goes to local rank `i`,
    /// and the returned vector holds the payload received from each rank.
    /// This is the MoE token-exchange pattern.
    pub fn alltoall(&self, sends: Vec<Payload>) -> Result<Vec<Payload>> {
        self.fabric()
            .stats()
            .record_collective(CollectiveKind::AllToAll);
        if sends.len() != self.size() {
            return Err(RuntimeError::InvalidArgument(format!(
                "alltoall expects {} send payloads, got {}",
                self.size(),
                sends.len()
            )));
        }
        let mut received: Vec<Option<Payload>> = vec![None; self.size()];
        // Keep own slice.
        for (dst, payload) in sends.into_iter().enumerate() {
            if dst == self.rank() {
                received[dst] = Some(payload);
            } else {
                self.send_internal(dst, TAG_ALLTOALL, payload)?;
            }
        }
        for (src, slot) in received.iter_mut().enumerate() {
            if src != self.rank() {
                *slot = Some(self.recv_internal(src, TAG_ALLTOALL)?);
            }
        }
        Ok(received
            .into_iter()
            .map(|p| p.expect("all slots filled"))
            .collect())
    }

    /// Barrier: returns only after every member rank has entered the barrier.
    pub fn barrier(&self) -> Result<()> {
        self.fabric()
            .stats()
            .record_collective(CollectiveKind::Barrier);
        if self.rank() == 0 {
            for src in 1..self.size() {
                let _ = self.recv_internal(src, TAG_BARRIER_UP)?;
            }
            for dst in 1..self.size() {
                self.send_internal(dst, TAG_BARRIER_DOWN, Payload::Empty)?;
            }
        } else {
            self.send_internal(0, TAG_BARRIER_UP, Payload::Empty)?;
            let _ = self.recv_internal(0, TAG_BARRIER_DOWN)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launcher::launch;

    #[test]
    fn broadcast_delivers_root_value_everywhere() {
        let results = launch(4, |ctx| {
            let comm = ctx.world();
            let payload = if ctx.rank() == 2 {
                Payload::F32(vec![3.5, 4.5])
            } else {
                Payload::Empty
            };
            comm.broadcast(2, payload).unwrap().into_f32().unwrap()
        })
        .unwrap();
        for r in results {
            assert_eq!(r, vec![3.5, 4.5]);
        }
    }

    #[test]
    fn broadcast_invalid_root_errors() {
        let results = launch(2, |ctx| {
            let comm = ctx.world();
            comm.broadcast(9, Payload::Empty).is_err()
        })
        .unwrap();
        assert!(results.into_iter().all(|b| b));
    }

    #[test]
    fn gather_collects_variable_sized_payloads_in_rank_order() {
        let results = launch(3, |ctx| {
            let comm = ctx.world();
            // Rank r contributes r+1 values — sizes intentionally differ,
            // matching the Algorithm 1 gather of per-rank top-k values.
            let mine: Vec<f32> = (0..=ctx.rank()).map(|i| i as f32).collect();
            comm.gather(0, Payload::F32(mine)).unwrap().map(|payloads| {
                payloads
                    .into_iter()
                    .map(|p| p.into_f32().unwrap())
                    .collect::<Vec<_>>()
            })
        })
        .unwrap();
        assert_eq!(
            results[0],
            Some(vec![vec![0.0], vec![0.0, 1.0], vec![0.0, 1.0, 2.0]])
        );
        assert_eq!(results[1], None);
        assert_eq!(results[2], None);
    }

    #[test]
    fn scatter_distributes_per_rank_payloads() {
        let results = launch(3, |ctx| {
            let comm = ctx.world();
            let input = if ctx.rank() == 1 {
                Some(vec![
                    Payload::U64(vec![100]),
                    Payload::U64(vec![101]),
                    Payload::U64(vec![102]),
                ])
            } else {
                None
            };
            comm.scatter(1, input).unwrap().into_u64().unwrap()[0]
        })
        .unwrap();
        assert_eq!(results, vec![100, 101, 102]);
    }

    #[test]
    fn scatter_wrong_count_errors_on_root() {
        let results = launch(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                comm.scatter(0, Some(vec![Payload::Empty])).is_err()
            } else {
                // The peer would block forever waiting for a scatter that the
                // root refuses to perform, so it doesn't participate here.
                true
            }
        })
        .unwrap();
        assert!(results[0]);
    }

    #[test]
    fn allgather_returns_everyones_contribution() {
        let results = launch(4, |ctx| {
            let comm = ctx.world();
            let all = comm
                .allgather(Payload::U32(vec![ctx.rank() as u32 * 7]))
                .unwrap();
            all.into_iter()
                .map(|p| p.into_u32().unwrap()[0])
                .collect::<Vec<_>>()
        })
        .unwrap();
        for r in results {
            assert_eq!(r, vec![0, 7, 14, 21]);
        }
    }

    #[test]
    fn allreduce_sum_max_min() {
        let results = launch(3, |ctx| {
            let comm = ctx.world();
            let mine = vec![ctx.rank() as f32, 10.0 - ctx.rank() as f32];
            let sum = comm.allreduce_f32(&mine, ReduceOp::Sum).unwrap();
            let max = comm.allreduce_f32(&mine, ReduceOp::Max).unwrap();
            let min = comm.allreduce_f32(&mine, ReduceOp::Min).unwrap();
            (sum, max, min)
        })
        .unwrap();
        for (sum, max, min) in results {
            assert_eq!(sum, vec![3.0, 27.0]);
            assert_eq!(max, vec![2.0, 10.0]);
            assert_eq!(min, vec![0.0, 8.0]);
        }
    }

    #[test]
    fn reduce_to_root_only_root_gets_result() {
        let results = launch(4, |ctx| {
            let comm = ctx.world();
            comm.reduce_f32(3, &[1.0], ReduceOp::Sum).unwrap()
        })
        .unwrap();
        assert_eq!(results[3], Some(vec![4.0]));
        assert_eq!(results[0], None);
    }

    #[test]
    fn alltoall_transposes_the_send_matrix() {
        let n = 4;
        let results = launch(n, |ctx| {
            let comm = ctx.world();
            // sends[j] from rank i is the value i*10 + j.
            let sends: Vec<Payload> = (0..n)
                .map(|j| Payload::U32(vec![(ctx.rank() * 10 + j) as u32]))
                .collect();
            comm.alltoall(sends)
                .unwrap()
                .into_iter()
                .map(|p| p.into_u32().unwrap()[0])
                .collect::<Vec<_>>()
        })
        .unwrap();
        // Rank j must have received i*10 + j from every rank i.
        for (j, row) in results.iter().enumerate() {
            let expected: Vec<u32> = (0..n).map(|i| (i * 10 + j) as u32).collect();
            assert_eq!(row, &expected);
        }
    }

    #[test]
    fn barrier_completes_for_all_ranks() {
        let results = launch(5, |ctx| {
            let comm = ctx.world();
            for _ in 0..3 {
                comm.barrier().unwrap();
            }
            true
        })
        .unwrap();
        assert!(results.into_iter().all(|b| b));
    }

    #[test]
    fn collective_stats_are_recorded() {
        use crate::fabric::Fabric;
        use crate::launcher::launch_with_fabric;
        use crate::stats::CollectiveKind;
        use std::sync::Arc;

        let (fabric, inboxes) = Fabric::new(2);
        let fabric_check = Arc::clone(&fabric);
        launch_with_fabric(fabric, inboxes, |ctx| {
            let comm = ctx.world();
            comm.barrier().unwrap();
            comm.allreduce_sum_f32(&[1.0]).unwrap();
        })
        .unwrap();
        let snap = fabric_check.stats().snapshot();
        assert_eq!(snap.collective_count(CollectiveKind::Barrier), 2);
        assert_eq!(snap.collective_count(CollectiveKind::AllReduce), 2);
    }
}
