//! # dynmo-runtime
//!
//! A simulated multi-rank, message-passing runtime that stands in for the
//! NCCL/MPI layer used by the DynMo paper (SC'25).
//!
//! The paper's implementation relies on NCCL peer-to-peer send/receive,
//! collectives (gather/scatter for global pruning, all-reduce for data
//! parallelism, all-to-all for MoE token exchange), and communicator
//! splitting (`ncclCommSplit`) to release GPUs after re-packing.  None of
//! those require a GPU: they only require *rank and communicator semantics*.
//! This crate provides exactly those semantics on top of OS threads and
//! crossbeam channels, so that DynMo's distributed algorithms (Algorithm 1
//! global magnitude pruning, Algorithm 2 re-packing, layer migration) run
//! verbatim, with real message exchange, ordering, and tag matching.
//!
//! ## Quick example
//!
//! ```
//! use dynmo_runtime::{launch, Payload};
//!
//! // Spawn a 4-rank "job"; every rank contributes its rank id and the
//! // all-reduce returns the sum on every rank.
//! let results = launch(4, |ctx| {
//!     let comm = ctx.world();
//!     let mine = vec![ctx.rank() as f32];
//!     let summed = comm.allreduce_sum_f32(&mine).unwrap();
//!     summed[0] as usize
//! })
//! .unwrap();
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! # let _ = Payload::F32(vec![]);
//! ```

#![warn(missing_docs)]

pub mod collectives;
pub mod communicator;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod launcher;
pub mod payload;
pub mod stats;

pub use communicator::Communicator;
pub use error::{Result, RuntimeError};
pub use fabric::Fabric;
pub use fault::{
    FailureDetector, FaultInjector, FaultPlan, ScheduledKill, SpotEviction, SPOT_WARNING_ITERATIONS,
};
pub use launcher::{launch, launch_with_fabric, RankCtx};
pub use payload::Payload;
pub use stats::{FabricStats, StatsSnapshot};

/// A tag used to match point-to-point messages, mirroring MPI tags.
pub type Tag = u32;

/// A global rank identifier within the fabric (i.e. the "GPU index" in the
/// paper's terminology: one MPI rank per GPU).
pub type RankId = usize;
