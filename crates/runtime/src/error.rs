//! Error types for the simulated runtime.

use std::fmt;

/// Convenience result alias used across the runtime.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Errors surfaced by the simulated communication fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A destination rank does not exist in the fabric.
    UnknownRank(usize),
    /// A rank referenced a communicator it is not a member of.
    NotAMember {
        /// The global rank that attempted the operation.
        rank: usize,
        /// The communicator id involved.
        comm: u64,
    },
    /// The peer's endpoint has been torn down (its thread exited).
    Disconnected {
        /// The global rank whose channel was closed.
        rank: usize,
    },
    /// A receive operation timed out.
    Timeout {
        /// The rank that was waiting.
        rank: usize,
        /// The peer the rank was waiting on, if known.
        src: Option<usize>,
        /// The tag that was being matched.
        tag: u32,
    },
    /// A payload had a different type or length than the operation expected.
    PayloadMismatch(String),
    /// Collective operation called with invalid arguments (e.g. scatter
    /// counts not matching the communicator size).
    InvalidArgument(String),
    /// A worker thread panicked during `launch`.
    WorkerPanicked {
        /// The global rank of the panicked worker.
        rank: usize,
    },
    /// A rank has failed (killed by fault injection or crashed).  Raised on
    /// the failed rank itself, on sends touching it, and on any receive
    /// posted on a communicator containing it — mirroring NCCL's
    /// `ncclRemoteError` after a peer aborts.
    RankFailed {
        /// The global rank that failed.
        rank: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownRank(r) => write!(f, "unknown rank {r}"),
            RuntimeError::NotAMember { rank, comm } => {
                write!(f, "rank {rank} is not a member of communicator {comm}")
            }
            RuntimeError::Disconnected { rank } => {
                write!(f, "rank {rank} endpoint is disconnected")
            }
            RuntimeError::Timeout { rank, src, tag } => match src {
                Some(s) => write!(f, "rank {rank} timed out waiting for src {s} tag {tag}"),
                None => write!(f, "rank {rank} timed out waiting for tag {tag}"),
            },
            RuntimeError::PayloadMismatch(msg) => write!(f, "payload mismatch: {msg}"),
            RuntimeError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            RuntimeError::WorkerPanicked { rank } => write!(f, "worker rank {rank} panicked"),
            RuntimeError::RankFailed { rank } => write!(f, "rank {rank} has failed"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(RuntimeError, &str)> = vec![
            (RuntimeError::UnknownRank(3), "unknown rank 3"),
            (
                RuntimeError::NotAMember { rank: 1, comm: 7 },
                "rank 1 is not a member of communicator 7",
            ),
            (
                RuntimeError::Disconnected { rank: 2 },
                "rank 2 endpoint is disconnected",
            ),
            (RuntimeError::RankFailed { rank: 4 }, "rank 4 has failed"),
            (
                RuntimeError::PayloadMismatch("want f32".into()),
                "payload mismatch: want f32",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn timeout_display_with_and_without_src() {
        let with = RuntimeError::Timeout {
            rank: 0,
            src: Some(5),
            tag: 9,
        };
        assert!(with.to_string().contains("src 5"));
        let without = RuntimeError::Timeout {
            rank: 0,
            src: None,
            tag: 9,
        };
        assert!(!without.to_string().contains("src"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&RuntimeError::UnknownRank(0));
    }
}
