//! Failure injection and fabric-level failure detection.
//!
//! The paper's elastic story (§3.4.2) assumes a perfectly reliable fleet;
//! production pipeline training does not get that luxury.  This module makes
//! the simulated fabric *unreliable on demand*: a [`FaultPlan`] schedules
//! rank deaths at specific training iterations, a [`FaultInjector`] executes
//! them, and a [`FailureDetector`] — shared by every endpoint of a fabric —
//! surfaces the death to the survivors, the way NCCL's async error handling
//! poisons every outstanding operation on a communicator once a peer is
//! gone.
//!
//! The semantics mirror `ncclCommAbort`/`ncclRemoteError`:
//!
//! * the dying rank marks itself failed and stops participating;
//! * any send touching a failed rank returns [`RuntimeError::RankFailed`];
//! * any receive posted on a communicator that *contains* a failed member
//!   fails promptly with [`RuntimeError::RankFailed`] instead of timing out,
//!   even if the rank being waited on is still alive — once a member is
//!   dead, collectives on that communicator can never complete, and
//!   surfacing the error everywhere is what lets every survivor converge to
//!   the recovery path without a coordinator.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::{Result, RuntimeError};
use crate::RankId;

/// Shared registry of failed ranks, owned by the [`crate::Fabric`] and
/// consulted by every endpoint and communicator attached to it.
///
/// Cloning is cheap and shares the underlying set (the detector is the one
/// piece of "control plane" state that survives a rank's death).
#[derive(Debug, Clone, Default)]
pub struct FailureDetector {
    failed: Arc<Mutex<BTreeSet<RankId>>>,
}

impl FailureDetector {
    /// Create a detector with no failed ranks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `rank` as failed.  Idempotent; returns whether the rank was
    /// newly marked.
    pub fn mark_failed(&self, rank: RankId) -> bool {
        self.failed.lock().insert(rank)
    }

    /// Whether `rank` has been marked failed.
    pub fn is_failed(&self, rank: RankId) -> bool {
        self.failed.lock().contains(&rank)
    }

    /// All failed ranks, in ascending order.
    pub fn failed_ranks(&self) -> Vec<RankId> {
        self.failed.lock().iter().copied().collect()
    }

    /// Number of failed ranks.
    pub fn failed_count(&self) -> usize {
        self.failed.lock().len()
    }

    /// The first failed rank among `members`, if any — the check used to
    /// poison operations on a communicator containing a dead member.
    pub fn first_failed_of(&self, members: &[RankId]) -> Option<RankId> {
        let failed = self.failed.lock();
        members.iter().copied().find(|r| failed.contains(r))
    }
}

/// One scheduled rank death.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledKill {
    /// Global rank to kill.
    pub rank: RankId,
    /// Training iteration at which the rank dies (it fails *before* doing
    /// any work for this iteration).
    pub at_iteration: u64,
}

/// One scheduled spot-instance eviction: the provider announces it a few
/// iterations ahead (cloud spot/preemptible VMs give a 30–120 s warning),
/// then reclaims the rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpotEviction {
    /// Global rank being reclaimed.
    pub rank: RankId,
    /// Iteration at which the advance warning is delivered.
    pub warn_at: u64,
    /// Iteration at which the rank actually dies (`> warn_at`); like a
    /// [`ScheduledKill`], it fails before doing any work for this iteration.
    pub evict_at: u64,
}

/// Iterations of advance notice a spot eviction gives — enough for one
/// checkpoint-on-warning before the instance is reclaimed.
pub const SPOT_WARNING_ITERATIONS: u64 = 3;

/// A schedule of rank deaths to inject into a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    kills: Vec<ScheduledKill>,
    evictions: Vec<SpotEviction>,
}

/// splitmix64 — the statelessly seedable mixer used to draw the stochastic
/// spot-eviction schedule.  Local to this crate so the runtime stays free of
/// a dependency on the dynamics crate's RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with no failures (the reliable-fabric default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a scheduled death of `rank` at `iteration` (builder-style).
    pub fn kill(mut self, rank: RankId, at_iteration: u64) -> Self {
        self.kills.push(ScheduledKill { rank, at_iteration });
        self
    }

    /// Add a spot eviction of `rank`: warned at `warn_at`, dead at
    /// `evict_at` (builder-style).
    pub fn evict(mut self, rank: RankId, warn_at: u64, evict_at: u64) -> Self {
        assert!(evict_at > warn_at, "eviction must come after its warning");
        self.evictions.push(SpotEviction {
            rank,
            warn_at,
            evict_at,
        });
        self
    }

    /// A stochastic spot-eviction schedule: every rank except rank 0 (the
    /// coordinator, pinned to an on-demand instance) is evicted
    /// independently per iteration with probability `rate`, over the first
    /// `horizon` iterations, with [`SPOT_WARNING_ITERATIONS`] of advance
    /// warning.  At most one eviction per rank.  The schedule is a pure
    /// function of `(world_size, horizon, rate, seed)` — the same seed
    /// always yields the same plan.
    pub fn spot(world_size: usize, horizon: u64, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let mut plan = Self::none();
        for rank in 1..world_size {
            // One independent, seed-derived stream per rank so adding a
            // rank never perturbs the other ranks' schedules.
            let mut state = seed ^ (rank as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            for iteration in SPOT_WARNING_ITERATIONS..horizon {
                let draw = splitmix64(&mut state) >> 11; // 53 uniform bits
                let uniform = draw as f64 / (1u64 << 53) as f64;
                if uniform < rate {
                    plan = plan.evict(
                        rank as RankId,
                        iteration - SPOT_WARNING_ITERATIONS,
                        iteration,
                    );
                    break;
                }
            }
        }
        plan
    }

    /// The scheduled kills, in insertion order.
    pub fn kills(&self) -> &[ScheduledKill] {
        &self.kills
    }

    /// The scheduled spot evictions, in insertion order.
    pub fn evictions(&self) -> &[SpotEviction] {
        &self.evictions
    }

    /// Whether the plan schedules any failure at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.evictions.is_empty()
    }

    /// The iteration at which `rank` is scheduled to die, if any (the
    /// earliest over kills and evictions, when several are scheduled).
    pub fn death_of(&self, rank: RankId) -> Option<u64> {
        self.kills
            .iter()
            .filter(|k| k.rank == rank)
            .map(|k| k.at_iteration)
            .chain(
                self.evictions
                    .iter()
                    .filter(|e| e.rank == rank)
                    .map(|e| e.evict_at),
            )
            .min()
    }

    /// The ranks whose eviction warning fires exactly at `iteration`, in
    /// ascending order — what a checkpoint-on-warning hook keys on.
    pub fn warned_at(&self, iteration: u64) -> Vec<RankId> {
        let mut ranks: Vec<RankId> = self
            .evictions
            .iter()
            .filter(|e| e.warn_at == iteration)
            .map(|e| e.rank)
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }
}

/// Executes a [`FaultPlan`] against a fabric's [`FailureDetector`].
///
/// Every rank calls [`FaultInjector::tick`] at the top of each iteration;
/// when the plan says this rank dies here, the injector marks it failed in
/// the shared detector and returns [`RuntimeError::RankFailed`] so the rank
/// body can abort, simulating the process crash.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    detector: FailureDetector,
}

impl FaultInjector {
    /// Bind a plan to the detector of the fabric the job runs on.
    pub fn new(plan: FaultPlan, detector: FailureDetector) -> Self {
        FaultInjector { plan, detector }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advance `rank` to `iteration`.  Returns
    /// `Err(RuntimeError::RankFailed)` if the plan kills this rank at (or
    /// before) this iteration; the caller must stop participating.
    pub fn tick(&self, rank: RankId, iteration: u64) -> Result<()> {
        if self.detector.is_failed(rank) {
            return Err(RuntimeError::RankFailed { rank });
        }
        match self.plan.death_of(rank) {
            Some(at) if at <= iteration => {
                self.detector.mark_failed(rank);
                Err(RuntimeError::RankFailed { rank })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_marks_and_reports_failures() {
        let d = FailureDetector::new();
        assert!(!d.is_failed(2));
        assert!(d.mark_failed(2));
        assert!(!d.mark_failed(2), "second mark is idempotent");
        assert!(d.is_failed(2));
        assert_eq!(d.failed_ranks(), vec![2]);
        assert_eq!(d.failed_count(), 1);
        assert_eq!(d.first_failed_of(&[0, 1, 3]), None);
        assert_eq!(d.first_failed_of(&[0, 2, 3]), Some(2));
    }

    #[test]
    fn detector_clones_share_state() {
        let d = FailureDetector::new();
        let clone = d.clone();
        d.mark_failed(7);
        assert!(clone.is_failed(7));
    }

    #[test]
    fn plan_records_and_queries_kills() {
        let plan = FaultPlan::none().kill(3, 120).kill(1, 40).kill(3, 80);
        assert!(!plan.is_empty());
        assert_eq!(plan.kills().len(), 3);
        assert_eq!(plan.death_of(3), Some(80), "earliest death wins");
        assert_eq!(plan.death_of(1), Some(40));
        assert_eq!(plan.death_of(0), None);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn evictions_enter_death_of_and_warned_at() {
        let plan = FaultPlan::none()
            .kill(1, 40)
            .evict(1, 17, 20)
            .evict(2, 5, 8);
        assert!(!plan.is_empty());
        assert_eq!(plan.evictions().len(), 2);
        // The eviction at 20 beats the kill at 40.
        assert_eq!(plan.death_of(1), Some(20));
        assert_eq!(plan.death_of(2), Some(8));
        assert_eq!(plan.warned_at(17), vec![1]);
        assert_eq!(plan.warned_at(5), vec![2]);
        assert!(plan.warned_at(6).is_empty());
    }

    #[test]
    #[should_panic(expected = "after its warning")]
    fn eviction_without_advance_warning_is_rejected() {
        let _ = FaultPlan::none().evict(1, 10, 10);
    }

    #[test]
    fn spot_schedule_is_deterministic_per_seed() {
        let a = FaultPlan::spot(8, 200, 0.02, 42);
        let b = FaultPlan::spot(8, 200, 0.02, 42);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::spot(8, 200, 0.02, 43);
        assert_ne!(a, c, "different seed, different plan");
        // A 2% per-iteration hazard over 200 iterations evicts essentially
        // every eligible rank (p(survive) ≈ 0.98^197 ≈ 2%).
        assert!(!a.is_empty());
        for e in a.evictions() {
            assert_ne!(e.rank, 0, "rank 0 is pinned to on-demand");
            assert_eq!(e.evict_at - e.warn_at, SPOT_WARNING_ITERATIONS);
            assert!(e.evict_at < 200);
        }
        // At most one eviction per rank.
        let mut ranks: Vec<_> = a.evictions().iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        let deduped_len = {
            let mut r = ranks.clone();
            r.dedup();
            r.len()
        };
        assert_eq!(ranks.len(), deduped_len);
    }

    #[test]
    fn spot_rate_zero_schedules_nothing() {
        assert!(FaultPlan::spot(16, 1000, 0.0, 7).is_empty());
    }

    #[test]
    fn injector_executes_evictions_like_kills() {
        let detector = FailureDetector::new();
        let injector = FaultInjector::new(FaultPlan::none().evict(2, 12, 15), detector.clone());
        assert!(injector.tick(2, 12).is_ok(), "warning does not kill");
        assert!(injector.tick(2, 14).is_ok());
        let err = injector.tick(2, 15).unwrap_err();
        assert_eq!(err, RuntimeError::RankFailed { rank: 2 });
        assert!(detector.is_failed(2));
    }

    #[test]
    fn injector_kills_at_and_after_the_scheduled_iteration() {
        let detector = FailureDetector::new();
        let injector = FaultInjector::new(FaultPlan::none().kill(1, 10), detector.clone());
        assert!(injector.tick(1, 9).is_ok());
        assert!(!detector.is_failed(1));
        let err = injector.tick(1, 10).unwrap_err();
        assert_eq!(err, RuntimeError::RankFailed { rank: 1 });
        assert!(detector.is_failed(1));
        // Once dead, always dead.
        assert!(injector.tick(1, 11).is_err());
        // Other ranks are unaffected.
        assert!(injector.tick(0, 999).is_ok());
    }
}
