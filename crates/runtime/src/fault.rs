//! Failure injection and fabric-level failure detection.
//!
//! The paper's elastic story (§3.4.2) assumes a perfectly reliable fleet;
//! production pipeline training does not get that luxury.  This module makes
//! the simulated fabric *unreliable on demand*: a [`FaultPlan`] schedules
//! rank deaths at specific training iterations, a [`FaultInjector`] executes
//! them, and a [`FailureDetector`] — shared by every endpoint of a fabric —
//! surfaces the death to the survivors, the way NCCL's async error handling
//! poisons every outstanding operation on a communicator once a peer is
//! gone.
//!
//! The semantics mirror `ncclCommAbort`/`ncclRemoteError`:
//!
//! * the dying rank marks itself failed and stops participating;
//! * any send touching a failed rank returns [`RuntimeError::RankFailed`];
//! * any receive posted on a communicator that *contains* a failed member
//!   fails promptly with [`RuntimeError::RankFailed`] instead of timing out,
//!   even if the rank being waited on is still alive — once a member is
//!   dead, collectives on that communicator can never complete, and
//!   surfacing the error everywhere is what lets every survivor converge to
//!   the recovery path without a coordinator.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::{Result, RuntimeError};
use crate::RankId;

/// Shared registry of failed ranks, owned by the [`crate::Fabric`] and
/// consulted by every endpoint and communicator attached to it.
///
/// Cloning is cheap and shares the underlying set (the detector is the one
/// piece of "control plane" state that survives a rank's death).
#[derive(Debug, Clone, Default)]
pub struct FailureDetector {
    failed: Arc<Mutex<BTreeSet<RankId>>>,
}

impl FailureDetector {
    /// Create a detector with no failed ranks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `rank` as failed.  Idempotent; returns whether the rank was
    /// newly marked.
    pub fn mark_failed(&self, rank: RankId) -> bool {
        self.failed.lock().insert(rank)
    }

    /// Whether `rank` has been marked failed.
    pub fn is_failed(&self, rank: RankId) -> bool {
        self.failed.lock().contains(&rank)
    }

    /// All failed ranks, in ascending order.
    pub fn failed_ranks(&self) -> Vec<RankId> {
        self.failed.lock().iter().copied().collect()
    }

    /// Number of failed ranks.
    pub fn failed_count(&self) -> usize {
        self.failed.lock().len()
    }

    /// The first failed rank among `members`, if any — the check used to
    /// poison operations on a communicator containing a dead member.
    pub fn first_failed_of(&self, members: &[RankId]) -> Option<RankId> {
        let failed = self.failed.lock();
        members.iter().copied().find(|r| failed.contains(r))
    }
}

/// One scheduled rank death.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledKill {
    /// Global rank to kill.
    pub rank: RankId,
    /// Training iteration at which the rank dies (it fails *before* doing
    /// any work for this iteration).
    pub at_iteration: u64,
}

/// A schedule of rank deaths to inject into a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    kills: Vec<ScheduledKill>,
}

impl FaultPlan {
    /// A plan with no failures (the reliable-fabric default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a scheduled death of `rank` at `iteration` (builder-style).
    pub fn kill(mut self, rank: RankId, at_iteration: u64) -> Self {
        self.kills.push(ScheduledKill { rank, at_iteration });
        self
    }

    /// The scheduled kills, in insertion order.
    pub fn kills(&self) -> &[ScheduledKill] {
        &self.kills
    }

    /// Whether the plan schedules any failure at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    /// The iteration at which `rank` is scheduled to die, if any (the
    /// earliest, when several are scheduled).
    pub fn death_of(&self, rank: RankId) -> Option<u64> {
        self.kills
            .iter()
            .filter(|k| k.rank == rank)
            .map(|k| k.at_iteration)
            .min()
    }
}

/// Executes a [`FaultPlan`] against a fabric's [`FailureDetector`].
///
/// Every rank calls [`FaultInjector::tick`] at the top of each iteration;
/// when the plan says this rank dies here, the injector marks it failed in
/// the shared detector and returns [`RuntimeError::RankFailed`] so the rank
/// body can abort, simulating the process crash.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    detector: FailureDetector,
}

impl FaultInjector {
    /// Bind a plan to the detector of the fabric the job runs on.
    pub fn new(plan: FaultPlan, detector: FailureDetector) -> Self {
        FaultInjector { plan, detector }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advance `rank` to `iteration`.  Returns
    /// `Err(RuntimeError::RankFailed)` if the plan kills this rank at (or
    /// before) this iteration; the caller must stop participating.
    pub fn tick(&self, rank: RankId, iteration: u64) -> Result<()> {
        if self.detector.is_failed(rank) {
            return Err(RuntimeError::RankFailed { rank });
        }
        match self.plan.death_of(rank) {
            Some(at) if at <= iteration => {
                self.detector.mark_failed(rank);
                Err(RuntimeError::RankFailed { rank })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_marks_and_reports_failures() {
        let d = FailureDetector::new();
        assert!(!d.is_failed(2));
        assert!(d.mark_failed(2));
        assert!(!d.mark_failed(2), "second mark is idempotent");
        assert!(d.is_failed(2));
        assert_eq!(d.failed_ranks(), vec![2]);
        assert_eq!(d.failed_count(), 1);
        assert_eq!(d.first_failed_of(&[0, 1, 3]), None);
        assert_eq!(d.first_failed_of(&[0, 2, 3]), Some(2));
    }

    #[test]
    fn detector_clones_share_state() {
        let d = FailureDetector::new();
        let clone = d.clone();
        d.mark_failed(7);
        assert!(clone.is_failed(7));
    }

    #[test]
    fn plan_records_and_queries_kills() {
        let plan = FaultPlan::none().kill(3, 120).kill(1, 40).kill(3, 80);
        assert!(!plan.is_empty());
        assert_eq!(plan.kills().len(), 3);
        assert_eq!(plan.death_of(3), Some(80), "earliest death wins");
        assert_eq!(plan.death_of(1), Some(40));
        assert_eq!(plan.death_of(0), None);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn injector_kills_at_and_after_the_scheduled_iteration() {
        let detector = FailureDetector::new();
        let injector = FaultInjector::new(FaultPlan::none().kill(1, 10), detector.clone());
        assert!(injector.tick(1, 9).is_ok());
        assert!(!detector.is_failed(1));
        let err = injector.tick(1, 10).unwrap_err();
        assert_eq!(err, RuntimeError::RankFailed { rank: 1 });
        assert!(detector.is_failed(1));
        // Once dead, always dead.
        assert!(injector.tick(1, 11).is_err());
        // Other ranks are unaffected.
        assert!(injector.tick(0, 999).is_ok());
    }
}
