//! Fabric-wide communication statistics.
//!
//! DynMo's evaluation (Figure 4, right) breaks the load-balancing overhead
//! into profiling, balancing-algorithm, and *layer migration* components.
//! Migration cost is proportional to the number of point-to-point messages
//! and bytes moved between ranks, which this module counts.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// The kinds of collective operations the fabric tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Broadcast from a root rank.
    Broadcast,
    /// Gather to a root rank.
    Gather,
    /// Scatter from a root rank.
    Scatter,
    /// All-gather across the communicator.
    AllGather,
    /// All-reduce across the communicator.
    AllReduce,
    /// All-to-all personalized exchange.
    AllToAll,
    /// Reduce to a root rank.
    Reduce,
    /// Barrier synchronization.
    Barrier,
}

impl CollectiveKind {
    /// All collective kinds, in a stable order used for the counter array.
    pub const ALL: [CollectiveKind; 8] = [
        CollectiveKind::Broadcast,
        CollectiveKind::Gather,
        CollectiveKind::Scatter,
        CollectiveKind::AllGather,
        CollectiveKind::AllReduce,
        CollectiveKind::AllToAll,
        CollectiveKind::Reduce,
        CollectiveKind::Barrier,
    ];

    fn index(self) -> usize {
        match self {
            CollectiveKind::Broadcast => 0,
            CollectiveKind::Gather => 1,
            CollectiveKind::Scatter => 2,
            CollectiveKind::AllGather => 3,
            CollectiveKind::AllReduce => 4,
            CollectiveKind::AllToAll => 5,
            CollectiveKind::Reduce => 6,
            CollectiveKind::Barrier => 7,
        }
    }
}

/// Live atomic counters shared by all ranks of a fabric.
#[derive(Debug, Default)]
pub struct FabricStats {
    p2p_messages: AtomicU64,
    p2p_bytes: AtomicU64,
    collective_calls: [AtomicU64; 8],
}

impl FabricStats {
    /// Create a zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one point-to-point message of `bytes` payload bytes.
    pub fn record_p2p(&self, bytes: usize) {
        self.p2p_messages.fetch_add(1, Ordering::Relaxed);
        self.p2p_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one collective invocation of the given kind (counted once per
    /// participating rank).
    pub fn record_collective(&self, kind: CollectiveKind) {
        self.collective_calls[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Capture a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut collectives = Vec::with_capacity(CollectiveKind::ALL.len());
        for kind in CollectiveKind::ALL {
            collectives.push((
                kind,
                self.collective_calls[kind.index()].load(Ordering::Relaxed),
            ));
        }
        StatsSnapshot {
            p2p_messages: self.p2p_messages.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
            collectives,
        }
    }
}

/// A point-in-time copy of fabric counters, serializable into experiment
/// reports.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of point-to-point messages delivered.
    pub p2p_messages: u64,
    /// Total payload bytes carried by point-to-point messages.
    pub p2p_bytes: u64,
    /// Per-kind collective invocation counts (one entry per rank per call).
    pub collectives: Vec<(CollectiveKind, u64)>,
}

impl StatsSnapshot {
    /// Count of invocations of a specific collective kind.
    pub fn collective_count(&self, kind: CollectiveKind) -> u64 {
        self.collectives
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_counters_accumulate() {
        let stats = FabricStats::new();
        stats.record_p2p(16);
        stats.record_p2p(64);
        let snap = stats.snapshot();
        assert_eq!(snap.p2p_messages, 2);
        assert_eq!(snap.p2p_bytes, 80);
    }

    #[test]
    fn collective_counters_are_per_kind() {
        let stats = FabricStats::new();
        stats.record_collective(CollectiveKind::AllReduce);
        stats.record_collective(CollectiveKind::AllReduce);
        stats.record_collective(CollectiveKind::Barrier);
        let snap = stats.snapshot();
        assert_eq!(snap.collective_count(CollectiveKind::AllReduce), 2);
        assert_eq!(snap.collective_count(CollectiveKind::Barrier), 1);
        assert_eq!(snap.collective_count(CollectiveKind::Gather), 0);
    }

    #[test]
    fn kind_indices_are_unique_and_in_range() {
        let mut seen = std::collections::HashSet::new();
        for kind in CollectiveKind::ALL {
            assert!(kind.index() < CollectiveKind::ALL.len());
            assert!(seen.insert(kind.index()));
        }
    }

    #[test]
    fn snapshot_serializes_round_trip() {
        let stats = FabricStats::new();
        stats.record_p2p(8);
        stats.record_collective(CollectiveKind::Scatter);
        let snap = stats.snapshot();
        // serde round-trip through the derived impls.
        let as_json = serde_json_like(&snap);
        assert!(as_json.contains("p2p_bytes"));
    }

    // A tiny serializer shim so the test does not need serde_json as a
    // dependency of this crate: Debug output is sufficient to check fields.
    fn serde_json_like(snap: &StatsSnapshot) -> String {
        format!("{snap:?}").replace("StatsSnapshot", "p2p_bytes")
    }
}
