//! Launching a simulated multi-rank job ("mpirun in a function call").

use std::sync::Arc;

use parking_lot::Mutex;

use crate::communicator::{Communicator, WORLD_COMM_ID};
use crate::error::{Result, RuntimeError};
use crate::fabric::{Endpoint, Fabric};
use crate::RankId;

/// Per-rank execution context handed to the rank closure by [`launch`].
#[derive(Debug, Clone)]
pub struct RankCtx {
    rank: RankId,
    world: Communicator,
    fabric: Arc<Fabric>,
}

impl RankCtx {
    /// The global rank of this worker (one rank per simulated GPU).
    pub fn rank(&self) -> RankId {
        self.rank
    }

    /// Total number of ranks in the job.
    pub fn world_size(&self) -> usize {
        self.fabric.world_size()
    }

    /// The world communicator containing every rank.
    pub fn world(&self) -> Communicator {
        self.world.clone()
    }

    /// The underlying fabric (for statistics inspection).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }
}

/// Run `body` on `world_size` simulated ranks, each on its own OS thread,
/// and collect the per-rank return values in rank order.
///
/// The closure receives a [`RankCtx`] exposing the rank id and the world
/// communicator.  Panics in any rank are converted into
/// [`RuntimeError::WorkerPanicked`].
pub fn launch<R, F>(world_size: usize, body: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(RankCtx) -> R + Send + Sync,
{
    if world_size == 0 {
        return Err(RuntimeError::InvalidArgument(
            "world_size must be at least 1".to_string(),
        ));
    }
    let (fabric, inboxes) = Fabric::new(world_size);
    launch_with_fabric(fabric, inboxes, body)
}

/// Like [`launch`] but with a caller-provided fabric (e.g. one built via
/// [`Fabric::with_timeout`] for tests that need short deadlock timeouts).
pub fn launch_with_fabric<R, F>(
    fabric: Arc<Fabric>,
    inboxes: Vec<crossbeam::channel::Receiver<crate::fabric::Envelope>>,
    body: F,
) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(RankCtx) -> R + Send + Sync,
{
    let world_size = fabric.world_size();
    if inboxes.len() != world_size {
        return Err(RuntimeError::InvalidArgument(format!(
            "expected {} inboxes, got {}",
            world_size,
            inboxes.len()
        )));
    }

    let body = &body;
    let mut results: Vec<Option<R>> = Vec::with_capacity(world_size);
    for _ in 0..world_size {
        results.push(None);
    }

    let outcome: std::result::Result<Vec<(usize, R)>, usize> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(world_size);
        for (rank, inbox) in inboxes.into_iter().enumerate() {
            let fabric = Arc::clone(&fabric);
            handles.push(scope.spawn(move || {
                let endpoint = Arc::new(Mutex::new(Endpoint::new(
                    rank,
                    inbox,
                    fabric.recv_timeout(),
                    fabric.detector().clone(),
                )));
                let members: Vec<RankId> = (0..fabric.world_size()).collect();
                let world =
                    Communicator::new(Arc::clone(&fabric), endpoint, WORLD_COMM_ID, members, rank);
                let ctx = RankCtx {
                    rank,
                    world,
                    fabric,
                };
                (rank, body(ctx))
            }));
        }
        let mut collected = Vec::with_capacity(world_size);
        let mut first_panic: Option<usize> = None;
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(pair) => collected.push(pair),
                Err(_) => {
                    if first_panic.is_none() {
                        first_panic = Some(rank);
                    }
                }
            }
        }
        match first_panic {
            Some(rank) => Err(rank),
            None => Ok(collected),
        }
    });

    match outcome {
        Ok(pairs) => {
            for (rank, value) in pairs {
                results[rank] = Some(value);
            }
            Ok(results
                .into_iter()
                .map(|v| v.expect("every rank must produce a result"))
                .collect())
        }
        Err(rank) => Err(RuntimeError::WorkerPanicked { rank }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    #[test]
    fn launch_returns_results_in_rank_order() {
        let results = launch(5, |ctx| ctx.rank() * 10).unwrap();
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn launch_rejects_zero_ranks() {
        let err = launch(0, |_ctx| ()).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidArgument(_)));
    }

    #[test]
    fn world_size_is_visible_to_every_rank() {
        let results = launch(3, |ctx| ctx.world_size()).unwrap();
        assert_eq!(results, vec![3, 3, 3]);
    }

    #[test]
    fn ring_exchange_over_world_communicator() {
        // Each rank sends its id to the next rank and receives from the
        // previous one; a classic ring that exercises ordering end-to-end.
        let n = 6;
        let results = launch(n, |ctx| {
            let comm = ctx.world();
            let next = (ctx.rank() + 1) % n;
            let prev = (ctx.rank() + n - 1) % n;
            comm.send(next, 1, Payload::U64(vec![ctx.rank() as u64]))
                .unwrap();
            comm.recv(prev, 1).unwrap().into_u64().unwrap()[0]
        })
        .unwrap();
        for (rank, got) in results.iter().enumerate() {
            assert_eq!(*got as usize, (rank + n - 1) % n);
        }
    }

    #[test]
    fn panicking_rank_is_reported() {
        let err = launch(2, |ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
            ctx.rank()
        })
        .unwrap_err();
        assert_eq!(err, RuntimeError::WorkerPanicked { rank: 1 });
    }

    #[test]
    fn fabric_stats_are_shared_across_ranks() {
        let (fabric, inboxes) = Fabric::new(2);
        let fabric_for_check = Arc::clone(&fabric);
        launch_with_fabric(fabric, inboxes, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                comm.send(1, 2, Payload::F32(vec![0.0; 128])).unwrap();
            } else {
                let _ = comm.recv(0, 2).unwrap();
            }
        })
        .unwrap();
        let snap = fabric_for_check.stats().snapshot();
        assert_eq!(snap.p2p_messages, 1);
        assert_eq!(snap.p2p_bytes, 512);
    }
}
