//! The shared message fabric connecting simulated ranks.
//!
//! The fabric plays the role of the interconnect (NVLink/NVSwitch within a
//! node, InfiniBand across nodes in the paper's testbed): it owns one inbox
//! channel per rank and routes [`Envelope`]s to them.  Delivery is reliable
//! and per-sender ordered, which matches NCCL P2P semantics closely enough
//! for the algorithms reproduced here.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::error::{Result, RuntimeError};
use crate::fault::FailureDetector;
use crate::payload::Payload;
use crate::stats::FabricStats;
use crate::{RankId, Tag};

/// A routed message between two ranks, scoped to a communicator.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Global rank of the sender.
    pub src: RankId,
    /// Global rank of the receiver.
    pub dst: RankId,
    /// Communicator id the message belongs to (so split communicators do
    /// not interfere, mirroring `ncclCommSplit`).
    pub comm: u64,
    /// User or system tag used for matching.
    pub tag: Tag,
    /// The typed payload.
    pub payload: Payload,
}

/// The interconnect shared by all ranks of a simulated job.
#[derive(Debug)]
pub struct Fabric {
    senders: Vec<Sender<Envelope>>,
    stats: FabricStats,
    recv_timeout: Duration,
    detector: FailureDetector,
}

impl Fabric {
    /// Default receive timeout: generous enough for heavily loaded CI
    /// machines, small enough that a deadlocked test fails quickly.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

    /// How often a blocked receive re-checks the failure detector, so a
    /// peer's death surfaces promptly instead of after the full timeout.
    pub(crate) const FAILURE_POLL: Duration = Duration::from_millis(5);

    /// Create a fabric for `world_size` ranks.  Returns the shared fabric and
    /// one receiver (inbox) per rank, in rank order.
    pub fn new(world_size: usize) -> (Arc<Self>, Vec<Receiver<Envelope>>) {
        Self::with_timeout(world_size, Self::DEFAULT_TIMEOUT)
    }

    /// Create a fabric with a custom receive timeout.
    pub fn with_timeout(
        world_size: usize,
        recv_timeout: Duration,
    ) -> (Arc<Self>, Vec<Receiver<Envelope>>) {
        let mut senders = Vec::with_capacity(world_size);
        let mut receivers = Vec::with_capacity(world_size);
        for _ in 0..world_size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            Arc::new(Fabric {
                senders,
                stats: FabricStats::new(),
                recv_timeout,
                detector: FailureDetector::new(),
            }),
            receivers,
        )
    }

    /// Number of ranks attached to the fabric.
    pub fn world_size(&self) -> usize {
        self.senders.len()
    }

    /// The receive timeout used by endpoints of this fabric.
    pub fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    /// Access the shared statistics counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The fabric's failure detector (shared by every endpoint).
    pub fn detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// Route an envelope to its destination rank's inbox.  Fails with
    /// [`RuntimeError::RankFailed`] when either end of the transfer is dead.
    pub fn route(&self, envelope: Envelope) -> Result<()> {
        let dst = envelope.dst;
        let sender = self
            .senders
            .get(dst)
            .ok_or(RuntimeError::UnknownRank(dst))?;
        if self.detector.is_failed(envelope.src) {
            return Err(RuntimeError::RankFailed { rank: envelope.src });
        }
        if self.detector.is_failed(dst) {
            return Err(RuntimeError::RankFailed { rank: dst });
        }
        self.stats.record_p2p(envelope.payload.size_bytes());
        sender
            .send(envelope)
            .map_err(|_| RuntimeError::Disconnected { rank: dst })
    }
}

/// A per-rank mailbox with MPI-style (source, tag, communicator) matching.
///
/// Messages that arrive out of order relative to what the rank is waiting
/// for are parked in `pending` and delivered when a matching receive is
/// posted, which is exactly the unexpected-message queue of an MPI
/// implementation.
#[derive(Debug)]
pub struct Endpoint {
    rank: RankId,
    inbox: Receiver<Envelope>,
    pending: Vec<Envelope>,
    timeout: Duration,
    detector: FailureDetector,
}

impl Endpoint {
    /// Build the endpoint for `rank` from its fabric inbox and the fabric's
    /// shared failure detector.
    pub fn new(
        rank: RankId,
        inbox: Receiver<Envelope>,
        timeout: Duration,
        detector: FailureDetector,
    ) -> Self {
        Endpoint {
            rank,
            inbox,
            pending: Vec::new(),
            timeout,
            detector,
        }
    }

    /// Global rank this endpoint belongs to.
    pub fn rank(&self) -> RankId {
        self.rank
    }

    /// Number of messages parked in the unexpected-message queue.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Receive the next message matching `(comm, src, tag)`.
    ///
    /// `src == None` matches any source (MPI_ANY_SOURCE).  The call blocks up
    /// to the fabric timeout and then fails with [`RuntimeError::Timeout`].
    ///
    /// `members` is the membership of the communicator the receive is posted
    /// on: if any member is (or becomes) marked failed while the receive is
    /// blocked, the call fails promptly with [`RuntimeError::RankFailed`] —
    /// a collective on that communicator can never complete, and poisoning
    /// every pending operation is how the failure reaches all survivors.
    // Deadline bookkeeping is a sanctioned wall-clock use (see clippy.toml)
    // — the reading gates only the timeout error path, never payload data.
    #[allow(clippy::disallowed_methods)]
    pub fn recv_match(
        &mut self,
        comm: u64,
        members: &[RankId],
        src: Option<RankId>,
        tag: Tag,
    ) -> Result<Envelope> {
        // First, look in the unexpected-message queue.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.comm == comm && e.tag == tag && src.is_none_or(|s| e.src == s))
        {
            return Ok(self.pending.remove(pos));
        }
        // Then drain the inbox until a match arrives, a member dies, or we
        // time out.  The wait is sliced so the failure detector is observed
        // within FAILURE_POLL even while blocked.
        // LINT: allow(wall-clock) — receive-timeout deadline only; never
        // reaches trajectory data or artifacts.
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            if let Some(failed) = self.detector.first_failed_of(members) {
                return Err(RuntimeError::RankFailed { rank: failed });
            }
            // LINT: allow(wall-clock) — deadline bookkeeping only.
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(RuntimeError::Timeout {
                    rank: self.rank,
                    src,
                    tag,
                });
            }
            let slice = remaining.min(Fabric::FAILURE_POLL);
            match self.inbox.recv_timeout(slice) {
                Ok(envelope) => {
                    let matches = envelope.comm == comm
                        && envelope.tag == tag
                        && src.is_none_or(|s| envelope.src == s);
                    if matches {
                        return Ok(envelope);
                    }
                    self.pending.push(envelope);
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // Just a poll slice elapsing; loop to re-check the
                    // detector and the overall deadline.
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(RuntimeError::Disconnected { rank: self.rank });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(src: RankId, dst: RankId, comm: u64, tag: Tag, payload: Payload) -> Envelope {
        Envelope {
            src,
            dst,
            comm,
            tag,
            payload,
        }
    }

    #[test]
    fn route_delivers_to_destination_inbox() {
        let (fabric, mut inboxes) = Fabric::new(2);
        fabric
            .route(envelope(0, 1, 0, 7, Payload::F32(vec![1.0, 2.0])))
            .unwrap();
        let rx1 = inboxes.remove(1);
        let got = rx1.recv().unwrap();
        assert_eq!(got.src, 0);
        assert_eq!(got.tag, 7);
        assert_eq!(got.payload, Payload::F32(vec![1.0, 2.0]));
        // Stats counted one message of 8 bytes.
        let snap = fabric.stats().snapshot();
        assert_eq!(snap.p2p_messages, 1);
        assert_eq!(snap.p2p_bytes, 8);
    }

    #[test]
    fn route_to_unknown_rank_fails() {
        let (fabric, _inboxes) = Fabric::new(2);
        let err = fabric
            .route(envelope(0, 5, 0, 0, Payload::Empty))
            .unwrap_err();
        assert_eq!(err, RuntimeError::UnknownRank(5));
    }

    #[test]
    fn endpoint_matches_by_tag_and_parks_unexpected() {
        let (fabric, mut inboxes) = Fabric::with_timeout(2, Duration::from_millis(200));
        let rx = inboxes.remove(1);
        let mut ep = Endpoint::new(1, rx, fabric.recv_timeout(), fabric.detector().clone());

        // Send two messages with different tags; receive the second first.
        fabric
            .route(envelope(0, 1, 0, 1, Payload::U32(vec![11])))
            .unwrap();
        fabric
            .route(envelope(0, 1, 0, 2, Payload::U32(vec![22])))
            .unwrap();

        let second = ep.recv_match(0, &[0, 1], Some(0), 2).unwrap();
        assert_eq!(second.payload, Payload::U32(vec![22]));
        assert_eq!(ep.pending_len(), 1);

        let first = ep.recv_match(0, &[0, 1], Some(0), 1).unwrap();
        assert_eq!(first.payload, Payload::U32(vec![11]));
        assert_eq!(ep.pending_len(), 0);
    }

    #[test]
    fn endpoint_filters_by_communicator() {
        let (fabric, mut inboxes) = Fabric::with_timeout(2, Duration::from_millis(200));
        let rx = inboxes.remove(1);
        let mut ep = Endpoint::new(1, rx, fabric.recv_timeout(), fabric.detector().clone());

        fabric
            .route(envelope(0, 1, 99, 5, Payload::U32(vec![1])))
            .unwrap();
        fabric
            .route(envelope(0, 1, 7, 5, Payload::U32(vec![2])))
            .unwrap();

        let got = ep.recv_match(7, &[0, 1], Some(0), 5).unwrap();
        assert_eq!(got.payload, Payload::U32(vec![2]));
        // Message on communicator 99 is parked, not dropped.
        assert_eq!(ep.pending_len(), 1);
    }

    #[test]
    fn endpoint_any_source_matches_first_arrival() {
        let (fabric, mut inboxes) = Fabric::with_timeout(3, Duration::from_millis(200));
        let rx = inboxes.remove(2);
        let mut ep = Endpoint::new(2, rx, fabric.recv_timeout(), fabric.detector().clone());
        fabric
            .route(envelope(1, 2, 0, 4, Payload::U64(vec![10])))
            .unwrap();
        let got = ep.recv_match(0, &[0, 1, 2], None, 4).unwrap();
        assert_eq!(got.src, 1);
    }

    #[test]
    fn recv_times_out_when_no_message_arrives() {
        let (fabric, mut inboxes) = Fabric::with_timeout(1, Duration::from_millis(50));
        let rx = inboxes.remove(0);
        let mut ep = Endpoint::new(0, rx, fabric.recv_timeout(), fabric.detector().clone());
        let err = ep.recv_match(0, &[0], Some(0), 3).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Timeout {
                rank: 0,
                tag: 3,
                ..
            }
        ));
    }
}
