//! Message payloads exchanged between simulated ranks.
//!
//! The paper moves several kinds of data between GPUs: layer weights and
//! optimizer state during migration (f32), CSR row offsets and column
//! indices after pruning (u32/u64), top-k magnitude values during global
//! pruning (f32) and keep-indices (u64), plus small control messages.  The
//! [`Payload`] enum covers these cases with typed vectors and a raw byte
//! variant for anything serialized externally.

use bytes::Bytes;

use crate::error::{Result, RuntimeError};

/// Typed payload carried by a point-to-point message or a collective.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Empty payload (barriers, acknowledgements).
    Empty,
    /// A vector of `f32` values (weights, gradients, timing samples).
    F32(Vec<f32>),
    /// A vector of `f64` values (high-precision reductions).
    F64(Vec<f64>),
    /// A vector of `u32` values (CSR column indices, small counts).
    U32(Vec<u32>),
    /// A vector of `u64` values (global parameter indices, sizes).
    U64(Vec<u64>),
    /// Raw bytes (externally serialized structures).
    Bytes(Bytes),
}

impl Payload {
    /// Number of logical elements in the payload.
    pub fn len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F32(v) => v.len(),
            Payload::F64(v) => v.len(),
            Payload::U32(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::Bytes(b) => b.len(),
        }
    }

    /// Whether the payload holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the payload in bytes, used by the fabric statistics to model
    /// communication volume (the quantity that matters for migration cost).
    pub fn size_bytes(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F32(v) => v.len() * 4,
            Payload::F64(v) => v.len() * 8,
            Payload::U32(v) => v.len() * 4,
            Payload::U64(v) => v.len() * 8,
            Payload::Bytes(b) => b.len(),
        }
    }

    /// Extract an `f32` vector, or fail with [`RuntimeError::PayloadMismatch`].
    pub fn into_f32(self) -> Result<Vec<f32>> {
        match self {
            Payload::F32(v) => Ok(v),
            other => Err(RuntimeError::PayloadMismatch(format!(
                "expected F32, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Extract an `f64` vector, or fail with [`RuntimeError::PayloadMismatch`].
    pub fn into_f64(self) -> Result<Vec<f64>> {
        match self {
            Payload::F64(v) => Ok(v),
            other => Err(RuntimeError::PayloadMismatch(format!(
                "expected F64, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Extract a `u32` vector, or fail with [`RuntimeError::PayloadMismatch`].
    pub fn into_u32(self) -> Result<Vec<u32>> {
        match self {
            Payload::U32(v) => Ok(v),
            other => Err(RuntimeError::PayloadMismatch(format!(
                "expected U32, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Extract a `u64` vector, or fail with [`RuntimeError::PayloadMismatch`].
    pub fn into_u64(self) -> Result<Vec<u64>> {
        match self {
            Payload::U64(v) => Ok(v),
            other => Err(RuntimeError::PayloadMismatch(format!(
                "expected U64, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Extract raw bytes, or fail with [`RuntimeError::PayloadMismatch`].
    pub fn into_bytes(self) -> Result<Bytes> {
        match self {
            Payload::Bytes(b) => Ok(b),
            other => Err(RuntimeError::PayloadMismatch(format!(
                "expected Bytes, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Short type name used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::Empty => "Empty",
            Payload::F32(_) => "F32",
            Payload::F64(_) => "F64",
            Payload::U32(_) => "U32",
            Payload::U64(_) => "U64",
            Payload::Bytes(_) => "Bytes",
        }
    }
}

impl From<Vec<f32>> for Payload {
    fn from(v: Vec<f32>) -> Self {
        Payload::F32(v)
    }
}

impl From<Vec<f64>> for Payload {
    fn from(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }
}

impl From<Vec<u32>> for Payload {
    fn from(v: Vec<u32>) -> Self {
        Payload::U32(v)
    }
}

impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload::Bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_size_bytes_track_element_width() {
        assert_eq!(Payload::Empty.len(), 0);
        assert_eq!(Payload::Empty.size_bytes(), 0);
        assert!(Payload::Empty.is_empty());

        let f = Payload::F32(vec![1.0, 2.0, 3.0]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.size_bytes(), 12);

        let d = Payload::F64(vec![1.0, 2.0]);
        assert_eq!(d.size_bytes(), 16);

        let u = Payload::U64(vec![7, 8, 9, 10]);
        assert_eq!(u.size_bytes(), 32);

        let b = Payload::Bytes(Bytes::from_static(b"abcde"));
        assert_eq!(b.len(), 5);
        assert_eq!(b.size_bytes(), 5);
    }

    #[test]
    fn typed_extraction_succeeds_on_matching_variant() {
        assert_eq!(Payload::from(vec![1.0f32]).into_f32().unwrap(), vec![1.0]);
        assert_eq!(Payload::from(vec![1.0f64]).into_f64().unwrap(), vec![1.0]);
        assert_eq!(Payload::from(vec![1u32]).into_u32().unwrap(), vec![1]);
        assert_eq!(Payload::from(vec![1u64]).into_u64().unwrap(), vec![1]);
        let b = Bytes::from_static(b"xy");
        assert_eq!(Payload::from(b.clone()).into_bytes().unwrap(), b);
    }

    #[test]
    fn typed_extraction_fails_on_mismatch() {
        let err = Payload::F32(vec![1.0]).into_u32().unwrap_err();
        match err {
            RuntimeError::PayloadMismatch(msg) => {
                assert!(msg.contains("expected U32"));
                assert!(msg.contains("F32"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            Payload::Empty.kind_name(),
            Payload::F32(vec![]).kind_name(),
            Payload::F64(vec![]).kind_name(),
            Payload::U32(vec![]).kind_name(),
            Payload::U64(vec![]).kind_name(),
            Payload::Bytes(Bytes::new()).kind_name(),
        ];
        let unique: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
