//! Communicators: groups of ranks with point-to-point messaging and
//! `ncclCommSplit`-style splitting.
//!
//! DynMo's re-packing (paper §3.4.2) relies on splitting the world
//! communicator into an *active* sub-communicator (ranks that still hold
//! layers) and an *idle* one (ranks released back to the job manager).  The
//! [`Communicator::split`] and [`Communicator::split_subset`] methods
//! reproduce that behaviour: messages on different communicators never mix,
//! and ranks excluded from the active communicator simply stop participating.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Result, RuntimeError};
use crate::fabric::{Endpoint, Envelope, Fabric};
use crate::payload::Payload;
use crate::{RankId, Tag};

/// Tags at or above this value are reserved for internal collective
/// plumbing; user code must use tags below it.
pub const SYSTEM_TAG_BASE: Tag = 0x8000_0000;

/// The id of the world communicator created by [`crate::launch`].
pub const WORLD_COMM_ID: u64 = 1;

/// A group of ranks that can exchange messages, analogous to an MPI or NCCL
/// communicator.
#[derive(Debug, Clone)]
pub struct Communicator {
    fabric: Arc<Fabric>,
    endpoint: Arc<Mutex<Endpoint>>,
    id: u64,
    /// Global ranks of the members, indexed by local rank.
    members: Arc<Vec<RankId>>,
    /// This rank's index within `members`.
    local_rank: usize,
    /// Monotonic counter making ids of successive splits distinct.  Shared
    /// between clones of the same communicator on the same rank so that
    /// clones stay in lock-step.
    split_seq: Arc<AtomicU64>,
}

impl Communicator {
    /// Construct a communicator directly.  Most users obtain communicators
    /// from [`crate::launch`] (the world) or from [`Communicator::split`].
    pub fn new(
        fabric: Arc<Fabric>,
        endpoint: Arc<Mutex<Endpoint>>,
        id: u64,
        members: Vec<RankId>,
        local_rank: usize,
    ) -> Self {
        debug_assert!(local_rank < members.len());
        Communicator {
            fabric,
            endpoint,
            id,
            members: Arc::new(members),
            local_rank,
            split_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// This rank's index within the communicator (0-based).
    pub fn rank(&self) -> usize {
        self.local_rank
    }

    /// Number of member ranks.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The communicator's id (unique within a fabric for a given split
    /// sequence).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The global rank backing a local rank.
    pub fn global_rank(&self, local: usize) -> Result<RankId> {
        self.members
            .get(local)
            .copied()
            .ok_or(RuntimeError::UnknownRank(local))
    }

    /// Global rank of this process.
    pub fn my_global_rank(&self) -> RankId {
        self.members[self.local_rank]
    }

    /// All member global ranks, in local-rank order.
    pub fn members(&self) -> &[RankId] {
        &self.members
    }

    /// Access the fabric this communicator lives on.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Send `payload` to local rank `dst` with `tag`.
    pub fn send(&self, dst: usize, tag: Tag, payload: Payload) -> Result<()> {
        if tag >= SYSTEM_TAG_BASE {
            return Err(RuntimeError::InvalidArgument(format!(
                "user tag {tag:#x} is in the reserved system range"
            )));
        }
        self.send_internal(dst, tag, payload)
    }

    pub(crate) fn send_internal(&self, dst: usize, tag: Tag, payload: Payload) -> Result<()> {
        let dst_global = self.global_rank(dst)?;
        self.fabric.route(Envelope {
            src: self.my_global_rank(),
            dst: dst_global,
            comm: self.id,
            tag,
            payload,
        })
    }

    /// Receive a message from local rank `src` with `tag`.
    pub fn recv(&self, src: usize, tag: Tag) -> Result<Payload> {
        if tag >= SYSTEM_TAG_BASE {
            return Err(RuntimeError::InvalidArgument(format!(
                "user tag {tag:#x} is in the reserved system range"
            )));
        }
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal(&self, src: usize, tag: Tag) -> Result<Payload> {
        let src_global = self.global_rank(src)?;
        let envelope =
            self.endpoint
                .lock()
                .recv_match(self.id, &self.members, Some(src_global), tag)?;
        Ok(envelope.payload)
    }

    /// Receive a message with `tag` from any member rank, returning the
    /// sender's local rank alongside the payload.
    pub fn recv_any(&self, tag: Tag) -> Result<(usize, Payload)> {
        let envelope = self
            .endpoint
            .lock()
            .recv_match(self.id, &self.members, None, tag)?;
        let local = self
            .members
            .iter()
            .position(|&g| g == envelope.src)
            .ok_or(RuntimeError::UnknownRank(envelope.src))?;
        Ok((local, envelope.payload))
    }

    /// Split the communicator by `color`: ranks sharing a color form a new
    /// communicator, ordered by `key` then by parent rank.  Every member of
    /// the parent must call `split` (collectively), mirroring
    /// `ncclCommSplit`/`MPI_Comm_split`.  Returns `None` when `color` is
    /// `None` (the rank opts out, like `NCCL_SPLIT_NOCOLOR`).
    pub fn split(&self, color: Option<u64>, key: u64) -> Result<Option<Communicator>> {
        // Exchange (color, key) from every rank via an internal allgather.
        let encoded = vec![
            color.map(|c| c + 1).unwrap_or(0), // 0 encodes "no color"
            key,
        ];
        let all = self.allgather_u64_internal(&encoded)?;
        let seq = self.split_seq.fetch_add(1, Ordering::SeqCst);

        let my_color = match color {
            Some(c) => c,
            None => return Ok(None),
        };

        // Collect members with the same color, sorted by (key, parent rank).
        let mut group: Vec<(u64, usize)> = Vec::new();
        for (parent_rank, entry) in all.iter().enumerate() {
            let c = entry[0];
            let k = entry[1];
            if c == my_color + 1 {
                group.push((k, parent_rank));
            }
        }
        group.sort_unstable();
        let members: Vec<RankId> = group
            .iter()
            .map(|&(_, parent_rank)| self.members[parent_rank])
            .collect();
        let local_rank = group
            .iter()
            .position(|&(_, parent_rank)| parent_rank == self.local_rank)
            .expect("calling rank must be part of its own color group");

        let id = derive_comm_id(self.id, seq, my_color);
        Ok(Some(Communicator {
            fabric: Arc::clone(&self.fabric),
            endpoint: Arc::clone(&self.endpoint),
            id,
            members: Arc::new(members),
            local_rank,
            split_seq: Arc::new(AtomicU64::new(0)),
        }))
    }

    /// Convenience wrapper over [`Communicator::split`]: ranks listed in
    /// `active` (as parent-local ranks) join the new communicator in the
    /// given order; everyone else opts out.  All parent members must call
    /// this with the same `active` list.
    pub fn split_subset(&self, active: &[usize]) -> Result<Option<Communicator>> {
        let position = active.iter().position(|&r| r == self.local_rank);
        let color = position.map(|_| 1u64);
        let key = position.unwrap_or(0) as u64;
        self.split(color, key)
    }

    /// Global ranks of the members that have *not* been marked failed, in
    /// local-rank order.
    pub fn surviving_members(&self) -> Vec<RankId> {
        let detector = self.fabric.detector();
        self.members
            .iter()
            .copied()
            .filter(|&g| !detector.is_failed(g))
            .collect()
    }

    /// Whether any member of this communicator has been marked failed (in
    /// which case collectives on it are poisoned and it must be rebuilt).
    pub fn has_failed_member(&self) -> bool {
        self.fabric
            .detector()
            .first_failed_of(&self.members)
            .is_some()
    }

    /// Re-form the communicator over the surviving members after a failure —
    /// the fault-tolerant sibling of [`Communicator::split_subset`]
    /// (`ncclCommShrink` semantics).
    ///
    /// A collective split is impossible once a member is dead (it cannot
    /// participate), so the new communicator is derived *without
    /// communication*: every survivor reads the same failed set from the
    /// fabric's failure detector and computes the same member list and
    /// communicator id.  Returns `None` when the calling rank is itself
    /// marked failed; returns a clone of `self` when no member has failed.
    pub fn rebuild_survivors(&self) -> Result<Option<Communicator>> {
        let survivors = self.surviving_members();
        if survivors.len() == self.members.len() {
            return Ok(Some(self.clone()));
        }
        // A calling rank that is itself marked failed is not a survivor
        // (and an alive caller guarantees the survivor set is non-empty).
        let me = self.my_global_rank();
        let Some(local_rank) = survivors.iter().position(|&g| g == me) else {
            return Ok(None);
        };
        // Mix the survivor set into the id so successive failures (and
        // rebuilds) of the same parent never reuse a communicator id.
        let mut set_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &g in &survivors {
            set_hash ^= g as u64;
            set_hash = set_hash.wrapping_mul(0x100_0000_01b3);
        }
        let id = derive_comm_id(self.id, set_hash, survivors.len() as u64);
        Ok(Some(Communicator {
            fabric: Arc::clone(&self.fabric),
            endpoint: Arc::clone(&self.endpoint),
            id,
            members: Arc::new(survivors),
            local_rank,
            split_seq: Arc::new(AtomicU64::new(0)),
        }))
    }

    /// Internal allgather of a fixed-size `u64` vector, used by `split` and
    /// the collectives module.  Uses the system tag space.
    pub(crate) fn allgather_u64_internal(&self, value: &[u64]) -> Result<Vec<Vec<u64>>> {
        let tag = SYSTEM_TAG_BASE + 1;
        let n = self.size();
        // Gather to rank 0 then broadcast: simple and adequate for a
        // simulation fabric.
        if self.local_rank == 0 {
            let mut all = vec![Vec::new(); n];
            all[0] = value.to_vec();
            for _ in 1..n {
                let envelope =
                    self.endpoint
                        .lock()
                        .recv_match(self.id, &self.members, None, tag)?;
                let src_local = self
                    .members
                    .iter()
                    .position(|&g| g == envelope.src)
                    .ok_or(RuntimeError::UnknownRank(envelope.src))?;
                all[src_local] = envelope.payload.into_u64()?;
            }
            // Flatten and broadcast.
            let lengths: Vec<u64> = all.iter().map(|v| v.len() as u64).collect();
            let flat: Vec<u64> = all.iter().flatten().copied().collect();
            for dst in 1..n {
                self.send_internal(dst, tag + 1, Payload::U64(lengths.clone()))?;
                self.send_internal(dst, tag + 2, Payload::U64(flat.clone()))?;
            }
            Ok(all)
        } else {
            self.send_internal(0, tag, Payload::U64(value.to_vec()))?;
            let lengths = self.recv_internal(0, tag + 1)?.into_u64()?;
            let flat = self.recv_internal(0, tag + 2)?.into_u64()?;
            let mut all = Vec::with_capacity(n);
            let mut offset = 0usize;
            for len in lengths {
                let len = len as usize;
                all.push(flat[offset..offset + len].to_vec());
                offset += len;
            }
            Ok(all)
        }
    }
}

/// Derive a deterministic communicator id from the parent id, the split
/// sequence number and the color.  All members compute the same value
/// without extra coordination.
fn derive_comm_id(parent: u64, seq: u64, color: u64) -> u64 {
    // A simple SplitMix64-style mix; collisions across live communicators
    // are practically impossible for the fleet sizes simulated here.
    let mut x = parent
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(color.wrapping_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x | 0x8000_0000_0000_0000 // never collide with the world id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launcher::launch;

    #[test]
    fn user_tags_in_system_range_are_rejected() {
        let results = launch(2, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 0 {
                let err = comm.send(1, SYSTEM_TAG_BASE, Payload::Empty).unwrap_err();
                matches!(err, RuntimeError::InvalidArgument(_))
            } else {
                let err = comm.recv(0, SYSTEM_TAG_BASE + 4).unwrap_err();
                matches!(err, RuntimeError::InvalidArgument(_))
            }
        })
        .unwrap();
        assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn p2p_send_recv_between_ranks() {
        let results = launch(3, |ctx| {
            let comm = ctx.world();
            match ctx.rank() {
                0 => {
                    comm.send(2, 5, Payload::F32(vec![1.5, 2.5])).unwrap();
                    Vec::new()
                }
                2 => comm.recv(0, 5).unwrap().into_f32().unwrap(),
                _ => Vec::new(),
            }
        })
        .unwrap();
        assert_eq!(results[2], vec![1.5, 2.5]);
    }

    #[test]
    fn recv_any_reports_sender_local_rank() {
        let results = launch(3, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 1 {
                comm.send(0, 9, Payload::U32(vec![42])).unwrap();
                None
            } else if ctx.rank() == 0 {
                let (src, payload) = comm.recv_any(9).unwrap();
                Some((src, payload.into_u32().unwrap()[0]))
            } else {
                None
            }
        })
        .unwrap();
        assert_eq!(results[0], Some((1, 42)));
    }

    #[test]
    fn split_subset_builds_disjoint_active_group() {
        // 4 ranks; re-pack onto ranks {0, 2}; the others become idle.
        let results = launch(4, |ctx| {
            let comm = ctx.world();
            let active = comm.split_subset(&[0, 2]).unwrap();
            match active {
                Some(sub) => {
                    // Active ranks exchange a message on the new communicator.
                    let peer = 1 - sub.rank();
                    sub.send(peer, 3, Payload::U32(vec![sub.rank() as u32]))
                        .unwrap();
                    let got = sub.recv(peer, 3).unwrap().into_u32().unwrap()[0];
                    Some((sub.size(), sub.rank(), got))
                }
                None => None,
            }
        })
        .unwrap();
        assert_eq!(results[0], Some((2, 0, 1)));
        assert_eq!(results[2], Some((2, 1, 0)));
        assert_eq!(results[1], None);
        assert_eq!(results[3], None);
    }

    #[test]
    fn split_by_color_orders_by_key() {
        let results = launch(4, |ctx| {
            let comm = ctx.world();
            // Two groups: even ranks and odd ranks; key reverses order.
            let color = Some((ctx.rank() % 2) as u64);
            let key = (10 - ctx.rank()) as u64;
            let sub = comm.split(color, key).unwrap().unwrap();
            (sub.size(), sub.rank(), sub.my_global_rank())
        })
        .unwrap();
        // Even group = global {0, 2}; key 10, 8 → rank 2 first.
        assert_eq!(results[2], (2, 0, 2));
        assert_eq!(results[0], (2, 1, 0));
        // Odd group = global {1, 3}; key 9, 7 → rank 3 first.
        assert_eq!(results[3], (2, 0, 3));
        assert_eq!(results[1], (2, 1, 1));
    }

    #[test]
    fn messages_do_not_cross_communicators() {
        let results = launch(2, |ctx| {
            let comm = ctx.world();
            let sub = comm.split_subset(&[0, 1]).unwrap().unwrap();
            if ctx.rank() == 0 {
                // Send on the sub-communicator only.
                sub.send(1, 7, Payload::U32(vec![77])).unwrap();
                0
            } else {
                // A recv on the *world* communicator for the same tag must
                // time out (message was scoped to the sub-communicator)...
                // use the sub communicator to actually receive it first so
                // the test terminates quickly.

                sub.recv(0, 7).unwrap().into_u32().unwrap()[0]
            }
        })
        .unwrap();
        assert_eq!(results[1], 77);
    }

    #[test]
    fn send_touching_a_failed_rank_errors() {
        let results = launch(3, |ctx| {
            let comm = ctx.world();
            comm.barrier().unwrap();
            if ctx.rank() == 0 {
                ctx.fabric().detector().mark_failed(2);
                let err = comm.send(2, 4, Payload::Empty).unwrap_err();
                matches!(err, RuntimeError::RankFailed { rank: 2 })
            } else {
                true
            }
        })
        .unwrap();
        assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn collectives_on_a_poisoned_communicator_fail_then_survivors_rebuild() {
        let results = launch(3, |ctx| {
            let comm = ctx.world();
            if ctx.rank() == 2 {
                // Simulated crash: mark failed and stop participating.
                ctx.fabric().detector().mark_failed(2);
                return None;
            }
            // The world collective can never complete once rank 2 is dead;
            // both survivors must see RankFailed promptly (not a timeout).
            let err = comm.allreduce_sum_f32(&[1.0]).unwrap_err();
            assert_eq!(err, RuntimeError::RankFailed { rank: 2 });
            assert!(comm.has_failed_member());
            assert_eq!(comm.surviving_members(), vec![0, 1]);
            // Rebuild over the survivors and finish the collective there.
            let rebuilt = comm.rebuild_survivors().unwrap().unwrap();
            assert_eq!(rebuilt.size(), 2);
            let sum = rebuilt.allreduce_sum_f32(&[1.0]).unwrap();
            Some((rebuilt.rank(), sum[0] as usize))
        })
        .unwrap();
        assert_eq!(results[0], Some((0, 2)));
        assert_eq!(results[1], Some((1, 2)));
        assert_eq!(results[2], None);
    }

    #[test]
    fn rebuild_without_failures_is_an_identity() {
        let results = launch(2, |ctx| {
            let comm = ctx.world();
            let rebuilt = comm.rebuild_survivors().unwrap().unwrap();
            (rebuilt.id() == comm.id(), rebuilt.size())
        })
        .unwrap();
        assert_eq!(results, vec![(true, 2), (true, 2)]);
    }

    #[test]
    fn rebuild_on_the_failed_rank_returns_none() {
        let results = launch(2, |ctx| {
            if ctx.rank() == 1 {
                ctx.fabric().detector().mark_failed(1);
                ctx.world().rebuild_survivors().unwrap().is_none()
            } else {
                // Wait for the mark so the rebuild below observes it.
                while !ctx.fabric().detector().is_failed(1) {
                    std::thread::yield_now();
                }
                let rebuilt = ctx.world().rebuild_survivors().unwrap().unwrap();
                rebuilt.size() == 1 && rebuilt.rank() == 0
            }
        })
        .unwrap();
        assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn derive_comm_id_is_deterministic_and_distinct() {
        let a = derive_comm_id(1, 0, 1);
        let b = derive_comm_id(1, 0, 1);
        let c = derive_comm_id(1, 1, 1);
        let d = derive_comm_id(1, 0, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, WORLD_COMM_ID);
    }
}
