//! Static partitioning baselines: Megatron-LM and DeepSpeed.
//!
//! "Production distributed training frameworks typically apply static load
//! balancing at the start of training and maintain the same distribution
//! throughout.  Megatron-LM evenly splits transformer layers across
//! accelerators.  DeepSpeed offers three partitioning strategies: uniform
//! (equal number of layers), param (equal number of parameters), and regex
//! (grouping layers by name patterns)."  (paper §1)
//!
//! Both are exposed as [`LoadBalancer`] implementations (so they can be
//! plugged into the same controller machinery as DynMo's balancers) and as
//! one-shot initial-assignment helpers for the static-baseline trainer runs.

use dynmo_core::balancer::partition::partition_balanced;
use dynmo_core::balancer::{BalanceObjective, BalanceOutcome, BalanceRequest, LoadBalancer};
use dynmo_core::controller::{RebalanceController, RebalancePolicy};
use dynmo_model::Model;
use dynmo_pipeline::StageAssignment;
use serde::{Deserialize, Serialize};

/// Megatron-LM's static policy: an equal number of layers per stage,
/// regardless of their cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct MegatronUniformBalancer;

impl MegatronUniformBalancer {
    /// Create the balancer.
    pub fn new() -> Self {
        MegatronUniformBalancer
    }
}

impl LoadBalancer for MegatronUniformBalancer {
    fn name(&self) -> String {
        "static-megatron".to_string()
    }

    fn rebalance(&self, request: &BalanceRequest<'_>) -> BalanceOutcome {
        let assignment = StageAssignment::uniform(request.loads.len(), request.num_stages);
        let bottleneck = assignment
            .counts()
            .iter()
            .scan(0usize, |offset, &count| {
                let sum: f64 = (*offset..*offset + count).map(|l| request.weight(l)).sum();
                *offset += count;
                Some(sum)
            })
            .fold(0.0, f64::max);
        BalanceOutcome {
            assignment,
            rounds: 1,
            bottleneck,
        }
    }
}

/// The three partitioning methods of DeepSpeed's `PipelineModule`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeepSpeedMethod {
    /// `uniform`: equal number of layers per stage.
    Uniform,
    /// `parameters`: equal number of parameters per stage.
    Parameters,
    /// `regex`: distribute only the layers whose name contains the pattern
    /// (e.g. `transformer`), pinning the rest to the nearest such stage.
    Regex(String),
}

/// DeepSpeed's static partitioner.
#[derive(Debug, Clone)]
pub struct DeepSpeedBalancer {
    method: DeepSpeedMethod,
}

impl DeepSpeedBalancer {
    /// Create a balancer using the given partitioning method.
    pub fn new(method: DeepSpeedMethod) -> Self {
        DeepSpeedBalancer { method }
    }

    /// The method in use.
    pub fn method(&self) -> &DeepSpeedMethod {
        &self.method
    }
}

impl LoadBalancer for DeepSpeedBalancer {
    fn name(&self) -> String {
        match &self.method {
            DeepSpeedMethod::Uniform => "static-deepspeed-uniform".to_string(),
            DeepSpeedMethod::Parameters => "static-deepspeed-param".to_string(),
            DeepSpeedMethod::Regex(p) => format!("static-deepspeed-regex({p})"),
        }
    }

    fn rebalance(&self, request: &BalanceRequest<'_>) -> BalanceOutcome {
        let counts = match &self.method {
            DeepSpeedMethod::Uniform => {
                return MegatronUniformBalancer::new().rebalance(request);
            }
            DeepSpeedMethod::Parameters => {
                let weights: Vec<f64> =
                    request.loads.iter().map(|l| l.param_count as f64).collect();
                partition_balanced(&weights, request.num_stages)
            }
            DeepSpeedMethod::Regex(_) => {
                // The regex method balances the *matching* layers uniformly;
                // without layer names in the load vector the closest faithful
                // behaviour is a uniform split of all layers, which is what
                // DeepSpeed produces when every transformer layer matches.
                return MegatronUniformBalancer::new().rebalance(request);
            }
        };
        let assignment = StageAssignment::from_counts(&counts);
        let bottleneck = assignment
            .counts()
            .iter()
            .scan(0usize, |offset, &count| {
                let sum: f64 = (*offset..*offset + count).map(|l| request.weight(l)).sum();
                *offset += count;
                Some(sum)
            })
            .fold(0.0, f64::max);
        BalanceOutcome {
            assignment,
            rounds: 1,
            bottleneck,
        }
    }
}

/// The initial assignment Megatron-LM would use for `model` on
/// `num_stages` pipeline stages: the *transformer* layers are distributed
/// evenly, the embedding rides with the first stage and the LM head with the
/// last stage (Megatron's standard placement).
pub fn megatron_initial_assignment(model: &Model, num_stages: usize) -> StageAssignment {
    let transformer = model.transformer_layer_ids();
    if transformer.is_empty() {
        return StageAssignment::uniform(model.num_layers(), num_stages);
    }
    let body = StageAssignment::uniform(transformer.len(), num_stages);
    let mut layer_to_stage = vec![0usize; model.num_layers()];
    for (pos, &layer) in transformer.iter().enumerate() {
        layer_to_stage[layer] = body.stage_of(pos);
    }
    // Embedding (everything before the first transformer layer) goes to the
    // first stage; the head (everything after the last) to the last stage
    // actually holding layers.
    let first = *transformer.first().unwrap();
    let last = *transformer.last().unwrap();
    for layer in 0..first {
        layer_to_stage[layer] = layer_to_stage[first];
    }
    for layer in (last + 1)..model.num_layers() {
        layer_to_stage[layer] = layer_to_stage[last];
    }
    StageAssignment::new(num_stages, layer_to_stage).expect("stages in range")
}

/// The initial assignment DeepSpeed would use for `model` under the given
/// partitioning method (computed on the *dense* model, since static systems
/// have no knowledge of upcoming dynamism).
pub fn deepspeed_initial_assignment(
    model: &Model,
    num_stages: usize,
    method: &DeepSpeedMethod,
) -> StageAssignment {
    match method {
        DeepSpeedMethod::Uniform => StageAssignment::uniform(model.num_layers(), num_stages),
        DeepSpeedMethod::Parameters => {
            let weights: Vec<f64> = model
                .layers()
                .iter()
                .map(|l| l.param_count as f64)
                .collect();
            StageAssignment::from_counts(&partition_balanced(&weights, num_stages))
        }
        DeepSpeedMethod::Regex(pattern) => {
            // Layers whose name matches the pattern are distributed evenly;
            // non-matching layers are attached to the stage of the nearest
            // preceding matching layer (or stage 0).
            let matching: Vec<usize> = model
                .layers()
                .iter()
                .filter(|l| l.name.contains(pattern.as_str()))
                .map(|l| l.id)
                .collect();
            if matching.is_empty() {
                return StageAssignment::uniform(model.num_layers(), num_stages);
            }
            let matched_assignment = StageAssignment::uniform(matching.len(), num_stages);
            let mut layer_to_stage = vec![0usize; model.num_layers()];
            let mut current_stage = 0usize;
            let mut match_idx = 0usize;
            for (layer, stage_slot) in layer_to_stage.iter_mut().enumerate() {
                if match_idx < matching.len() && matching[match_idx] == layer {
                    current_stage = matched_assignment.stage_of(match_idx);
                    match_idx += 1;
                }
                *stage_slot = current_stage;
            }
            StageAssignment::new(num_stages, layer_to_stage).expect("stages in range")
        }
    }
}

/// The controller used for every static baseline: whatever the initial
/// assignment was, never rebalance during training.
pub fn static_controller() -> RebalanceController {
    RebalanceController::new(
        Box::new(MegatronUniformBalancer::new()),
        BalanceObjective::ByParams,
        RebalancePolicy::disabled(),
    )
}

/// The pipeline schedule the paper's strongest static baseline runs: the
/// "almost zero-bubble" scheme of Figure 1, modeled as the ZB-H1 split
/// backward schedule.  The bench harness gives every SoTA comparison row
/// this schedule (see `dynmo-bench`'s `run_configuration`), keeping the
/// comparison honest — DynMo's wins must come from removing the *dynamic*
/// imbalance bubble, not from a weaker baseline schedule.
pub fn zero_bubble_baseline_schedule() -> dynmo_pipeline::ScheduleKind {
    dynmo_pipeline::ScheduleKind::ZeroBubbleH1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;
    use dynmo_pipeline::LayerLoad;

    fn gpt() -> Model {
        Model::from_preset(ModelPreset::Gpt { layers: 24 })
    }

    fn loads(n: usize) -> Vec<LayerLoad> {
        (0..n)
            .map(|i| LayerLoad {
                layer_id: i,
                fwd_time: 1.0 + i as f64,
                bwd_time: 2.0,
                param_count: if i == 0 { 50_000 } else { 1_000 },
                static_bytes: 100,
                activation_bytes: 10,
                migration_bytes: 100,
            })
            .collect()
    }

    #[test]
    fn megatron_splits_layers_evenly_regardless_of_cost() {
        let loads = loads(16);
        let request = BalanceRequest::new(&loads, 4, u64::MAX, BalanceObjective::ByTime);
        let outcome = MegatronUniformBalancer::new().rebalance(&request);
        assert_eq!(outcome.assignment.counts(), vec![4, 4, 4, 4]);
        assert_eq!(outcome.rounds, 1);
        assert!(outcome.bottleneck > 0.0);
        assert_eq!(MegatronUniformBalancer::new().name(), "static-megatron");
    }

    #[test]
    fn deepspeed_param_method_balances_parameters_not_time() {
        let loads = loads(16);
        let request = BalanceRequest::new(&loads, 4, u64::MAX, BalanceObjective::ByTime);
        let outcome = DeepSpeedBalancer::new(DeepSpeedMethod::Parameters).rebalance(&request);
        // Layer 0 has 50× the parameters of everyone else, so it sits alone.
        assert_eq!(outcome.assignment.stage_of(0), 0);
        assert_eq!(outcome.assignment.layers_of(0), vec![0]);
        assert_eq!(outcome.assignment.num_layers(), 16);
    }

    #[test]
    fn deepspeed_uniform_and_regex_fall_back_to_even_layer_split() {
        let loads = loads(12);
        let request = BalanceRequest::new(&loads, 3, u64::MAX, BalanceObjective::ByTime);
        for method in [
            DeepSpeedMethod::Uniform,
            DeepSpeedMethod::Regex("nonexistent".into()),
        ] {
            let outcome = DeepSpeedBalancer::new(method).rebalance(&request);
            assert_eq!(outcome.assignment.counts(), vec![4, 4, 4]);
        }
    }

    #[test]
    fn initial_assignments_cover_all_layers() {
        let model = gpt();
        for stages in [4, 8, 24] {
            let megatron = megatron_initial_assignment(&model, stages);
            assert_eq!(megatron.num_layers(), model.num_layers());
            assert_eq!(megatron.num_stages(), stages);
            assert!(megatron.is_contiguous());
            // Transformer layers are split evenly; embedding rides with the
            // first stage and the head with the last.
            assert_eq!(megatron.stage_of(0), 0);
            assert_eq!(megatron.stage_of(model.num_layers() - 1), stages - 1);
            let counts = megatron.counts();
            let tfm_per_stage = 24 / stages;
            assert!(counts.iter().all(|&c| c >= tfm_per_stage));

            for method in [
                DeepSpeedMethod::Uniform,
                DeepSpeedMethod::Parameters,
                DeepSpeedMethod::Regex("transformer".into()),
            ] {
                let ds = deepspeed_initial_assignment(&model, stages, &method);
                assert_eq!(ds.num_layers(), model.num_layers());
                assert!(ds.is_contiguous(), "{method:?} must stay contiguous");
            }
        }
    }

    #[test]
    fn deepspeed_param_initial_assignment_isolates_the_embedding() {
        // The embedding table dominates the parameter count of a small GPT,
        // so the `parameters` method gives it (nearly) its own stage while
        // `uniform` does not.
        let model = gpt();
        let param = deepspeed_initial_assignment(&model, 8, &DeepSpeedMethod::Parameters);
        let uniform = deepspeed_initial_assignment(&model, 8, &DeepSpeedMethod::Uniform);
        assert!(param.layers_of(0).len() < uniform.layers_of(0).len());
    }

    #[test]
    fn regex_method_groups_non_matching_layers_with_their_neighbors() {
        let model = gpt();
        let regex =
            deepspeed_initial_assignment(&model, 4, &DeepSpeedMethod::Regex("transformer".into()));
        // The embedding (layer 0, no match) stays on stage 0 with the first
        // transformer layers; the head rides with the last stage.
        assert_eq!(regex.stage_of(0), 0);
        assert_eq!(regex.stage_of(model.num_layers() - 1), 3);
    }

    #[test]
    fn static_controller_never_rebalances() {
        let controller = static_controller();
        assert!(!controller.is_due(100, dynmo_dynamics::RebalanceFrequency::EveryIteration));
        assert!(!controller.policy().enabled);
    }

    #[test]
    fn deepspeed_names_identify_the_method() {
        assert_eq!(
            DeepSpeedBalancer::new(DeepSpeedMethod::Parameters).name(),
            "static-deepspeed-param"
        );
        assert!(DeepSpeedBalancer::new(DeepSpeedMethod::Regex("x".into()))
            .name()
            .contains("regex"));
        assert_eq!(
            *DeepSpeedBalancer::new(DeepSpeedMethod::Uniform).method(),
            DeepSpeedMethod::Uniform
        );
    }
}
