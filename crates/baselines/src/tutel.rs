//! Tutel-style MoE baseline.
//!
//! Tutel is the "highly MoE-tailored system" the paper compares against for
//! the MoE case (§5.1).  Its adaptive dispatch enforces an expert *capacity
//! factor*: each expert processes at most `capacity_factor × tokens /
//! num_experts` tokens per batch and the overflow is dropped (or re-routed),
//! which bounds the per-expert overload — but does not rebalance the
//! pipeline stages themselves, so the residual imbalance (up to the capacity
//! factor) still shows up as pipeline bubbles.  DynMo beats it by 1.18–1.21×
//! in the paper.

use dynmo_dynamics::{DynamismCase, DynamismEngine, LoadUpdate, MoeEngine, RebalanceFrequency};
use dynmo_model::{CostModel, Model};

/// An MoE engine whose per-layer overload is clipped at the capacity factor
/// (Tutel's dispatch behaviour), wrapped around the regular [`MoeEngine`].
#[derive(Debug, Clone)]
pub struct TutelMoeEngine {
    inner: MoeEngine,
    capacity_factor: f64,
    ffn_fraction: f64,
    /// Fraction of tokens dropped by capacity clipping in the last step,
    /// averaged over MoE layers (informational; the paper does not model
    /// the accuracy impact and neither do we).
    last_drop_fraction: f64,
}

impl TutelMoeEngine {
    /// Wrap an MoE engine for `model` with the model's configured capacity
    /// factor.
    pub fn new(model: &Model, inner: MoeEngine) -> Self {
        let moe = model
            .config()
            .moe
            .expect("TutelMoeEngine requires an MoE model");
        let cost = CostModel::new(model.config().clone());
        let attn = cost.attention_fwd_flops(1.0);
        let ffn = cost.moe_ffn_fwd_flops();
        TutelMoeEngine {
            inner,
            capacity_factor: moe.capacity_factor,
            ffn_fraction: ffn / (attn + ffn),
            last_drop_fraction: 0.0,
        }
    }

    /// The capacity factor enforced by the dispatcher.
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// Average fraction of tokens dropped in the most recent step.
    pub fn last_drop_fraction(&self) -> f64 {
        self.last_drop_fraction
    }

    /// The maximum per-layer compute multiplier the capacity factor allows.
    fn scale_cap(&self) -> f64 {
        (1.0 - self.ffn_fraction) + self.ffn_fraction * self.capacity_factor
    }
}

impl DynamismEngine for TutelMoeEngine {
    fn name(&self) -> String {
        format!("moe/tutel-cap-{:.2}", self.capacity_factor)
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::MixtureOfExperts
    }

    fn step(&mut self, iteration: u64) -> LoadUpdate {
        let mut update = self.inner.step(iteration);
        let cap = self.scale_cap();
        let mut dropped = 0.0;
        let mut layers = 0usize;
        for l in 0..update.num_layers() {
            if update.fwd_scale[l] == 1.0 {
                continue; // not an MoE layer
            }
            if update.fwd_scale[l] > cap {
                // Tokens above capacity are dropped (overflow is recorded).
                dropped += (update.fwd_scale[l] - cap) / update.fwd_scale[l];
                layers += 1;
            }
            // Capacity-factor dispatch pads every expert's batch to exactly
            // `capacity_factor × tokens / experts`, so the layer's compute is
            // pinned at the capacity cap regardless of the actual routing —
            // this is what bounds the imbalance but wastes the padding.
            update.fwd_scale[l] = cap;
            update.bwd_scale[l] = cap;
        }
        self.last_drop_fraction = if layers > 0 {
            dropped / layers as f64
        } else {
            0.0
        };
        update
    }

    fn rebalance_frequency(&self) -> RebalanceFrequency {
        RebalanceFrequency::EveryIteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_dynamics::RoutingStrategy;
    use dynmo_model::ModelPreset;

    fn mixtral() -> Model {
        Model::from_preset(ModelPreset::Mixtral8x7b)
    }

    #[test]
    fn capacity_clipping_bounds_the_per_layer_scale() {
        let model = mixtral();
        let inner = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 9);
        let mut tutel = TutelMoeEngine::new(&model, inner);
        let cap = tutel.scale_cap();
        for it in 0..5 {
            let update = tutel.step(it);
            for &l in &model.transformer_layer_ids() {
                assert!(update.fwd_scale[l] <= cap + 1e-12);
            }
        }
        assert_eq!(tutel.capacity_factor(), 1.25);
    }

    #[test]
    fn tutel_pads_every_moe_layer_to_the_capacity_cap() {
        let model = mixtral();
        let mut raw = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 9);
        let inner = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 9);
        let mut tutel = TutelMoeEngine::new(&model, inner);
        let tfm = model.transformer_layer_ids();
        let raw_update = raw.step(0);
        let tutel_update = tutel.step(0);
        let cap = tutel.scale_cap();
        // Every MoE layer is pinned at the cap (padding), so hot layers get
        // cheaper than raw routing while cold layers get more expensive.
        for &l in &tfm {
            assert!((tutel_update.fwd_scale[l] - cap).abs() < 1e-12);
        }
        let raw_max = tfm
            .iter()
            .map(|&l| raw_update.fwd_scale[l])
            .fold(f64::MIN, f64::max);
        assert!(cap <= raw_max + 1e-12);
        // The cap is above 1: padding wastes compute relative to perfectly
        // balanced routing.
        assert!(cap > 1.0);
    }

    #[test]
    fn drop_fraction_is_reported_when_clipping_happens() {
        let model = mixtral();
        let inner = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 11);
        let mut tutel = TutelMoeEngine::new(&model, inner);
        let mut any_drop = false;
        for it in 0..10 {
            tutel.step(it);
            if tutel.last_drop_fraction() > 0.0 {
                any_drop = true;
            }
        }
        assert!(
            any_drop,
            "aux-loss routing should exceed capacity sometimes"
        );
    }

    #[test]
    fn engine_metadata() {
        let model = mixtral();
        let inner = MoeEngine::new(&model, RoutingStrategy::SBase, 1);
        let tutel = TutelMoeEngine::new(&model, inner);
        assert_eq!(tutel.case(), DynamismCase::MixtureOfExperts);
        assert_eq!(
            tutel.rebalance_frequency(),
            RebalanceFrequency::EveryIteration
        );
        assert!(tutel.name().contains("tutel"));
        assert_eq!(tutel.extra_overhead(0), 0.0);
    }
}
