//! PipeTransformer-style elasticity baseline (paper §6.2).
//!
//! PipeTransformer packs the remaining active layers onto fewer GPUs when
//! layers freeze, but differs from DynMo in three ways the paper calls out:
//! it can only *halve* the worker count, it estimates memory from parameter
//! counts rather than measured usage, and it cannot rebalance — only
//! re-pack.  This module reproduces those semantics so the elasticity
//! comparison (Figure 4 discussion) can be run head-to-head with DynMo's
//! Algorithm 2.

use dynmo_pipeline::{LayerLoad, StageAssignment};
use serde::{Deserialize, Serialize};

/// Bytes PipeTransformer assumes each parameter occupies when estimating a
/// worker's memory footprint (weights + gradients + fp32 Adam state at
/// mixed precision).
pub const PARAM_BYTES_PROXY: u64 = 16;

/// The result of one PipeTransformer halving decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipeTransformerElasticity {
    /// The new assignment over half the workers (uniform layer split, since
    /// PipeTransformer does not load-balance).
    pub new_assignment: StageAssignment,
    /// Number of workers after halving.
    pub new_worker_count: usize,
    /// Estimated (parameter-proxy) memory per worker after halving.
    pub estimated_bytes_per_worker: u64,
}

/// Attempt PipeTransformer's "divide the number of GPUs by 2" re-packing.
///
/// Returns `None` when halving is impossible: fewer than two active workers,
/// or the parameter-proxy estimate says half the workers cannot hold the
/// model within `memory_capacity`.
pub fn plan_halving_repack(
    current: &StageAssignment,
    loads: &[LayerLoad],
    memory_capacity: u64,
) -> Option<PipeTransformerElasticity> {
    let workers = current.num_stages();
    if workers < 2 {
        return None;
    }
    let new_workers = workers / 2;
    // PipeTransformer estimates memory from parameter counts, not from the
    // measured footprint.
    let total_estimated: u64 = loads
        .iter()
        .map(|l| l.param_count * PARAM_BYTES_PROXY)
        .sum();
    let per_worker = total_estimated / new_workers.max(1) as u64;
    if per_worker > memory_capacity {
        return None;
    }
    Some(PipeTransformerElasticity {
        new_assignment: StageAssignment::uniform(current.num_layers(), new_workers),
        new_worker_count: new_workers,
        estimated_bytes_per_worker: per_worker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(n: usize, params: u64) -> Vec<LayerLoad> {
        (0..n)
            .map(|i| LayerLoad {
                layer_id: i,
                fwd_time: 1.0,
                bwd_time: 2.0,
                param_count: params,
                static_bytes: params * 16,
                activation_bytes: 0,
                migration_bytes: params * 16,
            })
            .collect()
    }

    #[test]
    fn halving_produces_a_uniform_split_over_half_the_workers() {
        let current = StageAssignment::uniform(16, 8);
        let plan = plan_halving_repack(&current, &loads(16, 1_000), u64::MAX).unwrap();
        assert_eq!(plan.new_worker_count, 4);
        assert_eq!(plan.new_assignment.num_stages(), 4);
        assert_eq!(plan.new_assignment.counts(), vec![4, 4, 4, 4]);
        assert_eq!(plan.estimated_bytes_per_worker, 16 * 1_000 * 16 / 4);
    }

    #[test]
    fn halving_refuses_when_the_proxy_estimate_does_not_fit() {
        let current = StageAssignment::uniform(16, 8);
        // 16 layers × 1000 params × 16 B = 256 kB total; half the workers
        // would need 64 kB each, above the 50 kB capacity.
        assert!(plan_halving_repack(&current, &loads(16, 1_000), 50_000).is_none());
        // ...but a single halving to 4 workers fits at 100 kB capacity.
        assert!(plan_halving_repack(&current, &loads(16, 1_000), 100_000).is_some());
    }

    #[test]
    fn halving_refuses_below_two_workers() {
        let current = StageAssignment::uniform(8, 1);
        assert!(plan_halving_repack(&current, &loads(8, 10), u64::MAX).is_none());
    }

    #[test]
    fn parameter_proxy_ignores_actual_memory_shrinkage() {
        // DynMo would see that frozen layers dropped their optimizer state
        // (static_bytes shrank); PipeTransformer's proxy only looks at
        // parameter counts, so both cases give the same estimate.
        let current = StageAssignment::uniform(8, 4);
        let mut shrunk = loads(8, 1_000);
        for l in &mut shrunk {
            l.static_bytes = 100; // much smaller measured footprint
        }
        let normal = plan_halving_repack(&current, &loads(8, 1_000), u64::MAX).unwrap();
        let with_shrunk = plan_halving_repack(&current, &shrunk, u64::MAX).unwrap();
        assert_eq!(
            normal.estimated_bytes_per_worker,
            with_shrunk.estimated_bytes_per_worker
        );
    }
}
