//! Layer-freezing baselines: Egeria and AutoFreeze.
//!
//! Egeria (Wang et al.) freezes converged layers by periodically comparing
//! against a reference model kept on the CPU; AutoFreeze uses gradient-norm
//! heuristics.  Neither rebalances the pipeline after freezing, and the
//! paper notes that "Egeria's overhead grows fast with the number of layers,
//! while DynMo's overhead remains almost flat" — which is exactly why
//! DynMo's speedup over Egeria grows with depth in Figure 3.  These wrappers
//! add that depth-dependent bookkeeping cost via
//! [`DynamismEngine::extra_overhead`].

use dynmo_dynamics::{
    DynamismCase, DynamismEngine, FreezingEngine, FreezingPolicy, LoadUpdate, RebalanceFrequency,
};
use dynmo_model::Model;

/// Egeria: reference-model-driven freezing with CPU-side bookkeeping whose
/// cost grows with model depth.
#[derive(Debug, Clone)]
pub struct EgeriaEngine {
    inner: FreezingEngine,
    num_layers: usize,
    /// Seconds of reference-model maintenance per layer per check.
    per_layer_check_cost: f64,
    check_interval: u64,
}

impl EgeriaEngine {
    /// Default per-layer, per-check reference-model cost (seconds): copying
    /// and evaluating a layer of the CPU reference model.
    pub const DEFAULT_PER_LAYER_COST: f64 = 2.0e-3;

    /// Wrap a freezing engine for `model`.
    pub fn new(model: &Model, policy: FreezingPolicy, seed: u64) -> Self {
        let check_interval = policy.check_interval;
        EgeriaEngine {
            inner: FreezingEngine::new(model, policy, seed),
            num_layers: model.num_layers(),
            per_layer_check_cost: Self::DEFAULT_PER_LAYER_COST,
            check_interval,
        }
    }

    /// Override the per-layer check cost (for sensitivity studies).
    pub fn with_per_layer_cost(mut self, cost: f64) -> Self {
        self.per_layer_check_cost = cost;
        self
    }

    /// Access the wrapped freezing engine.
    pub fn inner(&self) -> &FreezingEngine {
        &self.inner
    }
}

impl DynamismEngine for EgeriaEngine {
    fn name(&self) -> String {
        "freezing/egeria-baseline".to_string()
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::LayerFreezing
    }

    fn step(&mut self, iteration: u64) -> LoadUpdate {
        self.inner.step(iteration)
    }

    fn rebalance_frequency(&self) -> RebalanceFrequency {
        self.inner.rebalance_frequency()
    }

    fn extra_overhead(&self, iteration: u64) -> f64 {
        if iteration > 0 && iteration.is_multiple_of(self.check_interval) {
            // The reference model covers every (still unfrozen) layer; the
            // cost is dominated by the full sweep, so it scales with depth.
            self.num_layers as f64 * self.per_layer_check_cost
        } else {
            0.0
        }
    }
}

/// AutoFreeze: a gradient-norm-based freezing baseline.  Freezes more
/// conservatively than Egeria and carries a smaller (but still
/// depth-proportional) bookkeeping cost.
#[derive(Debug, Clone)]
pub struct AutoFreezeEngine {
    inner: FreezingEngine,
    num_layers: usize,
    check_interval: u64,
}

impl AutoFreezeEngine {
    /// Per-layer, per-check cost of gradient-norm accumulation (seconds).
    pub const PER_LAYER_COST: f64 = 8.0e-4;

    /// Build an AutoFreeze baseline for `model`: same machinery as the
    /// freezing engine but with a more conservative schedule (layers freeze
    /// later and a larger tail never freezes).
    pub fn new(model: &Model, seed: u64) -> Self {
        let policy = FreezingPolicy {
            check_interval: 100,
            first_freeze_iteration: 2_000,
            stagger_per_layer: 250,
            never_freeze_fraction: 0.35,
            jitter: 0.1,
        };
        AutoFreezeEngine {
            inner: FreezingEngine::new(model, policy, seed),
            num_layers: model.num_layers(),
            check_interval: 100,
        }
    }

    /// Access the wrapped freezing engine.
    pub fn inner(&self) -> &FreezingEngine {
        &self.inner
    }
}

impl DynamismEngine for AutoFreezeEngine {
    fn name(&self) -> String {
        "freezing/autofreeze-baseline".to_string()
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::LayerFreezing
    }

    fn step(&mut self, iteration: u64) -> LoadUpdate {
        self.inner.step(iteration)
    }

    fn rebalance_frequency(&self) -> RebalanceFrequency {
        self.inner.rebalance_frequency()
    }

    fn extra_overhead(&self, iteration: u64) -> f64 {
        if iteration > 0 && iteration.is_multiple_of(self.check_interval) {
            self.num_layers as f64 * Self::PER_LAYER_COST
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;

    fn gpt(layers: usize) -> Model {
        Model::from_preset(ModelPreset::Gpt { layers })
    }

    #[test]
    fn egeria_overhead_grows_with_depth_and_only_at_checks() {
        let shallow = EgeriaEngine::new(&gpt(24), FreezingPolicy::paper_default(), 1);
        let deep = EgeriaEngine::new(&gpt(48), FreezingPolicy::paper_default(), 1);
        assert_eq!(shallow.extra_overhead(49), 0.0);
        assert!(shallow.extra_overhead(50) > 0.0);
        assert!(deep.extra_overhead(50) > shallow.extra_overhead(50) * 1.5);
        assert_eq!(shallow.extra_overhead(0), 0.0);
    }

    #[test]
    fn egeria_freezing_behaviour_matches_the_inner_engine() {
        let model = gpt(24);
        let mut egeria = EgeriaEngine::new(&model, FreezingPolicy::paper_default(), 7);
        let mut reference = FreezingEngine::new(&model, FreezingPolicy::paper_default(), 7);
        for it in 0..3000 {
            let a = egeria.step(it);
            let b = reference.step(it);
            assert_eq!(a, b);
        }
        assert_eq!(egeria.inner().num_frozen(), reference.num_frozen());
        assert_eq!(egeria.case(), DynamismCase::LayerFreezing);
    }

    #[test]
    fn autofreeze_is_more_conservative_than_egeria() {
        let model = gpt(32);
        let mut egeria = EgeriaEngine::new(&model, FreezingPolicy::paper_default(), 3);
        let mut autofreeze = AutoFreezeEngine::new(&model, 3);
        for it in 0..=6000 {
            egeria.step(it);
            autofreeze.step(it);
        }
        assert!(autofreeze.inner().num_frozen() <= egeria.inner().num_frozen());
        assert!(autofreeze.extra_overhead(100) < egeria.extra_overhead(50));
        assert!(autofreeze.name().contains("autofreeze"));
    }

    #[test]
    fn per_layer_cost_override_scales_the_overhead() {
        let model = gpt(24);
        let default = EgeriaEngine::new(&model, FreezingPolicy::paper_default(), 1);
        let cheap = EgeriaEngine::new(&model, FreezingPolicy::paper_default(), 1)
            .with_per_layer_cost(1.0e-6);
        assert!(cheap.extra_overhead(50) < default.extra_overhead(50) / 100.0);
    }
}
