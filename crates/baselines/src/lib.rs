//! # dynmo-baselines
//!
//! The comparison systems of the DynMo paper, reimplemented as partitioning
//! policies and engine wrappers:
//!
//! * **Megatron-LM** (static): an even split of transformer layers across
//!   stages, applied once before training ([`static_balancers`]).
//! * **DeepSpeed** (static): the `uniform` / `parameters` / `regex`
//!   partitioning methods of `PipelineModule`, applied once before training
//!   ([`static_balancers`]).
//! * **Tutel** (MoE-tailored): adaptive MoE dispatch with a capacity factor
//!   that bounds per-expert overload at the cost of dropping overflow tokens
//!   ([`tutel`]).
//! * **Egeria** and **AutoFreeze** (layer freezing): freezing controllers
//!   that do not rebalance the pipeline and whose bookkeeping overhead grows
//!   with model depth ([`egeria`]).
//! * **PipeTransformer** (elasticity): re-packing by halving the worker
//!   count, with parameter counts as a proxy for memory usage
//!   ([`pipetransformer`]).
//!
//! Each baseline plugs into the same `dynmo-core` trainer used for DynMo
//! itself, so every Figure-3/Figure-4 comparison runs through one code path.

#![warn(missing_docs)]

pub mod egeria;
pub mod pipetransformer;
pub mod static_balancers;
pub mod tutel;

pub use egeria::{AutoFreezeEngine, EgeriaEngine};
pub use pipetransformer::{plan_halving_repack, PipeTransformerElasticity};
pub use static_balancers::{
    deepspeed_initial_assignment, megatron_initial_assignment, static_controller,
    zero_bubble_baseline_schedule, DeepSpeedBalancer, DeepSpeedMethod, MegatronUniformBalancer,
};
pub use tutel::TutelMoeEngine;
