//! The real workspace must be lint-clean — this is the same check CI runs
//! via `cargo run -p dynmo-lint -- --workspace`, kept as a test so `cargo
//! test` alone catches a freshly introduced violation.

use std::path::Path;

#[test]
fn the_workspace_has_no_lint_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let violations = dynmo_lint::lint_workspace(&root).expect("workspace walk failed");
    let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}

/// Teeth check: a seeded violation in each rule's jurisdiction is caught.
#[test]
fn seeded_violations_are_caught() {
    let cases = [
        (
            "crates/x/src/lib.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
            "unsafe-safety",
        ),
        (
            "shims/crossbeam/src/deque.rs",
            "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n",
            "ordering-relaxed",
        ),
        (
            "crates/runtime/src/fabric.rs",
            "fn f() { let _ = std::time::Instant::now(); }\n",
            "wall-clock",
        ),
        (
            "crates/core/src/lib.rs",
            "use std::sync::Mutex;\n",
            "std-mutex",
        ),
    ];
    for (path, source, rule) in cases {
        let violations = dynmo_lint::lint_source(Path::new(path), source);
        assert_eq!(
            violations.len(),
            1,
            "{rule}: expected exactly one violation, got {violations:?}"
        );
        assert_eq!(violations[0].rule, rule);
    }
}
