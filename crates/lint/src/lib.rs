//! `dynmo-lint`: token-level invariant checks for the workspace.
//!
//! Four rules, each encoding a correctness invariant the test suite cannot
//! check by running code:
//!
//! 1. **`unsafe-safety`** — every `unsafe` block and `unsafe impl` carries a
//!    `// SAFETY:` comment on the same line or just above it (declared
//!    `unsafe fn`s are exempt: their obligations live in `# Safety` docs).
//! 2. **`ordering-relaxed`** — every `Ordering::Relaxed` in shim source
//!    carries an `// ORDERING:` comment justifying why the weakest ordering
//!    suffices.  Relaxed is the ordering most likely to be cargo-culted; the
//!    loom suite can only check protocols someone thought to model.
//! 3. **`wall-clock`** — no `std::time::Instant`/`SystemTime` outside the
//!    telemetry stopwatch, the bench binaries, and the criterion shim.  The
//!    repo's determinism contract (byte-identical sweep artifacts across
//!    thread counts) dies the moment wall-clock readings reach artifact
//!    data; keeping acquisition choke-pointed makes the contract auditable.
//!    `// LINT: allow(wall-clock)` on or just above the line waives a
//!    legitimate site (e.g. a lock-acquisition timeout).
//! 4. **`std-mutex`** — no direct `std::sync::Mutex` outside `shims/`:
//!    workspace crates go through the shim facades, which is what makes the
//!    loom model-check instrumentation reach them.
//!
//! The scanner is a comment/string-aware lexer, not a parser: it splits each
//! line into code and comment parts (handling nested block comments, raw
//! strings, and char-vs-lifetime ambiguity) and runs the rules on the code
//! part only, so occurrences inside strings or docs never trip a rule.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path as given to the linter (workspace-relative in `--workspace`).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`unsafe-safety`, `ordering-relaxed`, `wall-clock`,
    /// `std-mutex`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source line split into its code and comment parts.
#[derive(Debug, Default, Clone)]
struct Line {
    code: String,
    comment: String,
}

/// Split `source` into per-line code and comment parts.  String and char
/// literal *contents* are blanked in the code part (delimiters kept) so rule
/// patterns never match inside literals; comment text (line, block, doc) is
/// collected per line in the comment part.
fn split_lines(source: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut state = State::Code;
    let mut lines = Vec::new();
    let mut current = Line::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut current));
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    current.code.push('"');
                    state = State::Str;
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    // r"..", r#".."#, br".." — count the hashes so the
                    // matching closer is recognized.
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    current.code.push('"');
                    state = State::RawStr(hashes);
                    i = j + 1; // past the opening quote
                }
                '\'' => {
                    // Char literal vs lifetime: 'x' or '\..' is a literal;
                    // 'ident with no closing quote is a lifetime.
                    let is_literal = match next {
                        Some('\\') => true,
                        Some(n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
                        _ => false,
                    };
                    current.code.push('\'');
                    if is_literal {
                        state = State::Char;
                    }
                    i += 1;
                }
                _ => {
                    current.code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                current.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    current.comment.push(c);
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => i += 2,
                '"' => {
                    current.code.push('"');
                    state = State::Code;
                    i += 1;
                }
                _ => i += 1,
            },
            State::RawStr(hashes) => {
                if c == '"' && (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    current.code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::Char => match c {
                '\\' => i += 2,
                '\'' => {
                    current.code.push('\'');
                    state = State::Code;
                    i += 1;
                }
                _ => i += 1,
            },
        }
    }
    if !current.code.is_empty() || !current.comment.is_empty() {
        lines.push(current);
    }
    lines
}

/// True at an `r"`, `r#"`, `br"`-style raw-string opener that is not the
/// tail of an identifier (`for`, `attr`, ...).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars[j] == 'b' {
        if chars.get(j + 1) != Some(&'r') {
            return false;
        }
        j += 1;
    }
    let mut k = j + 1;
    while chars.get(k) == Some(&'#') {
        k += 1;
    }
    chars.get(k) == Some(&'"')
}

/// True if the `unsafe` on line `idx` is covered by a `SAFETY:` comment:
/// either on the same line, or in the contiguous run of comment-only (or
/// further `unsafe`) lines directly above it.  An intervening ordinary code
/// line breaks the run — a SAFETY comment must sit against the block it
/// justifies.  Stacked `unsafe impl Send`/`Sync` pairs share one comment.
fn safety_comment_covers(lines: &[Line], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut j = idx;
    for _ in 0..25 {
        if j == 0 {
            return false;
        }
        j -= 1;
        let line = &lines[j];
        if !line.code.trim().is_empty() && !has_word(&line.code, "unsafe") {
            return false;
        }
        if line.comment.contains("SAFETY:") {
            return true;
        }
    }
    false
}

/// True if any of the `lookback` lines up to and including `end` has
/// `needle` in its comment part.
fn comment_window_contains(lines: &[Line], end: usize, lookback: usize, needle: &str) -> bool {
    let start = end.saturating_sub(lookback);
    lines[start..=end]
        .iter()
        .any(|line| line.comment.contains(needle))
}

/// Where a file sits in the workspace, deciding which rules apply.
struct FileClass {
    /// Under `shims/*/src/` — the ordering-annotation rule applies.
    shim_src: bool,
    /// Under `shims/` at all — exempt from the std-mutex rule.
    shim: bool,
    /// Allowlisted for wall-clock use (telemetry stopwatch, bench binaries,
    /// criterion shim).
    wall_clock_ok: bool,
}

fn classify(rel_path: &Path) -> FileClass {
    let p = rel_path.to_string_lossy().replace('\\', "/");
    let shim = p.starts_with("shims/");
    FileClass {
        shim_src: shim && p.contains("/src/"),
        shim,
        wall_clock_ok: p == "crates/telemetry/src/stopwatch.rs"
            || p.starts_with("crates/bench/")
            || p.starts_with("shims/criterion/"),
    }
}

/// Lint one file's source.  `rel_path` is workspace-relative and decides
/// which rules apply (see [`classify`]).
pub fn lint_source(rel_path: &Path, source: &str) -> Vec<Violation> {
    let lines = split_lines(source);
    let class = classify(rel_path);
    let mut violations = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: &str| {
        violations.push(Violation {
            file: rel_path.to_path_buf(),
            line: line + 1,
            rule,
            message: message.to_string(),
        });
    };

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();

        // Rule 1: unsafe blocks / impls need a SAFETY comment.
        for pos in match_word(code, "unsafe") {
            let rest = code[pos + "unsafe".len()..].trim_start();
            // `unsafe fn` declarations document their obligations in
            // `# Safety` doc sections instead.
            if rest.starts_with("fn ") || rest.starts_with("fn(") {
                continue;
            }
            if !safety_comment_covers(&lines, idx) {
                push(
                    idx,
                    "unsafe-safety",
                    "`unsafe` without a `// SAFETY:` comment on or above it",
                );
            }
        }

        // Rule 2: Relaxed orderings in shim source need justification.
        if class.shim_src
            && contains_path(code, &["Ordering", "Relaxed"])
            && !comment_window_contains(&lines, idx, 6, "ORDERING:")
        {
            push(
                idx,
                "ordering-relaxed",
                "`Ordering::Relaxed` without an `// ORDERING:` justification",
            );
        }

        // Rule 3: wall-clock acquisition outside the allowlist.  Only
        // qualified forms match (`std::time::Instant`, `Instant::now`, the
        // use-import) — a bare `Instant` may be an unrelated name, e.g. a
        // telemetry event variant.
        if !class.wall_clock_ok {
            let hit = contains_path(code, &["std", "time", "Instant"])
                || contains_path(code, &["std", "time", "SystemTime"])
                || contains_path(code, &["Instant", "now"])
                || contains_path(code, &["SystemTime", "now"])
                || (has_word(code, "use")
                    && contains_path(code, &["std", "time"])
                    && (has_word(code, "Instant") || has_word(code, "SystemTime")));
            if hit && !comment_window_contains(&lines, idx, 2, "LINT: allow(wall-clock)") {
                push(
                    idx,
                    "wall-clock",
                    "wall-clock acquisition outside telemetry/bench (determinism \
                     hazard); waive with `// LINT: allow(wall-clock)`",
                );
            }
        }

        // Rule 4: std::sync::Mutex outside shims.
        if !class.shim {
            let hit = contains_path(code, &["std", "sync", "Mutex"])
                || (has_word(code, "use")
                    && contains_path(code, &["std", "sync"])
                    && has_word(code, "Mutex"));
            if hit {
                push(
                    idx,
                    "std-mutex",
                    "direct `std::sync::Mutex` outside shims/ — use the shim \
                     facades so loom instrumentation reaches this lock",
                );
            }
        }
    }
    violations
}

/// Byte offsets of `word` occurrences in `code` at identifier boundaries.
fn match_word(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            out.push(start);
        }
        from = end;
    }
    out
}

fn has_word(code: &str, word: &str) -> bool {
    !match_word(code, word).is_empty()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True if `code` contains the segments joined by `::` (whitespace around
/// the separators tolerated), each at identifier boundaries.
fn contains_path(code: &str, segments: &[&str]) -> bool {
    'outer: for start in match_word(code, segments[0]) {
        let mut cursor = start + segments[0].len();
        for segment in &segments[1..] {
            let rest = code[cursor..].trim_start();
            let Some(rest) = rest.strip_prefix("::") else {
                continue 'outer;
            };
            let rest = rest.trim_start();
            if !rest.starts_with(segment) {
                continue 'outer;
            }
            let after = &rest[segment.len()..];
            if after.bytes().next().is_some_and(is_ident_byte) {
                continue 'outer;
            }
            cursor = code.len() - after.len();
        }
        return true;
    }
    false
}

/// Recursively lint every `.rs` file under the workspace `root`'s source
/// trees (`crates/`, `shims/`, `src/`, `examples/`), skipping `target/` and
/// dotted directories.  Paths in the returned violations are
/// workspace-relative and sorted.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for top in ["crates", "shims", "src", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            lint_dir(root, &dir, &mut violations)?;
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

fn lint_dir(root: &Path, dir: &Path, violations: &mut Vec<Violation>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            lint_dir(root, &path, violations)?;
        } else if name.ends_with(".rs") {
            let source = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path);
            violations.extend(lint_source(rel, &source));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_at(path: &str, source: &str) -> Vec<Violation> {
        lint_source(Path::new(path), source)
    }

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unannotated_unsafe_block_is_flagged() {
        let bad = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(
            rules(&lint_at("crates/x/src/lib.rs", bad)),
            ["unsafe-safety"]
        );
        let good =
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller contract.\n    unsafe { *p }\n}\n";
        assert!(lint_at("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn unsafe_impl_needs_safety_but_unsafe_fn_does_not() {
        let impl_bad = "unsafe impl Send for X {}\n";
        assert_eq!(
            rules(&lint_at("crates/x/src/lib.rs", impl_bad)),
            ["unsafe-safety"]
        );
        let fn_ok = "/// # Safety\n/// Caller contract.\npub unsafe fn f() {}\n";
        assert!(lint_at("crates/x/src/lib.rs", fn_ok).is_empty());
    }

    #[test]
    fn unsafe_inside_strings_and_comments_is_ignored() {
        let s = "fn f() { let _ = \"unsafe { }\"; }\n// unsafe in a comment\n/* unsafe */\n";
        assert!(lint_at("crates/x/src/lib.rs", s).is_empty());
    }

    #[test]
    fn relaxed_ordering_needs_justification_in_shim_src_only() {
        let bad = "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n";
        assert_eq!(
            rules(&lint_at("shims/crossbeam/src/deque.rs", bad)),
            ["ordering-relaxed"]
        );
        let good = "// ORDERING: Relaxed — owner-local counter.\n\
                    fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n";
        assert!(lint_at("shims/crossbeam/src/deque.rs", good).is_empty());
        // Outside shim src (e.g. shim model tests seeding mutations) it is
        // free.
        assert!(lint_at("shims/crossbeam/tests/loom_deque.rs", bad).is_empty());
        assert!(lint_at("crates/core/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn wall_clock_is_flagged_outside_allowlist() {
        let bad = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules(&lint_at("crates/core/src/lib.rs", bad)),
            ["wall-clock"]
        );
        let import = "use std::time::{Duration, Instant};\n";
        assert_eq!(
            rules(&lint_at("crates/core/src/lib.rs", import)),
            ["wall-clock"]
        );
        // Allowlisted locations.
        assert!(lint_at("crates/telemetry/src/stopwatch.rs", bad).is_empty());
        assert!(lint_at("crates/bench/src/bin/bench_pool.rs", bad).is_empty());
        assert!(lint_at("shims/criterion/src/lib.rs", bad).is_empty());
        // Inline waiver.
        let waived = "// LINT: allow(wall-clock) — lock timeout only.\n\
                      fn f() { let t = std::time::Instant::now(); }\n";
        assert!(lint_at("crates/core/src/lib.rs", waived).is_empty());
        // Duration alone (no Instant/SystemTime) is fine.
        assert!(lint_at("crates/core/src/lib.rs", "use std::time::Duration;\n").is_empty());
        // A telemetry enum variant named Instant is not wall-clock.
        assert!(lint_at(
            "crates/core/src/lib.rs",
            "fn f(e: &Event) -> bool { matches!(e, Event::Instant { .. }) }\n"
        )
        .is_empty());
    }

    #[test]
    fn std_mutex_is_flagged_outside_shims() {
        let direct = "static LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n";
        assert_eq!(
            rules(&lint_at("crates/core/src/lib.rs", direct)),
            ["std-mutex"]
        );
        let import = "use std::sync::{Arc, Mutex};\n";
        assert_eq!(
            rules(&lint_at("crates/core/src/lib.rs", import)),
            ["std-mutex"]
        );
        assert!(lint_at("shims/crossbeam/src/lib.rs", direct).is_empty());
        // Arc-only imports are fine.
        assert!(lint_at("crates/core/src/lib.rs", "use std::sync::Arc;\n").is_empty());
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let s = concat!(
            "fn f<'a>(x: &'a str) -> &'a str { x }\n",
            "const S: &str = r#\"unsafe std::sync::Mutex Instant::now()\"#;\n",
            "const C: char = '\"';\n",
            "fn g() { let _ = std::sync::Mutex::new(0); }\n",
        );
        // Only the real Mutex on the last line fires.
        let violations = lint_at("crates/x/src/lib.rs", s);
        assert_eq!(rules(&violations), ["std-mutex"]);
        assert_eq!(violations[0].line, 4);
    }

    #[test]
    fn nested_block_comments_do_not_swallow_code() {
        let s = "/* outer /* inner */ still comment */\nfn f() { unsafe {} }\n";
        assert_eq!(rules(&lint_at("crates/x/src/lib.rs", s)), ["unsafe-safety"]);
    }

    #[test]
    fn safety_comment_must_be_adjacent() {
        // An intervening code line severs the comment from the block.
        let severed = "// SAFETY: detached.\nfn g() {}\nfn f() { unsafe {} }\n";
        assert_eq!(
            rules(&lint_at("crates/x/src/lib.rs", severed)),
            ["unsafe-safety"]
        );
        // One comment covers a stacked Send/Sync pair.
        let stacked = "// SAFETY: shared by both impls.\n\
                       unsafe impl<T> Send for X<T> {}\n\
                       unsafe impl<T> Sync for X<T> {}\n";
        assert!(lint_at("crates/x/src/lib.rs", stacked).is_empty());
    }
}
