//! CLI for the workspace invariant pass.
//!
//! ```text
//! dynmo-lint --workspace          # lint the enclosing cargo workspace
//! dynmo-lint <path> [<path> ...]  # lint specific files or directories
//! ```
//!
//! Exits 1 if any violation is found, printing one `path:line: [rule]
//! message` line each — the same contract CI relies on.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dynmo_lint::{lint_source, lint_workspace, Violation};

/// Nearest ancestor of `start` whose `Cargo.toml` declares `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn lint_path(root: &Path, path: &Path, violations: &mut Vec<Violation>) -> std::io::Result<()> {
    if path.is_dir() {
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == "target" || name.starts_with('.') {
                continue;
            }
            lint_path(root, &entry.path(), violations)?;
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        let source = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        violations.extend(lint_source(rel, &source));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: dynmo-lint --workspace | dynmo-lint <path>...");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }

    let cwd = std::env::current_dir().expect("cwd unavailable");
    let result = if args.iter().any(|a| a == "--workspace") {
        let root = find_workspace_root(&cwd).unwrap_or_else(|| {
            eprintln!(
                "dynmo-lint: no enclosing cargo workspace found from {}",
                cwd.display()
            );
            std::process::exit(2);
        });
        lint_workspace(&root)
    } else {
        let root = find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());
        let mut violations = Vec::new();
        let outcome: std::io::Result<()> = args.iter().try_for_each(|arg| {
            let path = PathBuf::from(arg);
            if !path.exists() {
                eprintln!("dynmo-lint: no such path: {arg}");
                std::process::exit(2);
            }
            lint_path(&root, &path, &mut violations)
        });
        outcome.map(|()| violations)
    };

    match result {
        Ok(violations) if violations.is_empty() => {
            println!("dynmo-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for violation in &violations {
                println!("{violation}");
            }
            println!("dynmo-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("dynmo-lint: io error: {err}");
            ExitCode::from(2)
        }
    }
}
