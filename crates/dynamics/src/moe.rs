//! Mixture-of-Experts routing dynamism (paper §2.1, §4.2.1).
//!
//! In expert-parallel MoE layers the slowest (most loaded) expert determines
//! the layer's latency, so routing skew inflates the layer's effective
//! compute by `max_expert_load / mean_expert_load`.  The paper studies two
//! routers on Mixtral-8x7B and LLaMA-MoE-3.5B:
//!
//! * the auxiliary-load-balancing-loss token-choice router used by Mixtral,
//!   which still leaves ≈25% pipeline imbalance, and
//! * S-BASE (balanced assignment via an auction/optimal-transport solve),
//!   which is much closer to balanced but not perfect.
//!
//! A third strategy, expert choice, is included because the Mixture-of-Depths
//! engine builds on it.

use dynmo_model::{CostModel, Model};
use serde::{Deserialize, Serialize};

use crate::engine::{DynamismCase, DynamismEngine, EngineState, LoadUpdate, RebalanceFrequency};
use crate::workload::{max_over_mean, TokenStreamGenerator};

/// Snapshot layout version of [`MoeEngine`]'s engine state.
const MOE_STATE_VERSION: u32 = 1;

/// The token→expert routing strategy being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingStrategy {
    /// Token-choice top-k routing with an auxiliary load-balancing loss
    /// (Mixtral's router).  Leaves substantial skew.
    TokenChoiceAuxLoss,
    /// S-BASE: balanced assignment of tokens to experts; near-balanced.
    SBase,
    /// Expert-choice routing: each expert picks its top-capacity tokens;
    /// balanced by construction up to capacity rounding.
    ExpertChoice,
}

impl RoutingStrategy {
    /// The skew exponent fed to the token generator, calibrated so the
    /// steady-state imbalance matches the regimes reported in the paper.
    fn skew(&self) -> f64 {
        match self {
            RoutingStrategy::TokenChoiceAuxLoss => 0.2,
            RoutingStrategy::SBase => 0.05,
            RoutingStrategy::ExpertChoice => 0.0,
        }
    }

    /// Short name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingStrategy::TokenChoiceAuxLoss => "aux-loss",
            RoutingStrategy::SBase => "s-base",
            RoutingStrategy::ExpertChoice => "expert-choice",
        }
    }
}

/// MoE dynamism engine: per-layer, per-iteration expert-load imbalance.
#[derive(Debug, Clone)]
pub struct MoeEngine {
    strategy: RoutingStrategy,
    /// One token generator per MoE transformer layer (routing decisions are
    /// independent across layers).
    generators: Vec<TokenStreamGenerator>,
    /// Layer ids (into the model) of the MoE transformer blocks.
    moe_layer_ids: Vec<usize>,
    num_layers: usize,
    /// Fraction of a transformer block's FLOPs spent in the (MoE) FFN.
    ffn_fraction: f64,
    /// Most recent per-MoE-layer expert counts (exposed for inspection).
    last_counts: Vec<Vec<usize>>,
}

impl MoeEngine {
    /// Build an engine for `model` (which must have an MoE configuration)
    /// using the given routing strategy.
    pub fn new(model: &Model, strategy: RoutingStrategy, seed: u64) -> Self {
        let moe_cfg = model
            .config()
            .moe
            .expect("MoeEngine requires a model with an MoE configuration");
        let cost = CostModel::new(model.config().clone());
        let attn = cost.attention_fwd_flops(1.0);
        let ffn = cost.moe_ffn_fwd_flops();
        let ffn_fraction = ffn / (attn + ffn);
        let tokens_per_batch = model.config().micro_batch_size * model.config().seq_len;
        let moe_layer_ids = model.transformer_layer_ids();
        // Per-layer routing skew: routing quality differs markedly between
        // layers in practice (early layers route more uniformly, some layers
        // develop strongly preferred experts), and that *heterogeneity* is
        // what turns expert imbalance into pipeline-stage imbalance.  Layers
        // draw their skew from [0.4·s, 1.8·s] around the strategy's base
        // skew s, deterministically from the seed.
        let mut skew_rng = crate::rng::Prng::seed_from(seed ^ 0xA5A5_5A5A);
        let generators = moe_layer_ids
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let base = strategy.skew();
                let layer_skew = base * (0.4 + 1.4 * skew_rng.next_f64());
                TokenStreamGenerator::new(
                    moe_cfg.num_experts,
                    tokens_per_batch * moe_cfg.top_k,
                    layer_skew,
                    seed.wrapping_add(i as u64 * 7919),
                )
            })
            .collect();
        MoeEngine {
            strategy,
            generators,
            moe_layer_ids,
            num_layers: model.num_layers(),
            ffn_fraction,
            last_counts: Vec::new(),
        }
    }

    /// The routing strategy being simulated.
    pub fn strategy(&self) -> RoutingStrategy {
        self.strategy
    }

    /// The expert token counts of the most recent step, one vector per MoE
    /// layer.
    pub fn last_counts(&self) -> &[Vec<usize>] {
        &self.last_counts
    }

    /// The layer-level compute multiplier induced by an expert-load
    /// imbalance of `max/mean = imbalance`, given that only the FFN portion
    /// of the block is affected.
    pub fn layer_scale(&self, imbalance: f64) -> f64 {
        (1.0 - self.ffn_fraction) + self.ffn_fraction * imbalance
    }
}

impl DynamismEngine for MoeEngine {
    fn name(&self) -> String {
        format!("moe/{}", self.strategy.label())
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::MixtureOfExperts
    }

    fn step(&mut self, _iteration: u64) -> LoadUpdate {
        let mut update = LoadUpdate::identity(self.num_layers);
        self.last_counts.clear();
        let ffn_fraction = self.ffn_fraction;
        for (generator, &layer_id) in self.generators.iter_mut().zip(self.moe_layer_ids.iter()) {
            let counts = generator.next_counts();
            let imbalance = max_over_mean(&counts);
            self.last_counts.push(counts);
            let scale = (1.0 - ffn_fraction) + ffn_fraction * imbalance;
            update.fwd_scale[layer_id] = scale;
            update.bwd_scale[layer_id] = scale;
        }
        // Routing decisions change every forward pass.
        update.changed = true;
        update
    }

    fn rebalance_frequency(&self) -> RebalanceFrequency {
        RebalanceFrequency::EveryIteration
    }

    fn export_state(&self) -> EngineState {
        // The routing trajectory is fully determined by the per-layer token
        // generators' RNG stream positions (their popularity profiles are
        // reproduced from the seed at construction and never reshuffled).
        let mut state = EngineState::stateless(self.name(), MOE_STATE_VERSION);
        state.rng_streams = self.generators.iter().map(|g| g.rng_state()).collect();
        state
    }

    fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        state.check(&self.name(), MOE_STATE_VERSION)?;
        if state.rng_streams.len() != self.generators.len() {
            return Err(format!(
                "MoE state carries {} generator streams, engine has {}",
                state.rng_streams.len(),
                self.generators.len()
            ));
        }
        for (generator, &rng_state) in self.generators.iter_mut().zip(&state.rng_streams) {
            generator.set_rng_state(rng_state);
        }
        self.last_counts.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;

    fn mixtral() -> Model {
        Model::from_preset(ModelPreset::Mixtral8x7b)
    }

    fn average_layer_imbalance(strategy: RoutingStrategy, iters: u64) -> f64 {
        let model = mixtral();
        let mut engine = MoeEngine::new(&model, strategy, 42);
        let tfm = model.transformer_layer_ids();
        let mut total = 0.0;
        let mut count = 0usize;
        for it in 0..iters {
            let update = engine.step(it);
            update.validate().unwrap();
            for &l in &tfm {
                total += update.fwd_scale[l];
                count += 1;
            }
        }
        total / count as f64
    }

    #[test]
    #[should_panic(expected = "MoE configuration")]
    fn dense_model_is_rejected() {
        let dense = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let _ = MoeEngine::new(&dense, RoutingStrategy::SBase, 1);
    }

    #[test]
    fn aux_loss_routing_leaves_about_25_percent_overload() {
        // The paper reports ~25% imbalance for Mixtral's aux-loss routing;
        // the per-layer compute multiplier should land in the 1.15–1.45
        // band on average.
        let avg = average_layer_imbalance(RoutingStrategy::TokenChoiceAuxLoss, 10);
        assert!((1.15..=1.45).contains(&avg), "average scale {avg}");
    }

    #[test]
    fn s_base_is_much_closer_to_balanced() {
        let aux = average_layer_imbalance(RoutingStrategy::TokenChoiceAuxLoss, 10);
        let sbase = average_layer_imbalance(RoutingStrategy::SBase, 10);
        let expert_choice = average_layer_imbalance(RoutingStrategy::ExpertChoice, 10);
        assert!(sbase < aux);
        assert!(expert_choice <= sbase + 0.02);
        assert!(sbase < 1.15, "s-base scale {sbase}");
    }

    #[test]
    fn only_transformer_layers_are_scaled() {
        let model = mixtral();
        let mut engine = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 3);
        let update = engine.step(0);
        // Embedding (0) and head (last) are untouched.
        assert_eq!(update.fwd_scale[0], 1.0);
        assert_eq!(update.fwd_scale[model.num_layers() - 1], 1.0);
        // MoE layers are scaled above 1.
        assert!(model
            .transformer_layer_ids()
            .iter()
            .all(|&l| update.fwd_scale[l] >= 1.0));
        assert!(update.changed);
        // Counts are recorded per MoE layer.
        assert_eq!(engine.last_counts().len(), 32);
    }

    #[test]
    fn engine_metadata_matches_the_paper_case() {
        let model = mixtral();
        let engine = MoeEngine::new(&model, RoutingStrategy::SBase, 1);
        assert_eq!(engine.case(), DynamismCase::MixtureOfExperts);
        assert_eq!(
            engine.rebalance_frequency(),
            RebalanceFrequency::EveryIteration
        );
        assert!(engine.name().contains("s-base"));
        assert_eq!(engine.strategy(), RoutingStrategy::SBase);
    }

    #[test]
    fn layer_scale_interpolates_between_attention_and_ffn() {
        let model = mixtral();
        let engine = MoeEngine::new(&model, RoutingStrategy::SBase, 1);
        // Imbalance 1.0 → no amplification.
        assert!((engine.layer_scale(1.0) - 1.0).abs() < 1e-12);
        // Larger imbalance → proportionally larger scale, bounded by the
        // FFN fraction of the block.
        let s2 = engine.layer_scale(2.0);
        assert!(s2 > 1.5 && s2 < 2.0, "scale {s2}");
    }

    #[test]
    fn per_iteration_scales_fluctuate() {
        let model = mixtral();
        let mut engine = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 5);
        let a = engine.step(0).fwd_scale.clone();
        let b = engine.step(1).fwd_scale.clone();
        assert_ne!(a, b);
    }
}
