//! Dynamic sparse (flash) attention (paper §2.4, §4.2.4).
//!
//! The hash-based sparse attention of Pagliardini et al. buckets queries and
//! keys with locality-sensitive hashing; only blocks whose buckets collide
//! are computed by the flash-attention kernel.  Because the hash codes
//! depend on the activations, the number of surviving blocks differs per
//! layer and per step — the paper reports a ~4× increase in bubble ratio
//! over dense attention.
//!
//! The engine models each layer's block *density* (fraction of attention
//! blocks computed) as a per-layer base level with per-iteration
//! multiplicative noise, and converts density into a layer compute
//! multiplier using the analytical FLOP split between the attention score
//! terms (which scale with density) and everything else (which does not).

use crate::rng::Prng;
use dynmo_model::{CostModel, Model};
use serde::{Deserialize, Serialize};

use crate::engine::{DynamismCase, DynamismEngine, EngineState, LoadUpdate, RebalanceFrequency};

/// Snapshot layout version of [`SparseAttentionEngine`]'s engine state.
const SPARSE_ATTENTION_STATE_VERSION: u32 = 1;

/// Whether the attention is dense or dynamically sparsified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionMode {
    /// Baseline dense attention (no dynamism).
    Dense,
    /// LSH-bucketed dynamic block-sparse flash attention.
    DynamicSparse,
}

/// Dynamic-sparse-attention dynamism engine.
#[derive(Debug, Clone)]
pub struct SparseAttentionEngine {
    mode: AttentionMode,
    /// Per-layer base density of the attention block mask.
    base_density: Vec<f64>,
    /// Fraction of a transformer layer's forward FLOPs in the density-
    /// dependent attention score terms.
    score_fraction: f64,
    transformer_layers: Vec<usize>,
    num_layers: usize,
    rng: Prng,
    /// Most recent per-layer densities (for inspection / reports).
    last_density: Vec<f64>,
}

impl SparseAttentionEngine {
    /// Build an engine for `model` in the given mode.
    pub fn new(model: &Model, mode: AttentionMode, seed: u64) -> Self {
        let mut rng = Prng::seed_from(seed);
        let cost = CostModel::new(model.config().clone());
        let attn_dense = cost.attention_fwd_flops(1.0);
        let attn_proj_only = cost.attention_fwd_flops(0.0);
        let layer_total = cost.transformer_fwd_flops(1.0);
        let score_fraction = (attn_dense - attn_proj_only) / layer_total;
        let transformer_layers = model.transformer_layer_ids();
        // Per-layer base densities: LSH collisions are content-dependent, so
        // layers differ widely — draw from [0.08, 0.5].
        let base_density = (0..model.num_layers())
            .map(|l| {
                if transformer_layers.contains(&l) {
                    0.08 + rng.next_f64() * 0.42
                } else {
                    1.0
                }
            })
            .collect();
        SparseAttentionEngine {
            mode,
            base_density,
            score_fraction,
            transformer_layers,
            num_layers: model.num_layers(),
            rng,
            last_density: Vec::new(),
        }
    }

    /// The attention mode in use.
    pub fn mode(&self) -> AttentionMode {
        self.mode
    }

    /// The most recent per-layer densities.
    pub fn last_density(&self) -> &[f64] {
        &self.last_density
    }

    /// Convert an attention-block density into a layer compute multiplier.
    fn layer_scale(&self, density: f64) -> f64 {
        (1.0 - self.score_fraction) + self.score_fraction * density
    }
}

impl DynamismEngine for SparseAttentionEngine {
    fn name(&self) -> String {
        match self.mode {
            AttentionMode::Dense => "attention/dense".to_string(),
            AttentionMode::DynamicSparse => "attention/dynamic-sparse".to_string(),
        }
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::SparseAttention
    }

    fn step(&mut self, _iteration: u64) -> LoadUpdate {
        let mut update = LoadUpdate::identity(self.num_layers);
        self.last_density = vec![1.0; self.num_layers];
        if self.mode == AttentionMode::Dense {
            return update;
        }
        for &l in &self.transformer_layers {
            // Per-iteration noise: the hash buckets change with the data.
            let noise = 1.0 + (self.rng.next_f64() - 0.5) * 0.6;
            let density = (self.base_density[l] * noise).clamp(0.02, 1.0);
            self.last_density[l] = density;
            let scale = self.layer_scale(density);
            update.fwd_scale[l] = scale;
            update.bwd_scale[l] = scale;
        }
        update.changed = true;
        update
    }

    fn rebalance_frequency(&self) -> RebalanceFrequency {
        // Paper Figure 4 overhead table: "(Ideally) every iteration".
        RebalanceFrequency::EveryIteration
    }

    fn export_state(&self) -> EngineState {
        // The base-density profile is reproduced from the seed at
        // construction; the per-iteration noise stream is the mutable state.
        let mut state = EngineState::stateless(self.name(), SPARSE_ATTENTION_STATE_VERSION);
        state.rng_streams = vec![self.rng.state()];
        state
    }

    fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        state.check(&self.name(), SPARSE_ATTENTION_STATE_VERSION)?;
        if state.rng_streams.len() != 1 {
            return Err("sparse-attention state must carry exactly one RNG stream".into());
        }
        self.rng = Prng::from_state(state.rng_streams[0]);
        self.last_density.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;

    fn gpt() -> Model {
        Model::from_preset(ModelPreset::Gpt { layers: 32 })
    }

    #[test]
    fn dense_mode_is_a_no_op() {
        let mut e = SparseAttentionEngine::new(&gpt(), AttentionMode::Dense, 1);
        let update = e.step(0);
        assert!(!update.changed);
        assert!(update.fwd_scale.iter().all(|&s| s == 1.0));
        assert_eq!(e.mode(), AttentionMode::Dense);
    }

    #[test]
    fn sparse_mode_reduces_compute_and_varies_across_layers() {
        let model = gpt();
        let mut e = SparseAttentionEngine::new(&model, AttentionMode::DynamicSparse, 2);
        let update = e.step(0);
        update.validate().unwrap();
        assert!(update.changed);
        let tfm = model.transformer_layer_ids();
        let scales: Vec<f64> = tfm.iter().map(|&l| update.fwd_scale[l]).collect();
        // Every transformer layer is cheaper than dense.
        assert!(scales.iter().all(|&s| s < 1.0 && s > 0.3));
        // And they differ across layers (the imbalance source).
        let min = scales.iter().copied().fold(f64::MAX, f64::min);
        let max = scales.iter().copied().fold(f64::MIN, f64::max);
        assert!(max - min > 0.05, "min {min} max {max}");
        // Embedding and head untouched.
        assert_eq!(update.fwd_scale[0], 1.0);
        assert_eq!(update.fwd_scale[model.num_layers() - 1], 1.0);
    }

    #[test]
    fn densities_fluctuate_between_iterations() {
        let model = gpt();
        let mut e = SparseAttentionEngine::new(&model, AttentionMode::DynamicSparse, 3);
        e.step(0);
        let d0 = e.last_density().to_vec();
        e.step(1);
        let d1 = e.last_density().to_vec();
        assert_ne!(d0, d1);
        // Densities always stay within (0, 1].
        assert!(d1.iter().all(|&d| d > 0.0 && d <= 1.0));
    }

    #[test]
    fn layer_scale_is_monotonic_in_density() {
        let e = SparseAttentionEngine::new(&gpt(), AttentionMode::DynamicSparse, 4);
        assert!(e.layer_scale(0.1) < e.layer_scale(0.5));
        assert!(e.layer_scale(0.5) < e.layer_scale(1.0));
        assert!((e.layer_scale(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn engine_metadata() {
        let e = SparseAttentionEngine::new(&gpt(), AttentionMode::DynamicSparse, 5);
        assert_eq!(e.case(), DynamismCase::SparseAttention);
        assert_eq!(e.rebalance_frequency(), RebalanceFrequency::EveryIteration);
        assert!(e.name().contains("dynamic-sparse"));
    }
}
