//! The common interface every dynamism mechanism implements.
//!
//! DynMo "operates as a black-box approach where the load balancing happens
//! at regular fixed intervals, without any knowledge of whether the model
//! has changed or not" (§3.2).  The engines therefore do not talk to the
//! balancer directly: they simply mutate per-layer load multipliers, and the
//! profiler observes the result.  The [`LoadUpdate`] struct is that
//! observable state.

use serde::{Deserialize, Serialize};

/// Which of the paper's six dynamic-model cases an engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DynamismCase {
    /// §2.1 sparsely-activated Mixture of Experts.
    MixtureOfExperts,
    /// §2.2 gradual global parameter pruning.
    ParameterPruning,
    /// §2.3 adaptive layer freezing.
    LayerFreezing,
    /// §2.4 dynamic sparse (flash) attention.
    SparseAttention,
    /// §2.5 early exit of tokens.
    EarlyExit,
    /// §2.6 Mixture of Depths.
    MixtureOfDepths,
    /// Several mechanisms stacked in one model (e.g. an MoE that is also
    /// gradually pruned and freezes converged layers); see
    /// [`crate::compose::ComposedEngine`].  Not part of
    /// [`DynamismCase::ALL`], which enumerates the paper's six base cases.
    Composite,
}

impl DynamismCase {
    /// All six cases in the order the paper presents them.
    pub const ALL: [DynamismCase; 6] = [
        DynamismCase::MixtureOfExperts,
        DynamismCase::ParameterPruning,
        DynamismCase::LayerFreezing,
        DynamismCase::SparseAttention,
        DynamismCase::EarlyExit,
        DynamismCase::MixtureOfDepths,
    ];

    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            DynamismCase::MixtureOfExperts => "Mixture of Experts",
            DynamismCase::ParameterPruning => "Gradual Pruning",
            DynamismCase::LayerFreezing => "Layer Freezing",
            DynamismCase::SparseAttention => "Dynamic Sparse Attention",
            DynamismCase::EarlyExit => "Early Exit",
            DynamismCase::MixtureOfDepths => "Mixture of Depths",
            DynamismCase::Composite => "Composite",
        }
    }
}

/// A serializable snapshot of one engine's mutable state — every RNG stream
/// position, mask, counter, and scalar the engine mutates while stepping —
/// so a checkpointed training run can rebuild the engine mid-trajectory and
/// replay the exact same dynamism the original run produced.
///
/// Each engine versions its own snapshot layout independently (the
/// `version` field), so a composed stack can evolve one mechanism's state
/// format without invalidating checkpoints of the others.  Composite
/// engines nest their sub-engines' snapshots in `children`, in stack order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineState {
    /// The owning engine's `name()` at export time; imports are rejected if
    /// the restoring engine's name differs (wrong engine or wrong config).
    pub name: String,
    /// Layout version of this engine's snapshot fields.
    pub version: u32,
    /// RNG stream positions (SplitMix64 states), in engine-defined order.
    pub rng_streams: Vec<u64>,
    /// Boolean masks (frozen flags, pruning masks), engine-defined order.
    pub flags: Vec<bool>,
    /// Integer counters (e.g. the last applied pruning step).
    pub counters: Vec<u64>,
    /// Scalar state (e.g. the sparsity currently in effect).
    pub scalars: Vec<f64>,
    /// Nested sub-engine snapshots (composite engines only).
    pub children: Vec<EngineState>,
}

impl EngineState {
    /// A snapshot with no mutable state, for engines that derive everything
    /// from the iteration counter.
    pub fn stateless(name: String, version: u32) -> Self {
        EngineState {
            name,
            version,
            rng_streams: Vec::new(),
            flags: Vec::new(),
            counters: Vec::new(),
            scalars: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Check the snapshot belongs to engine `name` at layout `version`.
    pub fn check(&self, name: &str, version: u32) -> Result<(), String> {
        if self.name != name {
            return Err(format!(
                "engine state for '{}' cannot restore engine '{name}'",
                self.name
            ));
        }
        if self.version != version {
            return Err(format!(
                "engine '{name}' expects state version {version}, found {}",
                self.version
            ));
        }
        Ok(())
    }
}

/// How often DynMo should rebalance for a given dynamism case (paper §3.3.1:
/// "for MoEs and MoDs, rebalancing is needed every iteration ... in gradual
/// pruning, dynamism typically occurs every few thousand iterations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RebalanceFrequency {
    /// Rebalance after every training iteration.
    EveryIteration,
    /// Rebalance every `n` iterations.
    EveryN(u64),
}

impl RebalanceFrequency {
    /// Whether a rebalance is due at `iteration` (1-based counting of
    /// completed iterations).
    pub fn is_due(&self, iteration: u64) -> bool {
        match self {
            RebalanceFrequency::EveryIteration => true,
            RebalanceFrequency::EveryN(n) => *n != 0 && iteration.is_multiple_of(*n),
        }
    }
}

/// The per-layer load state produced by an engine after one iteration.
///
/// All vectors are indexed by *model layer id* (embedding = 0, transformer
/// blocks, head last) and have length `num_layers`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadUpdate {
    /// Multiplier on each layer's baseline forward compute (1.0 = baseline).
    pub fwd_scale: Vec<f64>,
    /// Multiplier on each layer's baseline backward compute.
    pub bwd_scale: Vec<f64>,
    /// Multiplier on each layer's static memory (weights/grads/optimizer).
    pub memory_scale: Vec<f64>,
    /// Fraction of each layer's parameters still present (pruning).
    pub param_retention: Vec<f64>,
    /// Fraction of the micro-batch's tokens still flowing *out of* each
    /// layer (1.0 = the full residual stream).  Only mechanisms that
    /// physically remove tokens from the pipeline shrink this — early exit
    /// drops exited tokens from every later layer; MoD routes tokens
    /// *around* blocks but keeps the residual stream full-width, so it
    /// stays at 1.0.  The trainer sizes each stage's outgoing boundary
    /// tensor (and hence its pipeline comm cost) from this signal.
    pub token_retention: Vec<f64>,
    /// Whether the model or control flow changed at this iteration (i.e. a
    /// dynamism event occurred).
    pub changed: bool,
}

impl LoadUpdate {
    /// An identity update (no dynamism yet) for a model with `num_layers`
    /// layers.
    pub fn identity(num_layers: usize) -> Self {
        LoadUpdate {
            fwd_scale: vec![1.0; num_layers],
            bwd_scale: vec![1.0; num_layers],
            memory_scale: vec![1.0; num_layers],
            param_retention: vec![1.0; num_layers],
            token_retention: vec![1.0; num_layers],
            changed: false,
        }
    }

    /// Number of layers covered by this update.
    pub fn num_layers(&self) -> usize {
        self.fwd_scale.len()
    }

    /// Validate internal consistency (equal lengths, non-negative scales).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.fwd_scale.len();
        if self.bwd_scale.len() != n
            || self.memory_scale.len() != n
            || self.param_retention.len() != n
            || self.token_retention.len() != n
        {
            return Err("all LoadUpdate vectors must have the same length".into());
        }
        for (name, v) in [
            ("fwd_scale", &self.fwd_scale),
            ("bwd_scale", &self.bwd_scale),
            ("memory_scale", &self.memory_scale),
            ("param_retention", &self.param_retention),
            ("token_retention", &self.token_retention),
        ] {
            if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(format!("{name} contains a negative or non-finite value"));
            }
        }
        if self.param_retention.iter().any(|x| *x > 1.0 + 1e-9) {
            return Err("param_retention must be ≤ 1".into());
        }
        if self.token_retention.iter().any(|x| *x > 1.0 + 1e-9) {
            return Err("token_retention must be ≤ 1".into());
        }
        Ok(())
    }

    /// The total compute multiplier of a layer, weighting forward and
    /// backward by the standard 1:2 ratio.
    pub fn total_scale(&self, layer: usize) -> f64 {
        (self.fwd_scale[layer] + 2.0 * self.bwd_scale[layer]) / 3.0
    }
}

/// A dynamism mechanism: advances its internal state by one training
/// iteration and reports the resulting per-layer load state.
pub trait DynamismEngine {
    /// A short name for logging and tables (e.g. "moe/s-base").
    fn name(&self) -> String;

    /// Which of the paper's six cases this engine implements.
    fn case(&self) -> DynamismCase;

    /// Advance to `iteration` (0-based) and return the resulting load state.
    fn step(&mut self, iteration: u64) -> LoadUpdate;

    /// Advance to `iteration` and return the load state as seen by an
    /// *inference* engine: the same per-layer dynamism as
    /// [`DynamismEngine::step`] — early-exit/MoD token retention still
    /// shortens downstream work, MoE routing still skews per-layer compute
    /// — but with the backward pass removed entirely (serving never runs
    /// one).  Engines whose inference behaviour differs structurally from
    /// training (e.g. a freezing engine, which is a training-only notion)
    /// may override this; the default zeroes `bwd_scale` and leaves
    /// everything else as `step` produced it.
    ///
    /// Stateful engines advance the same internal streams as `step`, so a
    /// single engine instance must be driven by either training or
    /// inference, not both.
    fn inference_step(&mut self, iteration: u64) -> LoadUpdate {
        let mut update = self.step(iteration);
        for scale in update.bwd_scale.iter_mut() {
            *scale = 0.0;
        }
        update
    }

    /// The rebalancing cadence the paper prescribes for this case.
    fn rebalance_frequency(&self) -> RebalanceFrequency;

    /// Extra per-iteration wall-clock overhead (in seconds) the mechanism
    /// itself imposes on training, outside of layer compute.  Used by
    /// baseline wrappers such as Egeria, whose CPU-side reference-model
    /// bookkeeping grows with the number of layers (paper §5.1, layer
    /// freezing discussion); DynMo's own engines impose none.
    fn extra_overhead(&self, _iteration: u64) -> f64 {
        0.0
    }

    /// Export the engine's mutable state for checkpointing.  The default is
    /// a stateless snapshot — correct only for engines whose `step` output
    /// is a pure function of the iteration counter; every stateful engine
    /// overrides this.
    fn export_state(&self) -> EngineState {
        EngineState::stateless(self.name(), 0)
    }

    /// Restore the engine to a previously exported state.  Must be given a
    /// snapshot produced by `export_state` on an engine with the same
    /// `name()`; the default accepts only the stateless snapshot shape.
    fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        state.check(&self.name(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_update_is_valid_and_neutral() {
        let u = LoadUpdate::identity(5);
        u.validate().unwrap();
        assert_eq!(u.num_layers(), 5);
        assert!(!u.changed);
        assert_eq!(u.total_scale(0), 1.0);
    }

    #[test]
    fn validation_catches_mismatched_lengths_and_bad_values() {
        let mut u = LoadUpdate::identity(3);
        u.bwd_scale.pop();
        assert!(u.validate().is_err());

        let mut u = LoadUpdate::identity(3);
        u.fwd_scale[1] = -0.5;
        assert!(u.validate().is_err());

        let mut u = LoadUpdate::identity(3);
        u.memory_scale[2] = f64::NAN;
        assert!(u.validate().is_err());

        let mut u = LoadUpdate::identity(3);
        u.param_retention[0] = 1.5;
        assert!(u.validate().is_err());
    }

    #[test]
    fn total_scale_weights_bwd_twice() {
        let mut u = LoadUpdate::identity(2);
        u.fwd_scale[0] = 1.0;
        u.bwd_scale[0] = 0.0; // frozen layer: forward only
        assert!((u.total_scale(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rebalance_frequency_due_logic() {
        assert!(RebalanceFrequency::EveryIteration.is_due(1));
        assert!(RebalanceFrequency::EveryIteration.is_due(999));
        let every100 = RebalanceFrequency::EveryN(100);
        assert!(every100.is_due(100));
        assert!(every100.is_due(200));
        assert!(!every100.is_due(150));
        assert!(!RebalanceFrequency::EveryN(0).is_due(5));
    }

    #[test]
    fn inference_step_zeroes_the_backward_and_keeps_the_forward() {
        // A minimal stateful engine: halves layer 1's compute each step.
        struct Shrinker {
            factor: f64,
        }
        impl DynamismEngine for Shrinker {
            fn name(&self) -> String {
                "shrinker".into()
            }
            fn case(&self) -> DynamismCase {
                DynamismCase::EarlyExit
            }
            fn step(&mut self, _iteration: u64) -> LoadUpdate {
                self.factor *= 0.5;
                let mut u = LoadUpdate::identity(3);
                u.fwd_scale[1] = self.factor;
                u.bwd_scale[1] = self.factor;
                u.token_retention[1] = self.factor;
                u.changed = true;
                u
            }
            fn rebalance_frequency(&self) -> RebalanceFrequency {
                RebalanceFrequency::EveryIteration
            }
        }
        let mut train = Shrinker { factor: 1.0 };
        let mut infer = Shrinker { factor: 1.0 };
        let t = train.step(0);
        let i = infer.inference_step(0);
        i.validate().unwrap();
        // Forward dynamism and token retention survive unchanged...
        assert_eq!(i.fwd_scale, t.fwd_scale);
        assert_eq!(i.token_retention, t.token_retention);
        assert_eq!(i.changed, t.changed);
        // ...but no layer claims backward time.
        assert!(i.bwd_scale.iter().all(|&s| s == 0.0));
        // The hook advances the same internal state as step().
        let i2 = infer.inference_step(1);
        assert!(i2.fwd_scale[1] < i.fwd_scale[1]);
    }

    #[test]
    fn case_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            DynamismCase::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), DynamismCase::ALL.len());
        // Composite is deliberately excluded from the six base cases.
        assert!(!DynamismCase::ALL.contains(&DynamismCase::Composite));
        assert_eq!(DynamismCase::Composite.label(), "Composite");
    }

    #[test]
    fn engine_state_check_rejects_wrong_name_and_version() {
        let state = EngineState::stateless("moe/s-base".to_string(), 1);
        assert!(state.check("moe/s-base", 1).is_ok());
        assert!(state.check("moe/aux-loss", 1).is_err());
        assert!(state.check("moe/s-base", 2).is_err());
        assert!(state.rng_streams.is_empty() && state.children.is_empty());
    }
}
