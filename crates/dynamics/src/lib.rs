//! # dynmo-dynamics
//!
//! The six dynamic-model mechanisms evaluated by the DynMo paper, each as an
//! engine that perturbs per-layer load over the course of training:
//!
//! | Paper §2.x | Engine | Source of imbalance |
//! |---|---|---|
//! | 2.1 Mixture of Experts | [`moe::MoeEngine`] | token→expert routing skew |
//! | 2.2 Parameter pruning | [`pruning::GradualPruningEngine`] | non-uniform global magnitude pruning |
//! | 2.3 Layer freezing | [`freezing::FreezingEngine`] | earlier layers freeze first |
//! | 2.4 Dynamic sparse attention | [`sparse_attention::SparseAttentionEngine`] | per-layer block sparsity from hashing |
//! | 2.5 Early exit | [`early_exit::EarlyExitEngine`] | tokens leave before later layers |
//! | 2.6 Mixture of Depths | [`mod_router::MixtureOfDepthsEngine`] | capacity routing around whole blocks |
//!
//! Every engine implements [`engine::DynamismEngine`]: at each training
//! iteration it returns a [`engine::LoadUpdate`] with per-layer forward /
//! backward compute multipliers, memory multipliers, and parameter-retention
//! fractions.  DynMo itself (in `dynmo-core`) treats these engines as black
//! boxes — it only sees the resulting profiled layer times — which mirrors
//! the paper's claim that the balancer is orthogonal to the dynamism scheme.
//!
//! The MoE/pruning engines also contain the *distributed* pieces the paper
//! implements explicitly: Algorithm 1 (global magnitude pruning via gather /
//! scatter over ranks) runs on the `dynmo-runtime` fabric in
//! [`pruning::distributed_global_prune`].
//!
//! Mechanisms also *stack*: [`compose::ComposedEngine`] drives an ordered
//! set of engines against the same model and merges their `LoadUpdate`s
//! multiplicatively (frozen layers stay frozen, token-dropping shrinks each
//! boundary exactly once), opening the combined-mechanism scenario space —
//! an MoE model that is also gradually pruned and freezes converged layers.
//! Every engine can export/import an [`engine::EngineState`] snapshot (RNG
//! stream positions, masks, counters), so checkpointed runs restore each
//! sub-engine's state independently and replay bit-for-bit.

#![warn(missing_docs)]

pub mod compose;
pub mod early_exit;
pub mod engine;
pub mod freezing;
pub mod mod_router;
pub mod moe;
pub mod pruning;
pub mod rng;
pub mod sparse_attention;
pub mod workload;

pub use compose::{merge_updates, validate_composed, ComposedEngine};
pub use early_exit::{EarlyExitEngine, EarlyExitMethod};
pub use engine::{DynamismCase, DynamismEngine, EngineState, LoadUpdate, RebalanceFrequency};
pub use freezing::{FreezingEngine, FreezingPolicy};
pub use mod_router::{MixtureOfDepthsEngine, ModConfig};
pub use moe::{MoeEngine, RoutingStrategy};
pub use pruning::{distributed_global_prune, GradualPruningEngine, PruningSchedule};
pub use sparse_attention::{AttentionMode, SparseAttentionEngine};
pub use workload::TokenStreamGenerator;
