//! A small deterministic pseudo-random number generator.
//!
//! The dynamism engines need reproducible per-iteration noise (routing
//! skew, hash-bucket densities, predictor error).  A SplitMix64-based
//! generator is sufficient for that purpose, is trivially `Clone` (so the
//! engines can be cloned into sweeps and benchmarks), and keeps results
//! bit-identical across platforms — which matters for the experiment
//! harness that regenerates the paper's figures.

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Create a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        Prng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The raw generator state, for checkpointing the stream position.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator at an exact stream position previously captured
    /// with [`Prng::state`] (checkpoint restore).
    pub fn from_state(state: u64) -> Self {
        Prng { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.  `bound` must be positive.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Prng::seed_from(42);
        let mut b = Prng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_outputs_are_in_unit_interval_and_roughly_uniform() {
        let mut rng = Prng::seed_from(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_below_respects_the_bound() {
        let mut rng = Prng::seed_from(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.next_below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        let mut rng = Prng::seed_from(1);
        let _ = rng.next_below(0);
    }

    #[test]
    fn clone_preserves_the_stream_position() {
        let mut rng = Prng::seed_from(5);
        rng.next_u64();
        let mut forked = rng.clone();
        assert_eq!(rng.next_u64(), forked.next_u64());
    }

    #[test]
    fn state_round_trip_restores_the_exact_stream_position() {
        let mut rng = Prng::seed_from(77);
        for _ in 0..13 {
            rng.next_u64();
        }
        let saved = rng.state();
        let expected: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut restored = Prng::from_state(saved);
        let replayed: Vec<u64> = (0..8).map(|_| restored.next_u64()).collect();
        assert_eq!(expected, replayed);
    }
}
