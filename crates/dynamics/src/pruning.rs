//! Gradual global magnitude pruning (paper §2.2, §3.2.1, Algorithm 1).
//!
//! Two pieces live here:
//!
//! 1. [`distributed_global_prune`] — a faithful implementation of the
//!    paper's Algorithm 1 over the `dynmo-runtime` fabric: every rank finds
//!    its local top-k parameter magnitudes, rank 0 gathers them, computes
//!    the global top-k, scatters per-rank keep-indices, and each rank
//!    compresses its shard.  The paper implements the gather/scatter with
//!    NCCL P2P because per-rank message sizes differ; the runtime's
//!    gather/scatter collectives have exactly those semantics.
//! 2. [`GradualPruningEngine`] — the training-time dynamism model: the
//!    Zhu–Gupta cubic schedule (Eq. 3) decides the target sparsity at each
//!    step, a per-layer magnitude-scale profile decides how the *global*
//!    threshold translates into non-uniform per-layer retention, and the
//!    Sputnik/cuBLAS kernel cost model translates retention into per-layer
//!    compute multipliers.

use crate::rng::Prng;
use dynmo_model::Model;
use dynmo_runtime::{Communicator, Payload, Result as RtResult};
use dynmo_sparse::{top_k_magnitudes, KernelCostModel, SpmmBackend};
use serde::{Deserialize, Serialize};

use crate::engine::{DynamismCase, DynamismEngine, EngineState, LoadUpdate, RebalanceFrequency};

/// Snapshot layout version of [`GradualPruningEngine`]'s engine state.
const PRUNING_STATE_VERSION: u32 = 1;

/// The gradual pruning schedule of Zhu & Gupta (Eq. 3 of the paper):
/// `S_t = S_f + (S_i − S_f)·(1 − (t − t0)/(n·Δt))³` for
/// `t ∈ {t0, t0+Δt, …, t0+n·Δt}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningSchedule {
    /// Initial sparsity `S_i` (usually 0).
    pub initial_sparsity: f64,
    /// Final sparsity `S_f` (0.9 in the paper's experiments).
    pub final_sparsity: f64,
    /// First pruning iteration `t0` (3000 in the paper).
    pub start_iteration: u64,
    /// Pruning frequency `Δt` (1000 in the paper).
    pub frequency: u64,
    /// Number of pruning steps `n` (4 in the paper: 3000..7000).
    pub num_steps: u64,
}

impl PruningSchedule {
    /// The paper's schedule: prune every 1000 iterations from iteration 3000
    /// to 7000, reaching 90% sparsity.
    pub fn paper_default() -> Self {
        PruningSchedule {
            initial_sparsity: 0.0,
            final_sparsity: 0.9,
            start_iteration: 3000,
            frequency: 1000,
            num_steps: 4,
        }
    }

    /// Target sparsity after iteration `t` (the most recent completed
    /// pruning step's target; 0 before pruning starts, `final_sparsity`
    /// after the schedule ends).
    pub fn sparsity_at(&self, t: u64) -> f64 {
        if t < self.start_iteration {
            return self.initial_sparsity;
        }
        let end = self.start_iteration + self.num_steps * self.frequency;
        let t_clamped = t.min(end);
        // Only completed steps count.
        let completed = (t_clamped - self.start_iteration) / self.frequency;
        let progress = completed as f64 / self.num_steps as f64;
        let remaining = (1.0 - progress).powi(3);
        self.final_sparsity + (self.initial_sparsity - self.final_sparsity) * remaining
    }

    /// Whether iteration `t` is a pruning step.
    pub fn is_pruning_step(&self, t: u64) -> bool {
        if t < self.start_iteration {
            return false;
        }
        let end = self.start_iteration + self.num_steps * self.frequency;
        t <= end && (t - self.start_iteration).is_multiple_of(self.frequency)
    }
}

/// Run Algorithm 1 (global magnitude pruning) across the ranks of `comm`.
///
/// Each rank passes its local parameter shard and the target global
/// sparsity; the function returns the pruned shard (pruned entries zeroed).
/// All ranks must call this collectively.
pub fn distributed_global_prune(
    comm: &Communicator,
    local_params: &[f32],
    sparsity: f64,
) -> RtResult<Vec<f32>> {
    let sparsity = sparsity.clamp(0.0, 1.0);
    // Line 2: k = num_params × (1 − sparsity), over the *global* parameter
    // count.  Each rank knows only its shard, so the global count is
    // obtained with an all-reduce.
    let global_count = comm.allreduce_sum_f32(&[local_params.len() as f32])?[0] as usize;
    let global_keep = ((1.0 - sparsity) * global_count as f64).round() as usize;

    // Line 3: local top-k magnitudes (capped at the shard size).
    let local_keep_cap = local_params.len().min(global_keep);
    let local_top = top_k_magnitudes(local_params, local_keep_cap);

    // Line 4: gather the candidates on rank 0.
    let gathered = comm.gather(0, Payload::F32(local_top))?;

    // Lines 5-7: rank 0 computes the global magnitude threshold — the
    // smallest magnitude that survives the global top-k over all gathered
    // candidates.
    let threshold = if comm.rank() == 0 {
        let all: Vec<f32> = gathered
            .expect("root receives the gathered payloads")
            .into_iter()
            .map(|p| p.into_f32())
            .collect::<RtResult<Vec<_>>>()?
            .into_iter()
            .flatten()
            .collect();
        let survivors = top_k_magnitudes(&all, global_keep.min(all.len()));
        let threshold = survivors.last().copied().unwrap_or(f32::INFINITY);
        vec![threshold]
    } else {
        Vec::new()
    };

    // Line 8: scatter the decision (the threshold fully determines each
    // rank's keep-indices, so broadcasting it is equivalent to scattering
    // per-rank index lists and moves far fewer bytes).
    let threshold = comm
        .broadcast(0, Payload::F32(threshold))?
        .into_f32()?
        .first()
        .copied()
        .unwrap_or(f32::INFINITY);

    // Line 9: compress the local shard.
    let mut pruned = local_params.to_vec();
    for v in pruned.iter_mut() {
        if v.abs() < threshold {
            *v = 0.0;
        }
    }
    Ok(pruned)
}

/// Gradual-pruning dynamism engine.
#[derive(Debug, Clone)]
pub struct GradualPruningEngine {
    schedule: PruningSchedule,
    kernel_cost: KernelCostModel,
    /// Per-layer magnitude scale: layers with smaller scales lose more
    /// parameters to a *global* threshold, which is exactly the source of
    /// the imbalance in §2.2.
    magnitude_scale: Vec<f64>,
    /// Representative GEMM shape (m, n, k) of a transformer layer, used to
    /// translate sparsity into a compute-time multiplier.
    gemm_shape: (usize, usize, usize),
    transformer_layers: Vec<usize>,
    num_layers: usize,
    current_sparsity: f64,
    last_pruning_step: Option<u64>,
}

impl GradualPruningEngine {
    /// Build an engine for `model` with the given schedule.
    ///
    /// # Panics
    ///
    /// Panics if `schedule.frequency` or `schedule.num_steps` is zero —
    /// both are divisors in the cubic sparsity schedule.
    pub fn new(model: &Model, schedule: PruningSchedule, seed: u64) -> Self {
        assert!(
            schedule.frequency > 0,
            "PruningSchedule::frequency must be non-zero"
        );
        assert!(
            schedule.num_steps > 0,
            "PruningSchedule::num_steps must be non-zero"
        );
        let mut rng = Prng::seed_from(seed);
        let transformer_layers = model.transformer_layer_ids();
        let num_layers = model.num_layers();
        // Per-layer magnitude scales: log-spread around 1.0 with a mild
        // depth trend (later layers tend to have larger weights and are
        // pruned less), matching empirical global-pruning profiles.
        let depth = transformer_layers.len().max(1) as f64;
        let magnitude_scale = (0..num_layers)
            .map(|l| {
                if let Some(pos) = transformer_layers.iter().position(|&t| t == l) {
                    let trend = 0.7 + 0.6 * (pos as f64 / depth);
                    let jitter = 1.0 + (rng.next_f64() - 0.5) * 0.4;
                    trend * jitter
                } else {
                    1.0
                }
            })
            .collect();
        let cfg = model.config();
        let gemm_shape = (
            cfg.hidden_size,
            cfg.seq_len * cfg.micro_batch_size,
            cfg.ffn_hidden_size,
        );
        GradualPruningEngine {
            schedule,
            kernel_cost: KernelCostModel::h100(),
            magnitude_scale,
            gemm_shape,
            transformer_layers,
            num_layers,
            current_sparsity: schedule.initial_sparsity,
            last_pruning_step: None,
        }
    }

    /// The engine's pruning schedule.
    pub fn schedule(&self) -> &PruningSchedule {
        &self.schedule
    }

    /// The global sparsity currently in effect.
    pub fn current_sparsity(&self) -> f64 {
        self.current_sparsity
    }

    /// Per-layer retention fractions for a global sparsity `s`: the global
    /// magnitude threshold τ is found by bisection on the exponential
    /// magnitude model `P(|w| ≥ τ | layer l) = exp(−τ / scale_l)` so that
    /// the *overall* retention equals `1 − s`; each layer then retains
    /// `exp(−τ / scale_l)` of its parameters.
    pub fn per_layer_retention(&self, sparsity: f64) -> Vec<f64> {
        let target = (1.0 - sparsity).clamp(0.0, 1.0);
        if target >= 1.0 {
            return vec![1.0; self.num_layers];
        }
        let scales: Vec<f64> = self
            .transformer_layers
            .iter()
            .map(|&l| self.magnitude_scale[l])
            .collect();
        let retention_at = |tau: f64| -> f64 {
            scales.iter().map(|s| (-tau / s).exp()).sum::<f64>() / scales.len() as f64
        };
        // Bisection on τ ∈ [0, large].
        let mut lo = 0.0f64;
        let mut hi = 50.0f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if retention_at(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let tau = 0.5 * (lo + hi);
        (0..self.num_layers)
            .map(|l| {
                if self.transformer_layers.contains(&l) {
                    (-tau / self.magnitude_scale[l]).exp()
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// Compute-time multiplier for a layer whose weights have the given
    /// retention, using the best available kernel (dense cuBLAS below the
    /// Sputnik crossover, Sputnik above it).
    fn compute_scale(&self, retention: f64) -> f64 {
        let sparsity = 1.0 - retention;
        let (m, n, k) = self.gemm_shape;
        let dense = self.kernel_cost.cublas_time(m, n, k);
        let backend = self.kernel_cost.best_backend(m, n, k, sparsity);
        let best = self.kernel_cost.time(backend, m, n, k, sparsity);
        (best / dense).min(1.0)
    }

    /// Whether the most recent step applied a pruning event.
    pub fn last_pruning_step(&self) -> Option<u64> {
        self.last_pruning_step
    }

    /// The backend the engine would select at the current sparsity.
    pub fn current_backend(&self) -> SpmmBackend {
        let (m, n, k) = self.gemm_shape;
        self.kernel_cost
            .best_backend(m, n, k, self.current_sparsity)
    }
}

impl DynamismEngine for GradualPruningEngine {
    fn name(&self) -> String {
        format!(
            "pruning/target-{:.0}%",
            self.schedule.final_sparsity * 100.0
        )
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::ParameterPruning
    }

    fn step(&mut self, iteration: u64) -> LoadUpdate {
        let changed =
            self.schedule.is_pruning_step(iteration) && Some(iteration) != self.last_pruning_step;
        if changed {
            self.current_sparsity = self.schedule.sparsity_at(iteration);
            self.last_pruning_step = Some(iteration);
        }
        let retention = self.per_layer_retention(self.current_sparsity);
        let mut update = LoadUpdate::identity(self.num_layers);
        for &l in &self.transformer_layers {
            let r = retention[l];
            let scale = self.compute_scale(r);
            update.fwd_scale[l] = scale;
            update.bwd_scale[l] = scale;
            // CSR storage keeps values + column indices (≈2× per retained
            // parameter relative to dense element storage), capped at dense.
            update.memory_scale[l] = (r * 1.5).min(1.0);
            update.param_retention[l] = r;
        }
        update.changed = changed;
        update
    }

    fn rebalance_frequency(&self) -> RebalanceFrequency {
        RebalanceFrequency::EveryN(self.schedule.frequency)
    }

    fn export_state(&self) -> EngineState {
        // The magnitude-scale profile is reproduced from the seed at
        // construction; the mutable state is the sparsity in effect and the
        // most recent applied pruning step (u64::MAX encodes "none yet").
        let mut state = EngineState::stateless(self.name(), PRUNING_STATE_VERSION);
        state.scalars = vec![self.current_sparsity];
        state.counters = vec![self.last_pruning_step.unwrap_or(u64::MAX)];
        state
    }

    fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        state.check(&self.name(), PRUNING_STATE_VERSION)?;
        if state.scalars.len() != 1 || state.counters.len() != 1 {
            return Err("pruning state must carry one scalar and one counter".into());
        }
        self.current_sparsity = state.scalars[0];
        self.last_pruning_step = match state.counters[0] {
            u64::MAX => None,
            step => Some(step),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;
    use dynmo_runtime::launch;
    use dynmo_sparse::prune_to_sparsity;

    fn gpt() -> Model {
        Model::from_preset(ModelPreset::Gpt { layers: 24 })
    }

    #[test]
    fn schedule_follows_the_cubic_curve() {
        let s = PruningSchedule::paper_default();
        assert_eq!(s.sparsity_at(0), 0.0);
        assert_eq!(s.sparsity_at(2999), 0.0);
        // After the first pruning step (t=4000, 1 of 4 done):
        // 0.9·(1 − (1 − 1/4)³) = 0.9·(1 − 0.4219) ≈ 0.520.
        assert!((s.sparsity_at(4000) - 0.5203).abs() < 0.01);
        // After the second step ≈ 0.7875 (the paper rounds to 79%).
        assert!((s.sparsity_at(5000) - 0.7875).abs() < 0.01);
        // After the third step ≈ 0.8859 (the paper rounds to 90% at the end).
        assert!((s.sparsity_at(6000) - 0.8859).abs() < 0.01);
        // End of schedule and beyond: final sparsity.
        assert!((s.sparsity_at(7000) - 0.9).abs() < 1e-9);
        assert!((s.sparsity_at(999_999) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn pruning_steps_are_spaced_by_the_frequency() {
        let s = PruningSchedule::paper_default();
        assert!(s.is_pruning_step(3000));
        assert!(s.is_pruning_step(4000));
        assert!(s.is_pruning_step(7000));
        assert!(!s.is_pruning_step(3500));
        assert!(!s.is_pruning_step(2000));
        assert!(!s.is_pruning_step(8000));
    }

    #[test]
    fn per_layer_retention_is_nonuniform_but_averages_to_target() {
        let engine = GradualPruningEngine::new(&gpt(), PruningSchedule::paper_default(), 7);
        let retention = engine.per_layer_retention(0.9);
        let tfm = gpt().transformer_layer_ids();
        let avg: f64 = tfm.iter().map(|&l| retention[l]).sum::<f64>() / tfm.len() as f64;
        assert!((avg - 0.1).abs() < 0.02, "average retention {avg}");
        // Retention varies across layers (the imbalance source).
        let min = tfm.iter().map(|&l| retention[l]).fold(f64::MAX, f64::min);
        let max = tfm.iter().map(|&l| retention[l]).fold(f64::MIN, f64::max);
        assert!(max > min * 1.5, "min {min} max {max}");
        // Non-transformer layers are untouched.
        assert_eq!(retention[0], 1.0);
    }

    #[test]
    fn zero_sparsity_retains_everything() {
        let engine = GradualPruningEngine::new(&gpt(), PruningSchedule::paper_default(), 7);
        assert!(engine
            .per_layer_retention(0.0)
            .iter()
            .all(|&r| (r - 1.0).abs() < 1e-12));
    }

    #[test]
    fn engine_steps_change_only_at_pruning_iterations() {
        let mut engine = GradualPruningEngine::new(&gpt(), PruningSchedule::paper_default(), 7);
        assert!(!engine.step(100).changed);
        assert!(engine.step(3000).changed);
        // Re-stepping the same iteration does not re-flag the change.
        assert!(!engine.step(3000).changed);
        assert!(!engine.step(3500).changed);
        let update = engine.step(7000);
        assert!(update.changed);
        update.validate().unwrap();
        assert!((engine.current_sparsity() - 0.9).abs() < 1e-9);
        // At 90% sparsity the compute multipliers are well below 1.
        let tfm = gpt().transformer_layer_ids();
        assert!(update.fwd_scale[tfm[0]] < 0.8);
        assert!(update.param_retention[tfm[0]] < 0.5);
        assert_eq!(engine.last_pruning_step(), Some(7000));
    }

    #[test]
    fn compute_scale_only_improves_once_sputnik_wins() {
        let engine = GradualPruningEngine::new(&gpt(), PruningSchedule::paper_default(), 7);
        // Below the 75% crossover the dense kernel is used → scale 1.0.
        assert!((engine.compute_scale(0.6) - 1.0).abs() < 1e-9);
        // Beyond the crossover the sparse kernel wins → scale < 1.
        assert!(engine.compute_scale(0.1) < 0.7);
        assert_eq!(engine.current_backend(), SpmmBackend::CublasDense);
    }

    #[test]
    fn engine_metadata() {
        let engine = GradualPruningEngine::new(&gpt(), PruningSchedule::paper_default(), 7);
        assert_eq!(engine.case(), DynamismCase::ParameterPruning);
        assert_eq!(
            engine.rebalance_frequency(),
            RebalanceFrequency::EveryN(1000)
        );
        assert!(engine.name().contains("90%"));
    }

    #[test]
    fn distributed_prune_matches_single_process_reference() {
        // 4 ranks, each with a different shard; the distributed result must
        // equal pruning the concatenated vector in one process.
        let shards: Vec<Vec<f32>> = vec![
            vec![0.9, -0.1, 0.05, 0.7],
            vec![0.3, -0.8, 0.2, 0.01],
            vec![0.6, 0.02, -0.5, 0.4],
            vec![0.15, -0.25, 0.85, 0.35],
        ];
        let sparsity = 0.5;
        let shards_for_ranks = shards.clone();
        let results = launch(4, move |ctx| {
            let comm = ctx.world();
            distributed_global_prune(&comm, &shards_for_ranks[ctx.rank()], sparsity).unwrap()
        })
        .unwrap();

        // Single-process reference.
        let mut concat: Vec<f32> = shards.iter().flatten().copied().collect();
        prune_to_sparsity(&mut concat, sparsity);
        let reference: Vec<Vec<f32>> = shards
            .iter()
            .scan(0usize, |offset, shard| {
                let start = *offset;
                *offset += shard.len();
                Some(concat[start..*offset].to_vec())
            })
            .collect();

        for (rank, (got, expected)) in results.iter().zip(reference.iter()).enumerate() {
            assert_eq!(got, expected, "rank {rank} shard mismatch");
        }
    }

    #[test]
    fn distributed_prune_handles_extreme_sparsities() {
        let results = launch(2, |ctx| {
            let comm = ctx.world();
            let shard = vec![0.5f32, -0.25, 0.75, 0.1];
            let all = distributed_global_prune(&comm, &shard, 1.0).unwrap();
            let none = distributed_global_prune(&comm, &shard, 0.0).unwrap();
            (all, none)
        })
        .unwrap();
        for (all, none) in results {
            assert!(all.iter().all(|&v| v == 0.0));
            assert_eq!(none, vec![0.5, -0.25, 0.75, 0.1]);
        }
    }
}
