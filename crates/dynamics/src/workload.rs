//! Synthetic token-routing workload generation.
//!
//! The paper's MoE experiments observe routing imbalance on real token
//! streams (Wikipedia through Mixtral-8x7B / LLaMA-MoE).  Without those
//! weights, the *distribution* of tokens over experts is what matters for
//! load: this module generates token→expert assignment counts with a
//! configurable skew (a Zipf-like popularity profile plus per-iteration
//! noise), calibrated so the resulting per-layer imbalance matches the
//! regimes reported in the paper (≈25% for token-choice routing with an
//! auxiliary loss, single-digit percent for balanced-assignment routers).

use crate::rng::Prng;

/// Generates per-expert token counts for successive iterations.
#[derive(Debug, Clone)]
pub struct TokenStreamGenerator {
    num_experts: usize,
    tokens_per_batch: usize,
    /// Zipf-like skew exponent: 0 = uniform popularity, larger = more skew.
    skew: f64,
    rng: Prng,
    /// Stationary expert popularity (re-sampled rarely; routing noise is
    /// added per iteration on top).
    popularity: Vec<f64>,
}

impl TokenStreamGenerator {
    /// Create a generator for `num_experts` experts and `tokens_per_batch`
    /// tokens per iteration with the given skew exponent.
    pub fn new(num_experts: usize, tokens_per_batch: usize, skew: f64, seed: u64) -> Self {
        assert!(num_experts > 0, "need at least one expert");
        let mut rng = Prng::seed_from(seed);
        let popularity = Self::sample_popularity(num_experts, skew, &mut rng);
        TokenStreamGenerator {
            num_experts,
            tokens_per_batch,
            skew,
            rng,
            popularity,
        }
    }

    fn sample_popularity(num_experts: usize, skew: f64, rng: &mut Prng) -> Vec<f64> {
        // Zipf-like ranks with a random permutation so the "hot" expert is
        // not always expert 0.
        let mut weights: Vec<f64> = (1..=num_experts)
            .map(|r| 1.0 / (r as f64).powf(skew))
            .collect();
        // Fisher-Yates shuffle of the weights.
        for i in (1..weights.len()).rev() {
            let j = rng.next_below(i + 1);
            weights.swap(i, j);
        }
        let total: f64 = weights.iter().sum();
        weights.iter().map(|w| w / total).collect()
    }

    /// Number of experts.
    pub fn num_experts(&self) -> usize {
        self.num_experts
    }

    /// The skew exponent in use.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Draw the per-expert token counts for one iteration.  Counts sum to
    /// `tokens_per_batch` exactly.
    pub fn next_counts(&mut self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_experts];
        // Multinomial sampling via per-token draws would be O(tokens); for
        // the batch sizes simulated here (10^5-10^6 tokens) we instead use
        // the expectation plus binomial-like jitter, which preserves the
        // mean and variance structure at a fraction of the cost.
        let mut assigned = 0usize;
        for (e, slot) in counts.iter_mut().enumerate() {
            let expectation = self.popularity[e] * self.tokens_per_batch as f64;
            // ±6% multiplicative routing noise per iteration.
            let noise = 1.0 + (self.rng.next_f64() - 0.5) * 0.12;
            let count = (expectation * noise).round().max(0.0) as usize;
            *slot = count;
            assigned += count;
        }
        // Fix up rounding drift so the total is exact.
        if assigned != self.tokens_per_batch {
            let diff = self.tokens_per_batch as i64 - assigned as i64;
            let idx = self.rng.next_below(self.num_experts);
            let new = counts[idx] as i64 + diff;
            counts[idx] = new.max(0) as usize;
        }
        counts
    }

    /// Re-sample the stationary popularity (models a distribution shift in
    /// the training data).
    pub fn reshuffle_popularity(&mut self) {
        self.popularity = Self::sample_popularity(self.num_experts, self.skew, &mut self.rng);
    }

    /// The generator's RNG stream position, for checkpointing.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Rewind the generator's RNG stream to a position captured with
    /// [`TokenStreamGenerator::rng_state`] (checkpoint restore).  The
    /// stationary popularity is reproduced by construction from the seed,
    /// so the stream position is the only mutable state.
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng = Prng::from_state(state);
    }
}

/// `max / mean` of a count vector — the per-layer load-amplification factor
/// of the most loaded expert (1.0 = perfectly balanced).
pub fn max_over_mean(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let max = *counts.iter().max().unwrap() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    if mean <= 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_the_batch_size() {
        let mut generator = TokenStreamGenerator::new(8, 4096, 0.5, 7);
        for _ in 0..20 {
            let counts = generator.next_counts();
            assert_eq!(counts.len(), 8);
            assert_eq!(counts.iter().sum::<usize>(), 4096);
        }
    }

    #[test]
    fn zero_skew_is_nearly_balanced() {
        let mut generator = TokenStreamGenerator::new(8, 100_000, 0.0, 3);
        let mut worst: f64 = 1.0;
        for _ in 0..10 {
            worst = worst.max(max_over_mean(&generator.next_counts()));
        }
        assert!(worst < 1.15, "worst imbalance {worst}");
    }

    #[test]
    fn higher_skew_produces_higher_imbalance() {
        let average_imbalance = |skew: f64| {
            let mut generator = TokenStreamGenerator::new(8, 100_000, skew, 11);
            (0..20)
                .map(|_| max_over_mean(&generator.next_counts()))
                .sum::<f64>()
                / 20.0
        };
        let low = average_imbalance(0.1);
        let high = average_imbalance(1.0);
        assert!(high > low + 0.2, "low {low}, high {high}");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut a = TokenStreamGenerator::new(16, 8192, 0.6, 99);
        let mut b = TokenStreamGenerator::new(16, 8192, 0.6, 99);
        for _ in 0..5 {
            assert_eq!(a.next_counts(), b.next_counts());
        }
        // Different seeds diverge.
        let mut c = TokenStreamGenerator::new(16, 8192, 0.6, 100);
        let same: bool = (0..5).all(|_| a.next_counts() == c.next_counts());
        assert!(!same);
    }

    #[test]
    fn reshuffle_changes_the_hot_expert_eventually() {
        let mut generator = TokenStreamGenerator::new(8, 100_000, 1.2, 5);
        let hot_before = {
            let counts = generator.next_counts();
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap()
        };
        let mut changed = false;
        for _ in 0..10 {
            generator.reshuffle_popularity();
            let counts = generator.next_counts();
            let hot = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap();
            if hot != hot_before {
                changed = true;
                break;
            }
        }
        assert!(changed, "hot expert never moved after reshuffling");
    }

    #[test]
    fn max_over_mean_edge_cases() {
        assert_eq!(max_over_mean(&[]), 1.0);
        assert_eq!(max_over_mean(&[0, 0]), 1.0);
        assert_eq!(max_over_mean(&[4, 4, 4, 4]), 1.0);
        assert_eq!(max_over_mean(&[8, 0, 0, 0]), 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn zero_experts_is_rejected() {
        let _ = TokenStreamGenerator::new(0, 100, 0.5, 1);
    }
}
