//! Adaptive layer freezing (paper §2.3, §4.2.3).
//!
//! DynMo builds on Egeria-style freezing: the training loop monitors how
//! fast each layer's loss contribution is changing and freezes layers that
//! have converged, dropping them from the backward pass and from gradient
//! exchange.  Empirically earlier layers converge first, so freezing
//! progresses front-to-back — which is exactly why it unbalances a pipeline
//! whose front stages suddenly have (almost) nothing to do.
//!
//! The engine models per-layer convergence times with a front-to-back
//! stagger plus jitter; the freezing decision is re-evaluated every
//! `check_interval` iterations (the paper quotes checks as frequent as every
//! 50 iterations, and a rebalance cadence of every ~300 iterations).

use crate::rng::Prng;
use dynmo_model::Model;
use serde::{Deserialize, Serialize};

use crate::engine::{DynamismCase, DynamismEngine, EngineState, LoadUpdate, RebalanceFrequency};

/// Snapshot layout version of [`FreezingEngine`]'s engine state.
const FREEZING_STATE_VERSION: u32 = 1;

/// Configuration of the freezing behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreezingPolicy {
    /// Iterations between convergence checks (50 in Egeria's default).
    pub check_interval: u64,
    /// Iteration at which the earliest layer becomes freezable.
    pub first_freeze_iteration: u64,
    /// Additional iterations of training each subsequent layer needs before
    /// it converges (the front-to-back stagger).
    pub stagger_per_layer: u64,
    /// Fraction of layers that never freeze (the paper's observation that
    /// later layers keep learning; Egeria keeps the tail active).
    pub never_freeze_fraction: f64,
    /// Relative jitter applied to each layer's freeze iteration.
    pub jitter: f64,
}

impl FreezingPolicy {
    /// A default calibrated to produce the ≈40% bubble ratio the paper's
    /// Figure 1 reports for SoTA freezing schemes on a 10k-iteration run.
    pub fn paper_default() -> Self {
        FreezingPolicy {
            check_interval: 50,
            first_freeze_iteration: 1000,
            stagger_per_layer: 180,
            never_freeze_fraction: 0.25,
            jitter: 0.15,
        }
    }
}

/// Layer-freezing dynamism engine.
#[derive(Debug, Clone)]
pub struct FreezingEngine {
    policy: FreezingPolicy,
    /// Iteration at which each model layer freezes (`u64::MAX` = never).
    freeze_iteration: Vec<u64>,
    /// Current frozen flags, re-evaluated at check intervals.
    frozen: Vec<bool>,
    num_layers: usize,
    /// Fraction of a layer's static memory that survives freezing (weights
    /// stay, gradients and optimizer state are dropped).
    frozen_memory_fraction: f64,
}

impl FreezingEngine {
    /// Build an engine for `model` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `policy.check_interval` is zero, which would otherwise
    /// silently disable freezing checks.
    pub fn new(model: &Model, policy: FreezingPolicy, seed: u64) -> Self {
        assert!(
            policy.check_interval > 0,
            "FreezingPolicy::check_interval must be non-zero"
        );
        let mut rng = Prng::seed_from(seed);
        let num_layers = model.num_layers();
        let transformer = model.transformer_layer_ids();
        let freezable =
            ((transformer.len() as f64) * (1.0 - policy.never_freeze_fraction)).round() as usize;
        let mut freeze_iteration = vec![u64::MAX; num_layers];
        for (pos, &layer) in transformer.iter().enumerate() {
            if pos < freezable {
                let base = policy.first_freeze_iteration + pos as u64 * policy.stagger_per_layer;
                let jitter = 1.0 + (rng.next_f64() - 0.5) * 2.0 * policy.jitter;
                freeze_iteration[layer] = (base as f64 * jitter).round().max(0.0) as u64;
            }
        }
        // Weights are param_bytes of the 16 bytes/param kept for an active
        // layer (weight + grad + Adam state) — freezing drops the rest.
        let frozen_memory_fraction =
            model.config().param_bytes as f64 / (model.config().param_bytes as f64 * 2.0 + 12.0);
        FreezingEngine {
            policy,
            freeze_iteration,
            frozen: vec![false; num_layers],
            num_layers,
            frozen_memory_fraction,
        }
    }

    /// The freezing policy in use.
    pub fn policy(&self) -> &FreezingPolicy {
        &self.policy
    }

    /// Which layers are currently frozen.
    pub fn frozen_layers(&self) -> Vec<usize> {
        self.frozen
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(l, _)| l)
            .collect()
    }

    /// Number of currently frozen layers.
    pub fn num_frozen(&self) -> usize {
        self.frozen.iter().filter(|&&f| f).count()
    }
}

impl DynamismEngine for FreezingEngine {
    fn name(&self) -> String {
        "freezing/egeria".to_string()
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::LayerFreezing
    }

    fn step(&mut self, iteration: u64) -> LoadUpdate {
        let mut changed = false;
        // Freezing decisions are only taken at check intervals, mirroring
        // Egeria's periodic reference-model evaluation.
        if iteration > 0 && iteration.is_multiple_of(self.policy.check_interval) {
            for l in 0..self.num_layers {
                if !self.frozen[l] && self.freeze_iteration[l] <= iteration {
                    self.frozen[l] = true;
                    changed = true;
                }
            }
        }
        let mut update = LoadUpdate::identity(self.num_layers);
        for l in 0..self.num_layers {
            if self.frozen[l] {
                // Frozen layers still run forward but skip backward and the
                // optimizer step.
                update.fwd_scale[l] = 1.0;
                update.bwd_scale[l] = 0.0;
                update.memory_scale[l] = self.frozen_memory_fraction;
            }
        }
        update.changed = changed;
        update
    }

    fn rebalance_frequency(&self) -> RebalanceFrequency {
        // Paper Figure 4 (overhead table): layer freezing rebalances every
        // ~300 iterations.
        RebalanceFrequency::EveryN(300)
    }

    fn export_state(&self) -> EngineState {
        // Freeze iterations are reproduced from the seed at construction;
        // the frozen mask is the mutable state.
        let mut state = EngineState::stateless(self.name(), FREEZING_STATE_VERSION);
        state.flags = self.frozen.clone();
        state
    }

    fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        state.check(&self.name(), FREEZING_STATE_VERSION)?;
        if state.flags.len() != self.frozen.len() {
            return Err(format!(
                "freezing state covers {} layers, engine has {}",
                state.flags.len(),
                self.frozen.len()
            ));
        }
        self.frozen.copy_from_slice(&state.flags);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;

    fn gpt() -> Model {
        Model::from_preset(ModelPreset::Gpt { layers: 24 })
    }

    fn engine() -> FreezingEngine {
        FreezingEngine::new(&gpt(), FreezingPolicy::paper_default(), 13)
    }

    #[test]
    fn nothing_is_frozen_before_the_first_freeze_iteration() {
        let mut e = engine();
        let update = e.step(500);
        assert_eq!(e.num_frozen(), 0);
        assert!(!update.changed);
        assert!(update.bwd_scale.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn freezing_progresses_front_to_back() {
        let mut e = engine();
        // Run far enough for roughly half the freezable layers to converge.
        let mut last_frozen = 0;
        for it in 0..=5000u64 {
            e.step(it);
            last_frozen = e.num_frozen();
        }
        assert!(last_frozen > 5, "frozen {last_frozen}");
        // The frozen set is dominated by early layers: its mean index must
        // be well below the model midpoint.
        let frozen = e.frozen_layers();
        let mean_idx: f64 = frozen.iter().map(|&l| l as f64).sum::<f64>() / frozen.len() as f64;
        assert!(mean_idx < 13.0, "mean frozen layer index {mean_idx}");
    }

    #[test]
    fn frozen_layers_keep_forward_but_drop_backward_and_memory() {
        let mut e = engine();
        for it in 0..=9000u64 {
            e.step(it);
        }
        let update = e.step(9001);
        update.validate().unwrap();
        let frozen = e.frozen_layers();
        assert!(!frozen.is_empty());
        for &l in &frozen {
            assert_eq!(update.fwd_scale[l], 1.0);
            assert_eq!(update.bwd_scale[l], 0.0);
            assert!(update.memory_scale[l] < 0.2);
        }
        // Unfrozen layers are untouched.
        let unfrozen: Vec<usize> = (0..update.num_layers())
            .filter(|l| !frozen.contains(l))
            .collect();
        for &l in &unfrozen {
            assert_eq!(update.bwd_scale[l], 1.0);
            assert_eq!(update.memory_scale[l], 1.0);
        }
    }

    #[test]
    fn some_layers_never_freeze() {
        let mut e = engine();
        for it in 0..=100_000u64 {
            if it % 50 == 0 {
                e.step(it);
            }
        }
        let transformer_count = gpt().transformer_layer_ids().len();
        assert!(e.num_frozen() < transformer_count);
        // Roughly the configured fraction stays active.
        let expected_frozen = (transformer_count as f64 * (1.0 - 0.25)).round() as usize;
        assert_eq!(e.num_frozen(), expected_frozen);
    }

    #[test]
    fn changes_are_flagged_only_when_new_layers_freeze() {
        let mut e = engine();
        let mut change_iterations = Vec::new();
        for it in 0..=4000u64 {
            if e.step(it).changed {
                change_iterations.push(it);
            }
        }
        assert!(!change_iterations.is_empty());
        // Changes only happen on check-interval boundaries.
        assert!(change_iterations
            .iter()
            .all(|it| it % e.policy().check_interval == 0));
    }

    #[test]
    fn engine_metadata() {
        let e = engine();
        assert_eq!(e.case(), DynamismCase::LayerFreezing);
        assert_eq!(e.rebalance_frequency(), RebalanceFrequency::EveryN(300));
        assert!(e.name().contains("egeria"));
    }
}
