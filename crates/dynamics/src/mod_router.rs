//! Mixture of Depths (paper §2.6, §4.2.6).
//!
//! MoD routes only the top-k most relevant tokens of a sequence *through*
//! each routed block; the rest bypass it via the residual stream.  The
//! variant in the paper (following Raposo et al.) uses expert-choice routing
//! plus a small auxiliary MLP predictor that guesses, causally, whether a
//! token will be in the top-k — and its misprediction is one of the two
//! imbalance sources the paper lists (the other being the underlying MoE).
//! Routed blocks usually alternate with dense blocks.
//!
//! The engine models: alternating routed blocks with capacity `r`, a
//! predictor that over- or under-shoots the capacity per layer per
//! iteration, and an optional interaction with MoE routing skew.

use crate::rng::Prng;
use dynmo_model::{CostModel, Model};
use serde::{Deserialize, Serialize};

use crate::engine::{DynamismCase, DynamismEngine, EngineState, LoadUpdate, RebalanceFrequency};

/// Snapshot layout version of [`MixtureOfDepthsEngine`]'s engine state.
const MOD_STATE_VERSION: u32 = 1;

/// Configuration of the Mixture-of-Depths routing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModConfig {
    /// Fraction of tokens routed *through* a routed block (Raposo et al.
    /// commonly use 12.5%; the paper's GPT configuration is milder, which
    /// is consistent with its observed ~18% bubble ratio).
    pub capacity: f64,
    /// Every `route_every`-th transformer block is a routed (MoD) block;
    /// the rest are dense.
    pub route_every: usize,
    /// Standard deviation of the predictor's relative capacity error.
    pub predictor_error: f64,
}

impl ModConfig {
    /// Defaults matching the paper's MoD experiments (alternating routed
    /// blocks, 50% capacity, modest predictor error → ≈18% bubble ratio).
    pub fn paper_default() -> Self {
        ModConfig {
            capacity: 0.5,
            route_every: 2,
            predictor_error: 0.12,
        }
    }
}

/// Mixture-of-Depths dynamism engine.
#[derive(Debug, Clone)]
pub struct MixtureOfDepthsEngine {
    config: ModConfig,
    /// All transformer layer ids (routed and dense), kept for callers that
    /// want to inspect which blocks are dense.
    transformer_layers: Vec<usize>,
    routed_layers: Vec<usize>,
    num_layers: usize,
    /// Fraction of a block's compute that the routed tokens account for
    /// (both attention and MLP are skipped by bypassing tokens, so this is
    /// ≈1.0; kept explicit for clarity and future refinement).
    routable_fraction: f64,
    rng: Prng,
    /// Last per-layer effective token fractions.
    last_fraction: Vec<f64>,
}

impl MixtureOfDepthsEngine {
    /// Build an engine for `model` with the given MoD configuration.
    pub fn new(model: &Model, config: ModConfig, seed: u64) -> Self {
        assert!(config.route_every >= 1, "route_every must be ≥ 1");
        assert!(
            (0.0..=1.0).contains(&config.capacity),
            "capacity must be in [0, 1]"
        );
        let transformer_layers = model.transformer_layer_ids();
        let routed_layers: Vec<usize> = transformer_layers
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % config.route_every == config.route_every - 1)
            .map(|(_, &l)| l)
            .collect();
        // The router itself is a negligible linear projection; everything
        // else in the block is skipped by bypassing tokens.
        let cost = CostModel::new(model.config().clone());
        let block = cost.transformer_fwd_flops(1.0);
        let router = model.config().micro_batch_size as f64
            * model.config().seq_len as f64
            * model.config().hidden_size as f64
            * 2.0;
        let routable_fraction = (block - router) / block;
        MixtureOfDepthsEngine {
            config,
            transformer_layers,
            routed_layers,
            num_layers: model.num_layers(),
            routable_fraction,
            rng: Prng::seed_from(seed),
            last_fraction: Vec::new(),
        }
    }

    /// The MoD configuration.
    pub fn config(&self) -> &ModConfig {
        &self.config
    }

    /// Layer ids of the routed (MoD) blocks.
    pub fn routed_layers(&self) -> &[usize] {
        &self.routed_layers
    }

    /// Layer ids of the dense (non-routed) transformer blocks.
    pub fn dense_layers(&self) -> Vec<usize> {
        self.transformer_layers
            .iter()
            .copied()
            .filter(|l| !self.routed_layers.contains(l))
            .collect()
    }

    /// Per-layer effective token fractions of the last step.
    pub fn last_fraction(&self) -> &[f64] {
        &self.last_fraction
    }
}

impl DynamismEngine for MixtureOfDepthsEngine {
    fn name(&self) -> String {
        format!(
            "mod/capacity-{:.0}%-every-{}",
            self.config.capacity * 100.0,
            self.config.route_every
        )
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::MixtureOfDepths
    }

    fn step(&mut self, _iteration: u64) -> LoadUpdate {
        let mut update = LoadUpdate::identity(self.num_layers);
        self.last_fraction = vec![1.0; self.num_layers];
        for &layer in &self.routed_layers {
            // Expert-choice capacity plus the causal predictor's error: the
            // predictor routes slightly more or fewer tokens than capacity.
            let error = 1.0 + self.rng.next_f64().mul_add(2.0, -1.0) * self.config.predictor_error;
            let fraction = (self.config.capacity * error).clamp(0.05, 1.0);
            self.last_fraction[layer] = fraction;
            let scale = (1.0 - self.routable_fraction) + self.routable_fraction * fraction;
            update.fwd_scale[layer] = scale;
            update.bwd_scale[layer] = scale;
        }
        // Router decisions change every forward pass.
        update.changed = true;
        update
    }

    fn rebalance_frequency(&self) -> RebalanceFrequency {
        RebalanceFrequency::EveryIteration
    }

    fn export_state(&self) -> EngineState {
        let mut state = EngineState::stateless(self.name(), MOD_STATE_VERSION);
        state.rng_streams = vec![self.rng.state()];
        state
    }

    fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        state.check(&self.name(), MOD_STATE_VERSION)?;
        if state.rng_streams.len() != 1 {
            return Err("MoD state must carry exactly one RNG stream".into());
        }
        self.rng = Prng::from_state(state.rng_streams[0]);
        self.last_fraction.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;

    fn gpt() -> Model {
        Model::from_preset(ModelPreset::Gpt { layers: 24 })
    }

    #[test]
    fn alternating_blocks_are_routed() {
        let e = MixtureOfDepthsEngine::new(&gpt(), ModConfig::paper_default(), 1);
        // 24 transformer layers, every 2nd routed → 12 routed blocks.
        assert_eq!(e.routed_layers().len(), 12);
        // Routed blocks are the odd positions (2nd, 4th, ...).
        let tfm = gpt().transformer_layer_ids();
        assert!(e.routed_layers().contains(&tfm[1]));
        assert!(!e.routed_layers().contains(&tfm[0]));
    }

    #[test]
    fn routed_blocks_process_roughly_the_capacity_fraction() {
        let model = gpt();
        let mut e = MixtureOfDepthsEngine::new(&model, ModConfig::paper_default(), 2);
        let u = e.step(0);
        u.validate().unwrap();
        assert!(u.changed);
        for &l in e.routed_layers() {
            assert!(
                u.fwd_scale[l] > 0.3 && u.fwd_scale[l] < 0.75,
                "scale {}",
                u.fwd_scale[l]
            );
        }
        // Dense blocks are untouched.
        let tfm = model.transformer_layer_ids();
        assert_eq!(u.fwd_scale[tfm[0]], 1.0);
    }

    #[test]
    fn predictor_error_produces_per_iteration_variation() {
        let model = gpt();
        let mut e = MixtureOfDepthsEngine::new(&model, ModConfig::paper_default(), 3);
        let a = e.step(0).fwd_scale.clone();
        let b = e.step(1).fwd_scale.clone();
        assert_ne!(a, b);
        // The variation is bounded by the predictor error.
        for &l in e.routed_layers() {
            assert!((a[l] - b[l]).abs() < 0.3);
        }
    }

    #[test]
    fn zero_error_capacity_is_deterministic() {
        let model = gpt();
        let cfg = ModConfig {
            capacity: 0.25,
            route_every: 2,
            predictor_error: 0.0,
        };
        let mut e = MixtureOfDepthsEngine::new(&model, cfg, 4);
        let a = e.step(0).fwd_scale.clone();
        let b = e.step(1).fwd_scale.clone();
        assert_eq!(a, b);
        for &l in e.routed_layers() {
            assert!((e.last_fraction()[l] - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_and_routed_layers_partition_the_transformer_blocks() {
        let e = MixtureOfDepthsEngine::new(&gpt(), ModConfig::paper_default(), 8);
        let dense = e.dense_layers();
        assert_eq!(dense.len() + e.routed_layers().len(), 24);
        assert!(dense.iter().all(|l| !e.routed_layers().contains(l)));
    }

    #[test]
    fn route_every_one_routes_every_block() {
        let cfg = ModConfig {
            capacity: 0.5,
            route_every: 1,
            predictor_error: 0.0,
        };
        let e = MixtureOfDepthsEngine::new(&gpt(), cfg, 5);
        assert_eq!(e.routed_layers().len(), 24);
    }

    #[test]
    #[should_panic(expected = "capacity must be in [0, 1]")]
    fn invalid_capacity_is_rejected() {
        let cfg = ModConfig {
            capacity: 1.5,
            route_every: 2,
            predictor_error: 0.0,
        };
        let _ = MixtureOfDepthsEngine::new(&gpt(), cfg, 6);
    }

    #[test]
    fn engine_metadata() {
        let e = MixtureOfDepthsEngine::new(&gpt(), ModConfig::paper_default(), 7);
        assert_eq!(e.case(), DynamismCase::MixtureOfDepths);
        assert_eq!(e.rebalance_frequency(), RebalanceFrequency::EveryIteration);
        assert!(e.name().contains("capacity-50%"));
        assert_eq!(e.config().route_every, 2);
    }
}
