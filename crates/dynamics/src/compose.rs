//! Composite dynamics: several mechanisms stacked in one model.
//!
//! Real dynamic LLMs rarely exercise a single mechanism at a time: an MoE
//! model is also gradually pruned, freezes converged layers, and may let
//! confident tokens exit early.  DynMo treats whatever load the model
//! produces as a black box (paper §3.2), so stacking mechanisms needs no
//! balancer changes — but it does need a principled way to *merge* the
//! per-layer [`LoadUpdate`]s the individual engines emit.
//!
//! [`ComposedEngine`] owns an ordered set of sub-engines and merges their
//! updates multiplicatively:
//!
//! * `fwd_scale` / `bwd_scale` / `memory_scale` — product.  Mechanisms act
//!   on orthogonal parts of a layer's work (routing skew inflates the FFN,
//!   pruning thins the GEMMs, freezing removes the backward pass), so their
//!   relative effects compound.  A frozen layer (`bwd_scale = 0`) stays
//!   frozen no matter what another mechanism claims: `0 × x = 0` — this is
//!   the pruning-mask ∩ frozen-set reconciliation.
//! * `param_retention` — product: pruning the pruned model again retains
//!   the product of the retentions.
//! * `token_retention` — product.  Only mechanisms that *physically* remove
//!   tokens from the pipeline shrink this (early exit does; MoD routes
//!   around blocks but keeps the residual stream full-width at 1.0), so a
//!   MoD + early-exit stack shrinks each downstream boundary tensor exactly
//!   once — by the early-exit survival fraction — rather than double
//!   charging the reduction.
//! * `changed` — OR: any sub-engine's dynamism event invalidates the
//!   profile.
//!
//! The product is commutative, but f64 rounding is not reorder-stable, so
//! [`ComposedEngine`] multiplies sub-updates in a *canonical* order (the
//! paper's case order, not stack order): stacks of the same mechanisms in
//! any order produce bit-identical merged updates (the per-engine internal
//! RNG streams are seeded independently and never observe stack order
//! either).
//!
//! [`validate_composed`] rejects contradictory merges — above all a layer
//! frozen by one sub-engine that still claims backward time in the merged
//! update — and [`ComposedEngine::step`] runs it on every iteration, so a
//! buggy sub-engine is caught at the merge point instead of corrupting the
//! profiler downstream.

use crate::engine::{DynamismCase, DynamismEngine, EngineState, LoadUpdate, RebalanceFrequency};

/// Version of [`ComposedEngine`]'s own snapshot layout (the sub-engines
/// version their nested snapshots independently).
const COMPOSED_STATE_VERSION: u32 = 1;

/// An ordered stack of dynamism mechanisms acting on the same model.
pub struct ComposedEngine {
    engines: Vec<Box<dyn DynamismEngine + Send>>,
}

impl ComposedEngine {
    /// Build a composite engine from an ordered, non-empty stack of
    /// sub-engines.  Rejects stacks containing the same [`DynamismCase`]
    /// twice (stacking a mechanism on itself double-applies its dynamics)
    /// and nested composites (flatten the stack instead).
    pub fn new(engines: Vec<Box<dyn DynamismEngine + Send>>) -> Result<Self, String> {
        if engines.is_empty() {
            return Err("a composite stack needs at least one engine".into());
        }
        let mut seen = Vec::new();
        for engine in &engines {
            let case = engine.case();
            if case == DynamismCase::Composite {
                return Err(format!(
                    "engine '{}' is itself composite; flatten the stack",
                    engine.name()
                ));
            }
            if seen.contains(&case) {
                return Err(format!(
                    "stack contains two {} engines; each mechanism may appear once",
                    case.label()
                ));
            }
            seen.push(case);
        }
        Ok(ComposedEngine { engines })
    }

    /// The sub-engines, in stack order.
    pub fn engines(&self) -> &[Box<dyn DynamismEngine + Send>] {
        &self.engines
    }

    /// The sub-engines' cases, in stack order.
    pub fn cases(&self) -> Vec<DynamismCase> {
        self.engines.iter().map(|e| e.case()).collect()
    }

    /// Number of stacked mechanisms.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the stack is empty (never true for a constructed engine).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Step every sub-engine and merge, surfacing merge errors instead of
    /// panicking (the fallible twin of [`DynamismEngine::step`]).
    ///
    /// Sub-updates are multiplied in canonical case order — f64 rounding is
    /// not reorder-stable, so folding in stack order would make
    /// `[A, B]` and `[B, A]` differ by an ulp; folding in case order makes
    /// commuting stacks bit-identical.
    pub fn try_step(&mut self, iteration: u64) -> Result<LoadUpdate, String> {
        let mut updates: Vec<(usize, LoadUpdate)> = self
            .engines
            .iter_mut()
            .map(|e| (canonical_rank(e.case()), e.step(iteration)))
            .collect();
        updates.sort_by_key(|&(rank, _)| rank);
        let ordered: Vec<LoadUpdate> = updates.into_iter().map(|(_, u)| u).collect();
        merge_updates(&ordered)
    }
}

/// Canonical merge position of a case: its position in the paper's order
/// ([`DynamismCase::ALL`]); `Composite` sorts last (it is rejected at
/// construction anyway).  Construction forbids duplicate cases, so the
/// rank is a total order over any valid stack.
fn canonical_rank(case: DynamismCase) -> usize {
    DynamismCase::ALL
        .iter()
        .position(|&c| c == case)
        .unwrap_or(DynamismCase::ALL.len())
}

/// Merge sub-engine updates into the stack's combined update: element-wise
/// products of all multiplier vectors, OR of the `changed` flags.  Validates
/// both the inputs and the merged result (see [`validate_composed`]).
pub fn merge_updates(updates: &[LoadUpdate]) -> Result<LoadUpdate, String> {
    let Some(first) = updates.first() else {
        return Err("cannot merge an empty update set".into());
    };
    let n = first.num_layers();
    for (i, update) in updates.iter().enumerate() {
        update
            .validate()
            .map_err(|e| format!("sub-update {i} is invalid: {e}"))?;
        if update.num_layers() != n {
            return Err(format!(
                "sub-update {i} covers {} layers, expected {n}",
                update.num_layers()
            ));
        }
    }
    let mut merged = LoadUpdate::identity(n);
    merged.changed = false;
    for update in updates {
        for l in 0..n {
            merged.fwd_scale[l] *= update.fwd_scale[l];
            merged.bwd_scale[l] *= update.bwd_scale[l];
            merged.memory_scale[l] *= update.memory_scale[l];
            merged.param_retention[l] *= update.param_retention[l];
            merged.token_retention[l] *= update.token_retention[l];
        }
        merged.changed |= update.changed;
    }
    validate_composed(updates, &merged)?;
    Ok(merged)
}

/// Validate a merged update against the sub-updates it claims to combine.
///
/// Rejects:
/// * a layer some sub-engine froze (`bwd_scale = 0`) that still claims
///   backward time in the merged update,
/// * a merged retention (parameter or token) above any single sub-engine's
///   retention — the merge must only ever shrink, and must shrink *once*
///   (the product is ≤ the minimum, so a double-applied reduction that
///   sneaks *under* every sub-update is indistinguishable from legitimate
///   compounding, but one applied on top of an already-merged vector trips
///   the per-layer `validate` ≤ 1 bound the moment any sub-engine also
///   reduces),
/// * structurally invalid merged vectors (negative, non-finite, length
///   mismatch), via [`LoadUpdate::validate`].
pub fn validate_composed(updates: &[LoadUpdate], merged: &LoadUpdate) -> Result<(), String> {
    merged
        .validate()
        .map_err(|e| format!("merged update is invalid: {e}"))?;
    let n = merged.num_layers();
    for update in updates {
        if update.num_layers() != n {
            return Err(format!(
                "sub-update covers {} layers, merged covers {n}",
                update.num_layers()
            ));
        }
    }
    for l in 0..n {
        let frozen = updates.iter().any(|u| u.bwd_scale[l] == 0.0);
        if frozen && merged.bwd_scale[l] != 0.0 {
            return Err(format!(
                "layer {l} is frozen by a sub-engine but the merged update \
                 still claims backward time ({})",
                merged.bwd_scale[l]
            ));
        }
        for u in updates {
            if merged.param_retention[l] > u.param_retention[l] + 1e-9 {
                return Err(format!(
                    "layer {l}: merged param_retention {} exceeds a sub-engine's {}",
                    merged.param_retention[l], u.param_retention[l]
                ));
            }
            if merged.token_retention[l] > u.token_retention[l] + 1e-9 {
                return Err(format!(
                    "layer {l}: merged token_retention {} exceeds a sub-engine's {}",
                    merged.token_retention[l], u.token_retention[l]
                ));
            }
        }
    }
    Ok(())
}

/// Greatest common divisor (for merging `EveryN` cadences).
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl DynamismEngine for ComposedEngine {
    fn name(&self) -> String {
        let parts: Vec<String> = self.engines.iter().map(|e| e.name()).collect();
        format!("composite[{}]", parts.join(" + "))
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::Composite
    }

    fn step(&mut self, iteration: u64) -> LoadUpdate {
        self.try_step(iteration)
            .expect("composite stack produced a contradictory merged update")
    }

    /// The stack's cadence is the finest any sub-engine needs: every
    /// iteration if any sub-engine rebalances every iteration, otherwise
    /// the gcd of the `EveryN` cadences (so every sub-engine's own due
    /// iterations remain due for the stack).
    fn rebalance_frequency(&self) -> RebalanceFrequency {
        let mut combined: Option<u64> = None;
        for engine in &self.engines {
            match engine.rebalance_frequency() {
                RebalanceFrequency::EveryIteration => {
                    return RebalanceFrequency::EveryIteration;
                }
                RebalanceFrequency::EveryN(n) if n > 0 => {
                    combined = Some(match combined {
                        Some(g) => gcd(g, n),
                        None => n,
                    });
                }
                RebalanceFrequency::EveryN(_) => {}
            }
        }
        match combined {
            Some(1) => RebalanceFrequency::EveryIteration,
            Some(n) => RebalanceFrequency::EveryN(n),
            None => RebalanceFrequency::EveryN(0),
        }
    }

    fn extra_overhead(&self, iteration: u64) -> f64 {
        self.engines
            .iter()
            .map(|e| e.extra_overhead(iteration))
            .sum()
    }

    fn export_state(&self) -> EngineState {
        let mut state = EngineState::stateless(self.name(), COMPOSED_STATE_VERSION);
        state.children = self.engines.iter().map(|e| e.export_state()).collect();
        state
    }

    fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        state.check(&self.name(), COMPOSED_STATE_VERSION)?;
        if state.children.len() != self.engines.len() {
            return Err(format!(
                "composed state carries {} sub-engine snapshots, stack has {}",
                state.children.len(),
                self.engines.len()
            ));
        }
        for (engine, child) in self.engines.iter_mut().zip(&state.children) {
            engine.import_state(child)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::early_exit::{EarlyExitEngine, EarlyExitMethod};
    use crate::freezing::{FreezingEngine, FreezingPolicy};
    use crate::mod_router::{MixtureOfDepthsEngine, ModConfig};
    use crate::moe::{MoeEngine, RoutingStrategy};
    use crate::pruning::{GradualPruningEngine, PruningSchedule};
    use dynmo_model::{Model, ModelPreset};

    fn gpt() -> Model {
        Model::from_preset(ModelPreset::Gpt { layers: 24 })
    }

    fn mixtral() -> Model {
        Model::from_preset(ModelPreset::Mixtral8x7b)
    }

    fn pruning(model: &Model) -> Box<dyn DynamismEngine + Send> {
        let schedule = PruningSchedule {
            initial_sparsity: 0.0,
            final_sparsity: 0.9,
            start_iteration: 10,
            frequency: 10,
            num_steps: 4,
        };
        Box::new(GradualPruningEngine::new(model, schedule, 5))
    }

    fn freezing(model: &Model) -> Box<dyn DynamismEngine + Send> {
        let policy = FreezingPolicy {
            check_interval: 5,
            first_freeze_iteration: 10,
            stagger_per_layer: 3,
            never_freeze_fraction: 0.25,
            jitter: 0.1,
        };
        Box::new(FreezingEngine::new(model, policy, 7))
    }

    fn early_exit(model: &Model) -> Box<dyn DynamismEngine + Send> {
        Box::new(EarlyExitEngine::new(model, EarlyExitMethod::Calm, 11))
    }

    #[test]
    fn merge_is_the_elementwise_product() {
        let mut a = LoadUpdate::identity(3);
        a.fwd_scale = vec![2.0, 1.0, 0.5];
        a.bwd_scale = vec![2.0, 1.0, 0.5];
        a.param_retention = vec![0.5, 1.0, 1.0];
        let mut b = LoadUpdate::identity(3);
        b.fwd_scale = vec![0.5, 3.0, 1.0];
        b.bwd_scale = vec![0.5, 3.0, 0.0];
        b.token_retention = vec![1.0, 0.8, 0.8];
        b.changed = true;
        let merged = merge_updates(&[a.clone(), b.clone()]).unwrap();
        for l in 0..3 {
            assert_eq!(merged.fwd_scale[l], a.fwd_scale[l] * b.fwd_scale[l]);
            assert_eq!(merged.bwd_scale[l], a.bwd_scale[l] * b.bwd_scale[l]);
            assert_eq!(
                merged.param_retention[l],
                a.param_retention[l] * b.param_retention[l]
            );
            assert_eq!(
                merged.token_retention[l],
                a.token_retention[l] * b.token_retention[l]
            );
        }
        assert!(merged.changed);
        // Frozen stays frozen.
        assert_eq!(merged.bwd_scale[2], 0.0);
    }

    #[test]
    fn merge_rejects_length_mismatch_and_invalid_subs() {
        let a = LoadUpdate::identity(3);
        let b = LoadUpdate::identity(4);
        assert!(merge_updates(&[a.clone(), b]).is_err());
        let mut bad = LoadUpdate::identity(3);
        bad.fwd_scale[0] = -1.0;
        assert!(merge_updates(&[a, bad]).is_err());
        assert!(merge_updates(&[]).is_err());
    }

    #[test]
    fn validate_rejects_a_frozen_layer_claiming_backward_time() {
        // A sub-engine froze layer 1, but the (hand-corrupted) merged
        // update still charges backward compute there.
        let mut frozen = LoadUpdate::identity(3);
        frozen.bwd_scale[1] = 0.0;
        let other = LoadUpdate::identity(3);
        let mut merged = merge_updates(&[frozen.clone(), other.clone()]).unwrap();
        assert_eq!(merged.bwd_scale[1], 0.0);
        merged.bwd_scale[1] = 0.5;
        let err = validate_composed(&[frozen, other], &merged).unwrap_err();
        assert!(err.contains("frozen"), "unexpected error: {err}");
    }

    #[test]
    fn validate_rejects_retention_above_a_sub_engines() {
        let mut exit = LoadUpdate::identity(2);
        exit.token_retention[1] = 0.6;
        let mut merged = merge_updates(&[exit.clone()]).unwrap();
        merged.token_retention[1] = 0.9; // double-merge artefact
        assert!(validate_composed(&[exit], &merged).is_err());
    }

    #[test]
    fn construction_rejects_duplicates_empty_and_nested_stacks() {
        let model = gpt();
        assert!(ComposedEngine::new(vec![]).is_err());
        let dup = ComposedEngine::new(vec![early_exit(&model), early_exit(&model)]);
        assert!(dup.is_err());
        let inner = ComposedEngine::new(vec![early_exit(&model), freezing(&model)]).unwrap();
        let nested = ComposedEngine::new(vec![Box::new(inner), pruning(&model)]);
        assert!(nested.is_err());
    }

    #[test]
    fn composed_step_equals_the_product_of_solo_steps() {
        let model = gpt();
        let mut composed =
            ComposedEngine::new(vec![pruning(&model), freezing(&model), early_exit(&model)])
                .unwrap();
        let mut solo = [pruning(&model), freezing(&model), early_exit(&model)];
        for iteration in 0..40 {
            let solo_updates: Vec<LoadUpdate> =
                solo.iter_mut().map(|e| e.step(iteration)).collect();
            let expected = merge_updates(&solo_updates).unwrap();
            let merged = composed.step(iteration);
            assert_eq!(merged, expected, "iteration {iteration}");
        }
    }

    #[test]
    fn commuting_stacks_merge_order_independently() {
        let model = gpt();
        let mut ab = ComposedEngine::new(vec![pruning(&model), early_exit(&model)]).unwrap();
        let mut ba = ComposedEngine::new(vec![early_exit(&model), pruning(&model)]).unwrap();
        for iteration in 0..30 {
            let u = ab.step(iteration);
            let v = ba.step(iteration);
            assert_eq!(u.fwd_scale, v.fwd_scale, "iteration {iteration}");
            assert_eq!(u.bwd_scale, v.bwd_scale);
            assert_eq!(u.memory_scale, v.memory_scale);
            assert_eq!(u.param_retention, v.param_retention);
            assert_eq!(u.token_retention, v.token_retention);
            assert_eq!(u.changed, v.changed);
        }
    }

    #[test]
    fn mod_plus_early_exit_shrinks_boundaries_exactly_once() {
        let model = gpt();
        let mut exit_solo = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 11);
        let mut stack = ComposedEngine::new(vec![
            Box::new(MixtureOfDepthsEngine::new(
                &model,
                ModConfig::paper_default(),
                3,
            )),
            early_exit(&model),
        ])
        .unwrap();
        for iteration in 0..10 {
            let exit = exit_solo.step(iteration);
            let merged = stack.step(iteration);
            // MoD keeps the residual stream full-width, so the merged
            // token-retention profile IS the early-exit profile: boundary
            // tensors shrink once, by the survival fraction.
            assert_eq!(merged.token_retention, exit.token_retention);
        }
    }

    #[test]
    fn rebalance_frequency_is_the_finest_needed() {
        let model = mixtral();
        let with_moe = ComposedEngine::new(vec![
            Box::new(MoeEngine::new(&model, RoutingStrategy::SBase, 1)),
            pruning(&model),
        ])
        .unwrap();
        assert_eq!(
            with_moe.rebalance_frequency(),
            RebalanceFrequency::EveryIteration
        );
        let gpt_model = gpt();
        // pruning EveryN(10) + early exit EveryN(100) → gcd 10.
        let stack = ComposedEngine::new(vec![pruning(&gpt_model), early_exit(&gpt_model)]).unwrap();
        assert_eq!(stack.rebalance_frequency(), RebalanceFrequency::EveryN(10));
    }

    #[test]
    fn metadata_and_accessors() {
        let model = gpt();
        let stack = ComposedEngine::new(vec![pruning(&model), early_exit(&model)]).unwrap();
        assert_eq!(stack.case(), DynamismCase::Composite);
        assert_eq!(stack.len(), 2);
        assert!(!stack.is_empty());
        assert_eq!(
            stack.cases(),
            vec![DynamismCase::ParameterPruning, DynamismCase::EarlyExit]
        );
        assert!(stack.name().starts_with("composite["));
        assert!(stack.name().contains(" + "));
        assert_eq!(stack.extra_overhead(5), 0.0);
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let model = gpt();
        let mut original =
            ComposedEngine::new(vec![pruning(&model), freezing(&model), early_exit(&model)])
                .unwrap();
        for it in 0..25 {
            original.step(it);
        }
        let snapshot = original.export_state();
        assert_eq!(snapshot.children.len(), 3);

        let mut restored =
            ComposedEngine::new(vec![pruning(&model), freezing(&model), early_exit(&model)])
                .unwrap();
        restored.import_state(&snapshot).unwrap();
        for it in 25..60 {
            assert_eq!(original.step(it), restored.step(it), "iteration {it}");
        }
    }

    #[test]
    fn import_rejects_mismatched_stacks() {
        let model = gpt();
        let donor = ComposedEngine::new(vec![pruning(&model), early_exit(&model)]).unwrap();
        let snapshot = donor.export_state();
        // Wrong stack size.
        let mut three =
            ComposedEngine::new(vec![pruning(&model), freezing(&model), early_exit(&model)])
                .unwrap();
        assert!(three.import_state(&snapshot).is_err());
        // Wrong order → sub-engine names no longer line up.
        let mut swapped = ComposedEngine::new(vec![early_exit(&model), pruning(&model)]).unwrap();
        assert!(swapped.import_state(&snapshot).is_err());
    }
}
