//! Early exit of tokens (paper §2.5, §4.2.5).
//!
//! With confidence-based early exit (CALM, ADP-C) a token stops propagating
//! once its prediction is confident enough, so later layers process fewer
//! and fewer tokens.  The paper observes up to a 5× increase in bubble
//! ratio, concentrated in late pipeline stages, and notes that early exit is
//! the case that "benefits greatly from re-packing" because the load loss is
//! concentrated at the end of the model.
//!
//! The engine models a per-layer survival probability: every token that has
//! passed the exit-start layer continues to the next layer with probability
//! `1 − exit_rate` (plus per-iteration noise), so the fraction of tokens
//! reaching layer `i` decays geometrically with depth — the same shape as
//! the measured CALM/ADP-C exit histograms.

use crate::rng::Prng;
use dynmo_model::Model;
use serde::{Deserialize, Serialize};

use crate::engine::{DynamismCase, DynamismEngine, EngineState, LoadUpdate, RebalanceFrequency};

/// Snapshot layout version of [`EarlyExitEngine`]'s engine state.
const EARLY_EXIT_STATE_VERSION: u32 = 1;

/// Which early-exit method's exit aggressiveness to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EarlyExitMethod {
    /// No early exit (baseline: all tokens traverse the full model).
    None,
    /// CALM-style confident adaptive language modeling (aggressive exits).
    Calm,
    /// ADP-C-style anytime dense prediction with confidence (milder exits).
    AdpC,
}

impl EarlyExitMethod {
    /// Per-layer exit probability once past the exit-start layer.
    fn exit_rate(&self) -> f64 {
        match self {
            EarlyExitMethod::None => 0.0,
            EarlyExitMethod::Calm => 0.10,
            EarlyExitMethod::AdpC => 0.06,
        }
    }

    /// Fraction of the model's depth after which tokens may start exiting.
    fn exit_start_fraction(&self) -> f64 {
        match self {
            EarlyExitMethod::None => 1.0,
            EarlyExitMethod::Calm => 0.25,
            EarlyExitMethod::AdpC => 0.4,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            EarlyExitMethod::None => "no-exit",
            EarlyExitMethod::Calm => "calm",
            EarlyExitMethod::AdpC => "adp-c",
        }
    }
}

/// Early-exit dynamism engine.
#[derive(Debug, Clone)]
pub struct EarlyExitEngine {
    method: EarlyExitMethod,
    transformer_layers: Vec<usize>,
    num_layers: usize,
    rng: Prng,
    /// Most recent per-layer surviving-token fractions.
    last_survival: Vec<f64>,
}

impl EarlyExitEngine {
    /// Build an engine for `model` with the given method.
    pub fn new(model: &Model, method: EarlyExitMethod, seed: u64) -> Self {
        EarlyExitEngine {
            method,
            transformer_layers: model.transformer_layer_ids(),
            num_layers: model.num_layers(),
            rng: Prng::seed_from(seed),
            last_survival: Vec::new(),
        }
    }

    /// The method being emulated.
    pub fn method(&self) -> EarlyExitMethod {
        self.method
    }

    /// Per-layer token-survival fractions from the most recent step.
    pub fn last_survival(&self) -> &[f64] {
        &self.last_survival
    }
}

impl DynamismEngine for EarlyExitEngine {
    fn name(&self) -> String {
        format!("early-exit/{}", self.method.label())
    }

    fn case(&self) -> DynamismCase {
        DynamismCase::EarlyExit
    }

    fn step(&mut self, _iteration: u64) -> LoadUpdate {
        let mut update = LoadUpdate::identity(self.num_layers);
        self.last_survival = vec![1.0; self.num_layers];
        if self.method == EarlyExitMethod::None {
            return update;
        }
        let depth = self.transformer_layers.len();
        let exit_start = (depth as f64 * self.method.exit_start_fraction()).floor() as usize;
        let mut surviving = 1.0f64;
        for (pos, &layer) in self.transformer_layers.iter().enumerate() {
            if pos >= exit_start {
                // Noisy per-layer exit rate: the confidence threshold
                // interacts with the batch content.
                let noise = 1.0 + (self.rng.next_f64() - 0.5) * 0.5;
                let rate = (self.method.exit_rate() * noise).clamp(0.0, 0.9);
                surviving *= 1.0 - rate;
            }
            self.last_survival[layer] = surviving;
            update.fwd_scale[layer] = surviving;
            update.bwd_scale[layer] = surviving;
            // Exited tokens leave the pipeline: every tensor downstream of
            // this layer carries only the survivors.
            update.token_retention[layer] = surviving;
        }
        // The head only processes surviving tokens too.
        let head = self.num_layers - 1;
        update.fwd_scale[head] = surviving;
        update.bwd_scale[head] = surviving;
        update.token_retention[head] = surviving;
        self.last_survival[head] = surviving;
        update.changed = true;
        update
    }

    fn rebalance_frequency(&self) -> RebalanceFrequency {
        // Paper Figure 4 overhead table: early exit rebalances every ~100
        // iterations.
        RebalanceFrequency::EveryN(100)
    }

    fn export_state(&self) -> EngineState {
        let mut state = EngineState::stateless(self.name(), EARLY_EXIT_STATE_VERSION);
        state.rng_streams = vec![self.rng.state()];
        state
    }

    fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        state.check(&self.name(), EARLY_EXIT_STATE_VERSION)?;
        if state.rng_streams.len() != 1 {
            return Err("early-exit state must carry exactly one RNG stream".into());
        }
        self.rng = Prng::from_state(state.rng_streams[0]);
        self.last_survival.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_model::ModelPreset;

    fn gpt() -> Model {
        Model::from_preset(ModelPreset::Gpt { layers: 48 })
    }

    #[test]
    fn no_exit_method_is_identity() {
        let mut e = EarlyExitEngine::new(&gpt(), EarlyExitMethod::None, 1);
        let u = e.step(0);
        assert!(!u.changed);
        assert!(u.fwd_scale.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn token_survival_decreases_monotonically_with_depth() {
        let model = gpt();
        let mut e = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 2);
        let u = e.step(0);
        u.validate().unwrap();
        let tfm = model.transformer_layer_ids();
        let survivals: Vec<f64> = tfm.iter().map(|&l| u.fwd_scale[l]).collect();
        for w in survivals.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // Early layers process all tokens.
        assert_eq!(survivals[0], 1.0);
        // The last layers process strictly fewer.
        assert!(*survivals.last().unwrap() < 0.6);
        // The head is scaled down with the final survival fraction.
        assert!(u.fwd_scale[model.num_layers() - 1] < 0.6);
    }

    #[test]
    fn calm_is_more_aggressive_than_adpc() {
        let model = gpt();
        let final_survival = |method: EarlyExitMethod| {
            let mut e = EarlyExitEngine::new(&model, method, 7);
            let u = e.step(0);
            let tfm = model.transformer_layer_ids();
            u.fwd_scale[*tfm.last().unwrap()]
        };
        let calm = final_survival(EarlyExitMethod::Calm);
        let adpc = final_survival(EarlyExitMethod::AdpC);
        assert!(calm < adpc, "calm {calm} adpc {adpc}");
        assert!(adpc < 1.0);
    }

    #[test]
    fn exit_profile_fluctuates_across_iterations() {
        let model = gpt();
        let mut e = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 3);
        e.step(0);
        let a = e.last_survival().to_vec();
        e.step(1);
        let b = e.last_survival().to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn later_layers_lose_more_load_than_early_layers() {
        // This is the property that makes early exit the case where
        // re-packing helps most (paper §4.2.5).
        let model = gpt();
        let mut e = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 4);
        let u = e.step(0);
        let tfm = model.transformer_layer_ids();
        let first_half: f64 = tfm[..24].iter().map(|&l| u.fwd_scale[l]).sum();
        let second_half: f64 = tfm[24..].iter().map(|&l| u.fwd_scale[l]).sum();
        assert!(second_half < first_half * 0.85);
    }

    #[test]
    fn engine_metadata() {
        let e = EarlyExitEngine::new(&gpt(), EarlyExitMethod::Calm, 5);
        assert_eq!(e.case(), DynamismCase::EarlyExit);
        assert_eq!(e.rebalance_frequency(), RebalanceFrequency::EveryN(100));
        assert!(e.name().contains("calm"));
        assert_eq!(e.method(), EarlyExitMethod::Calm);
        assert_eq!(EarlyExitMethod::AdpC.label(), "adp-c");
        assert_eq!(EarlyExitMethod::None.label(), "no-exit");
    }
}
