//! Request-trace generators for the serving engine.
//!
//! A trace is a time-ordered list of inference requests, each with an
//! arrival time, a prompt length (tokens to prefill) and an output length
//! (tokens to decode).  Three synthetic arrival processes cover the usual
//! serving regimes — steady Poisson traffic, a bursty load spike, and a
//! slow diurnal swing — and [`RequestTrace::replayed`] wraps an explicit
//! request list (e.g. replayed production logs) in the same type.
//!
//! Generation is deterministic: the same process, duration, length model
//! and seed always produce the same trace, so sweep cells comparing
//! fixed-capacity against autoscaled serving see byte-identical traffic.

use dynmo_dynamics::rng::Prng;
use serde::{Deserialize, Serialize};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id within the trace (assigned in arrival order).
    pub id: u64,
    /// Arrival time in seconds from the start of the trace.
    pub arrival: f64,
    /// Prompt tokens to prefill before the first output token.
    pub prompt_tokens: usize,
    /// Output tokens to decode (≥ 1; the first is produced by prefill).
    pub output_tokens: usize,
}

impl Request {
    /// Total tokens the request ever holds in the KV cache.
    pub fn total_tokens(&self) -> usize {
        self.prompt_tokens + self.output_tokens
    }
}

/// The arrival process shaping a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` requests/second.
    Poisson {
        /// Mean arrival rate in requests/second.
        rate: f64,
    },
    /// Poisson at `base_rate`, except during the spike window
    /// `[spike_start, spike_start + spike_duration)` where the rate jumps
    /// to `spike_rate` — the load-spike scenario the elastic autoscaler
    /// must absorb.
    Bursty {
        /// Off-spike arrival rate in requests/second.
        base_rate: f64,
        /// In-spike arrival rate in requests/second.
        spike_rate: f64,
        /// Spike onset in seconds.
        spike_start: f64,
        /// Spike length in seconds.
        spike_duration: f64,
    },
    /// Sinusoidal rate `mean_rate · (1 + amplitude · sin(2πt/period))` —
    /// a compressed day/night traffic swing.
    Diurnal {
        /// Mean arrival rate in requests/second.
        mean_rate: f64,
        /// Relative swing amplitude in `[0, 1)`.
        amplitude: f64,
        /// Period of one full swing in seconds.
        period: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous arrival rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                base_rate,
                spike_rate,
                spike_start,
                spike_duration,
            } => {
                if t >= spike_start && t < spike_start + spike_duration {
                    spike_rate
                } else {
                    base_rate
                }
            }
            ArrivalProcess::Diurnal {
                mean_rate,
                amplitude,
                period,
            } => mean_rate * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t / period).sin()),
        }
    }

    /// An upper bound on the rate over all times (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                base_rate,
                spike_rate,
                ..
            } => base_rate.max(spike_rate),
            ArrivalProcess::Diurnal {
                mean_rate,
                amplitude,
                ..
            } => mean_rate * (1.0 + amplitude.abs()),
        }
    }

    /// Short label for reports and sweep rows.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }
}

/// Per-request prompt/output length distribution: lengths are drawn
/// log-uniformly around the means, spanning `[mean/e^spread, mean·e^spread]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthModel {
    /// Mean prompt length in tokens.
    pub mean_prompt_tokens: usize,
    /// Mean output length in tokens.
    pub mean_output_tokens: usize,
    /// Log-spread of the lengths (0 = deterministic lengths).
    pub spread: f64,
}

impl LengthModel {
    /// A chat-style mix: medium prompts, shorter completions, ~3× spread.
    pub fn chat_default() -> Self {
        LengthModel {
            mean_prompt_tokens: 512,
            mean_output_tokens: 128,
            spread: 0.6,
        }
    }

    fn sample_len(&self, mean: usize, rng: &mut Prng) -> usize {
        let factor = ((rng.next_f64() - 0.5) * 2.0 * self.spread).exp();
        ((mean as f64 * factor).round() as usize).max(1)
    }

    /// Draw one (prompt, output) length pair.
    pub fn sample(&self, rng: &mut Prng) -> (usize, usize) {
        (
            self.sample_len(self.mean_prompt_tokens, rng),
            self.sample_len(self.mean_output_tokens, rng),
        )
    }
}

/// A time-ordered request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Trace label for reports (the arrival process, or a replay name).
    pub label: String,
    /// Requests in non-decreasing arrival order.
    pub requests: Vec<Request>,
}

impl RequestTrace {
    /// Generate a synthetic trace: arrivals from `process` over
    /// `[0, duration)` via Poisson thinning against the peak-rate
    /// envelope, lengths from `lengths`.  Deterministic in `seed`.
    pub fn generate(
        process: &ArrivalProcess,
        duration: f64,
        lengths: &LengthModel,
        seed: u64,
    ) -> Self {
        assert!(duration > 0.0, "trace duration must be positive");
        let peak = process.peak_rate();
        assert!(peak > 0.0, "arrival process must have a positive rate");
        let mut rng = Prng::seed_from(seed);
        let mut requests = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential gap at the envelope rate; (1 − u) > 0 always.
            t += -(1.0 - rng.next_f64()).ln() / peak;
            if t >= duration {
                break;
            }
            // Thinning: keep the candidate with probability rate(t)/peak.
            if rng.next_f64() * peak <= process.rate_at(t) {
                let (prompt_tokens, output_tokens) = lengths.sample(&mut rng);
                requests.push(Request {
                    id: requests.len() as u64,
                    arrival: t,
                    prompt_tokens,
                    output_tokens,
                });
            }
        }
        RequestTrace {
            label: process.label().to_string(),
            requests,
        }
    }

    /// Wrap an explicit request list (e.g. replayed production logs).
    /// Arrivals must be non-decreasing and non-negative, lengths positive;
    /// ids are re-assigned in order.
    pub fn replayed(label: &str, requests: Vec<(f64, usize, usize)>) -> Result<Self, String> {
        let mut out = Vec::with_capacity(requests.len());
        let mut last = 0.0f64;
        for (i, &(arrival, prompt_tokens, output_tokens)) in requests.iter().enumerate() {
            if !arrival.is_finite() || arrival < 0.0 {
                return Err(format!("request {i}: arrival {arrival} must be ≥ 0"));
            }
            if arrival < last {
                return Err(format!(
                    "request {i}: arrival {arrival} before previous arrival {last}"
                ));
            }
            if prompt_tokens == 0 || output_tokens == 0 {
                return Err(format!("request {i}: prompt and output must be ≥ 1 token"));
            }
            last = arrival;
            out.push(Request {
                id: i as u64,
                arrival,
                prompt_tokens,
                output_tokens,
            });
        }
        Ok(RequestTrace {
            label: label.to_string(),
            requests: out,
        })
    }

    /// Phase-shift every arrival by `offset` seconds modulo `period`,
    /// keeping the request population (lengths included) intact.  This is
    /// how several tenants share one diurnal day from independent seeds
    /// without correlated spikes: each tenant offsets its own generated
    /// trace by a different phase, so their crests land at different wall
    /// times.  Requests are re-sorted by their new arrivals (stable, so
    /// same-instant requests keep their relative order) and re-numbered.
    pub fn time_offset(&self, offset: f64, period: f64) -> RequestTrace {
        assert!(
            period > 0.0 && period.is_finite(),
            "offset period must be positive and finite"
        );
        assert!(offset.is_finite(), "offset must be finite");
        let mut requests = self.requests.clone();
        for request in &mut requests {
            request.arrival = (request.arrival + offset).rem_euclid(period);
        }
        requests.sort_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .expect("arrivals are finite")
        });
        for (i, request) in requests.iter_mut().enumerate() {
            request.id = i as u64;
        }
        RequestTrace {
            label: self.label.clone(),
            requests,
        }
    }

    /// Stretch (`factor > 1`) or compress (`factor < 1`) the trace's time
    /// axis: every arrival is multiplied by `factor`.  Order and ids are
    /// unchanged; lengths are untouched.
    pub fn scale_time(&self, factor: f64) -> RequestTrace {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "time scale factor must be positive and finite"
        );
        let mut requests = self.requests.clone();
        for request in &mut requests {
            request.arrival *= factor;
        }
        RequestTrace {
            label: self.label.clone(),
            requests,
        }
    }

    /// Deterministic k-way merge of several traces into one time-ordered
    /// trace.  Ties on arrival are broken by source order (stable sort), so
    /// the merge of the same inputs is always byte-identical; ids are
    /// re-assigned in merged arrival order.
    pub fn merge(label: &str, traces: &[RequestTrace]) -> RequestTrace {
        let mut requests: Vec<Request> = traces.iter().flat_map(|t| t.requests.clone()).collect();
        requests.sort_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .expect("arrivals are finite")
        });
        for (i, request) in requests.iter_mut().enumerate() {
            request.id = i as u64;
        }
        RequestTrace {
            label: label.to_string(),
            requests,
        }
    }

    /// Number of requests in the trace.
    pub fn num_requests(&self) -> usize {
        self.requests.len()
    }

    /// Sum of every request's prompt + output tokens.
    pub fn total_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.total_tokens() as u64).sum()
    }

    /// Sum of the requested output tokens.
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.output_tokens as u64).sum()
    }

    /// The largest single request (prompt + output tokens) — what the KV
    /// capacity must at least accommodate.
    pub fn max_request_tokens(&self) -> usize {
        self.requests
            .iter()
            .map(Request::total_tokens)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_hits_the_requested_rate() {
        let trace = RequestTrace::generate(
            &ArrivalProcess::Poisson { rate: 5.0 },
            200.0,
            &LengthModel::chat_default(),
            42,
        );
        let n = trace.num_requests() as f64;
        // 1000 expected arrivals; allow ±10%.
        assert!((n - 1000.0).abs() < 100.0, "n = {n}");
        // Sorted arrivals, ids in order, positive lengths.
        for (i, w) in trace.requests.windows(2).enumerate() {
            assert!(w[1].arrival >= w[0].arrival, "unsorted at {i}");
        }
        for (i, r) in trace.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.prompt_tokens >= 1 && r.output_tokens >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let p = ArrivalProcess::Bursty {
            base_rate: 2.0,
            spike_rate: 10.0,
            spike_start: 20.0,
            spike_duration: 10.0,
        };
        let a = RequestTrace::generate(&p, 60.0, &LengthModel::chat_default(), 7);
        let b = RequestTrace::generate(&p, 60.0, &LengthModel::chat_default(), 7);
        let c = RequestTrace::generate(&p, 60.0, &LengthModel::chat_default(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bursty_trace_concentrates_arrivals_in_the_spike() {
        let p = ArrivalProcess::Bursty {
            base_rate: 1.0,
            spike_rate: 20.0,
            spike_start: 40.0,
            spike_duration: 20.0,
        };
        let trace = RequestTrace::generate(&p, 100.0, &LengthModel::chat_default(), 3);
        let in_spike = trace
            .requests
            .iter()
            .filter(|r| r.arrival >= 40.0 && r.arrival < 60.0)
            .count() as f64;
        let outside = trace.num_requests() as f64 - in_spike;
        // 400 expected in-spike vs 80 outside.
        assert!(in_spike > 3.0 * outside, "{in_spike} vs {outside}");
    }

    #[test]
    fn diurnal_rate_swings_around_the_mean() {
        let p = ArrivalProcess::Diurnal {
            mean_rate: 4.0,
            amplitude: 0.8,
            period: 100.0,
        };
        assert!((p.rate_at(25.0) - 7.2).abs() < 1e-9); // crest
        assert!((p.rate_at(75.0) - 0.8).abs() < 1e-9); // trough
        assert!((p.peak_rate() - 7.2).abs() < 1e-9);
        let trace = RequestTrace::generate(&p, 200.0, &LengthModel::chat_default(), 5);
        let crest = trace
            .requests
            .iter()
            .filter(|r| (r.arrival % 100.0) < 50.0)
            .count();
        let trough = trace.num_requests() - crest;
        assert!(crest > 2 * trough, "{crest} vs {trough}");
    }

    #[test]
    fn length_model_spread_brackets_the_mean() {
        let lengths = LengthModel {
            mean_prompt_tokens: 100,
            mean_output_tokens: 50,
            spread: 0.5,
        };
        let mut rng = Prng::seed_from(1);
        for _ in 0..500 {
            let (p, o) = lengths.sample(&mut rng);
            assert!((60..=165).contains(&p), "prompt {p}");
            assert!((30..=83).contains(&o), "output {o}");
        }
        // Zero spread is deterministic.
        let fixed = LengthModel {
            spread: 0.0,
            ..lengths
        };
        assert_eq!(fixed.sample(&mut rng), (100, 50));
    }

    #[test]
    fn trace_mixing_is_seed_pinned_and_decorrelates_spikes() {
        // Two tenants draw independent diurnal days from their own seeds;
        // tenant B phase-shifts by half a period so the crests never
        // coincide.  The whole construction is deterministic in the seeds.
        let period = 100.0;
        let day = ArrivalProcess::Diurnal {
            mean_rate: 4.0,
            amplitude: 0.8,
            period,
        };
        let lengths = LengthModel::chat_default();
        let build = || {
            let a = RequestTrace::generate(&day, period, &lengths, 101);
            let b = RequestTrace::generate(&day, period, &lengths, 202).time_offset(50.0, period);
            (a, b)
        };
        let (a1, b1) = build();
        let (a2, b2) = build();
        assert_eq!(a1, a2, "mixing must be deterministic in the seed");
        assert_eq!(b1, b2, "offset traces must be deterministic in the seed");

        // The offset moved tenant B's crest into tenant A's trough: in the
        // first half-period A is busy and B is quiet, and vice versa.
        let first_half = |t: &RequestTrace| t.requests.iter().filter(|r| r.arrival < 50.0).count();
        let a_crest = first_half(&a1);
        let b_crest = first_half(&b1);
        assert!(
            a_crest * 2 > a1.num_requests(),
            "A peaks early: {a_crest}/{}",
            a1.num_requests()
        );
        assert!(
            b_crest * 2 < b1.num_requests(),
            "B peaks late: {b_crest}/{}",
            b1.num_requests()
        );

        // The offset is a pure phase shift: the request population (and so
        // the total token mass) is untouched.
        let b_raw = RequestTrace::generate(&day, period, &lengths, 202);
        assert_eq!(b1.num_requests(), b_raw.num_requests());
        assert_eq!(b1.total_tokens(), b_raw.total_tokens());

        // Merging keeps every request, sorts by arrival, re-ids in order.
        let merged = RequestTrace::merge("mixed", &[a1.clone(), b1.clone()]);
        assert_eq!(merged.label, "mixed");
        assert_eq!(merged.num_requests(), a1.num_requests() + b1.num_requests());
        assert_eq!(merged.total_tokens(), a1.total_tokens() + b1.total_tokens());
        for (i, w) in merged.requests.windows(2).enumerate() {
            assert!(w[1].arrival >= w[0].arrival, "merge unsorted at {i}");
        }
        for (i, r) in merged.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        // ... and is itself deterministic, byte for byte.
        let again = RequestTrace::merge("mixed", &[a2, b2]);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&again).unwrap()
        );

        // scale_time stretches arrivals without touching order or lengths.
        let slow = merged.scale_time(2.0);
        assert_eq!(slow.num_requests(), merged.num_requests());
        assert_eq!(slow.total_tokens(), merged.total_tokens());
        let last = merged.requests.last().unwrap();
        let slow_last = slow.requests.last().unwrap();
        assert!((slow_last.arrival - 2.0 * last.arrival).abs() < 1e-12);
    }

    #[test]
    fn replayed_traces_validate_ordering_and_lengths() {
        let ok = RequestTrace::replayed("prod", vec![(0.0, 10, 5), (1.5, 20, 1)]).unwrap();
        assert_eq!(ok.num_requests(), 2);
        assert_eq!(ok.label, "prod");
        assert_eq!(ok.total_tokens(), 36);
        assert_eq!(ok.total_output_tokens(), 6);
        assert_eq!(ok.max_request_tokens(), 21);
        assert!(RequestTrace::replayed("bad", vec![(2.0, 1, 1), (1.0, 1, 1)]).is_err());
        assert!(RequestTrace::replayed("bad", vec![(-1.0, 1, 1)]).is_err());
        assert!(RequestTrace::replayed("bad", vec![(0.0, 0, 1)]).is_err());
        assert!(RequestTrace::replayed("bad", vec![(0.0, 1, 0)]).is_err());
    }
}
