//! The continuous-batching scheduler of one serving replica.
//!
//! Modeled on vLLM-style iteration-level scheduling: the engine runs in
//! *steps*; at every step the batch is re-formed from whatever work exists
//! right now — one decode token for each running request, plus prompt
//! chunks of newly admitted requests (chunked prefill) up to the step's
//! token budget.  Requests enter the running set through **admission
//! control**: a request is admitted only when its worst-case KV footprint
//! (prompt + full output) fits in the replica's remaining KV budget, so
//! the engine can never be forced to preempt mid-decode.
//!
//! The scheduler *conserves* requests and tokens: nothing is dropped,
//! nothing is duplicated, every admitted request eventually decodes
//! exactly its requested output tokens — the invariants pinned by the
//! workspace-level property test.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::metrics::RequestRecord;
use crate::trace::Request;

/// Scheduler knobs of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatcherConfig {
    /// KV capacity in tokens (from the KV-cache memory model and the
    /// replica's tightest stage).
    pub kv_capacity_tokens: usize,
    /// Token budget of one engine step (decode + prefill).
    pub max_batch_tokens: usize,
    /// Cap on prefill tokens per step (chunked prefill), so a long prompt
    /// cannot starve the decode cadence of running requests.
    pub max_prefill_tokens: usize,
    /// Sliding-attention-window cap on a request's KV reservation: with a
    /// window of `w`, a request only ever caches its last `w` tokens
    /// regardless of length (see `dynmo_model::KvCacheModel`).  `None` =
    /// dense attention, reserve the full prompt + output.
    pub kv_reservation_cap: Option<usize>,
    /// Cap on concurrently running requests (vLLM's `max_num_seqs`): wide
    /// decode batches trade decode cadence for throughput, so engines keep
    /// the running set bounded and let excess demand queue at the gateway
    /// — where an elastic scale-out can still pick it up.
    pub max_running_requests: usize,
}

impl BatcherConfig {
    /// Validate the knobs (positive budgets, prefill cap within the step
    /// budget).
    pub fn validate(&self) -> Result<(), String> {
        if self.kv_capacity_tokens == 0 {
            return Err("kv_capacity_tokens must be positive".into());
        }
        if self.max_batch_tokens == 0 {
            return Err("max_batch_tokens must be positive".into());
        }
        if self.max_prefill_tokens == 0 || self.max_prefill_tokens > self.max_batch_tokens {
            return Err("max_prefill_tokens must be in 1..=max_batch_tokens".into());
        }
        if self.kv_reservation_cap == Some(0) {
            return Err("kv_reservation_cap must be positive when set".into());
        }
        if self.max_running_requests == 0 {
            return Err("max_running_requests must be positive".into());
        }
        Ok(())
    }

    /// KV tokens a request reserves for its whole lifetime.
    pub fn kv_need(&self, request: &Request) -> usize {
        match self.kv_reservation_cap {
            Some(cap) => request.total_tokens().min(cap),
            None => request.total_tokens(),
        }
    }
}

/// A request inside the running batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ActiveRequest {
    request: Request,
    /// When admission control let the request in.
    admitted: f64,
    /// Prompt tokens already prefilled.
    prompt_done: usize,
    /// Output tokens already decoded (the first is produced by the step
    /// that finishes the prefill).
    generated: usize,
    /// When the first output token was produced.
    first_token: Option<f64>,
}

/// What one engine step will execute, as planned by
/// [`ContinuousBatcher::plan_step`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepPlan {
    /// Prompt tokens prefilled this step, per running-set index.
    pub prefill_shares: Vec<(usize, usize)>,
    /// Running-set indices decoding one token this step.
    pub decoders: Vec<usize>,
    /// Total prompt tokens this step.
    pub prefill_tokens: usize,
    /// Total decode tokens this step.
    pub decode_tokens: usize,
}

impl StepPlan {
    /// Total tokens the step processes.
    pub fn batch_tokens(&self) -> usize {
        self.prefill_tokens + self.decode_tokens
    }
}

/// Iteration-level scheduler state of one replica.
#[derive(Debug, Clone)]
pub struct ContinuousBatcher {
    config: BatcherConfig,
    waiting: VecDeque<Request>,
    running: Vec<ActiveRequest>,
    /// KV tokens reserved by running requests (prompt + full output each).
    reserved_kv_tokens: usize,
    peak_kv_tokens: usize,
    total_prefill_tokens: u64,
    total_decode_tokens: u64,
}

impl ContinuousBatcher {
    /// Create an empty scheduler.  Panics on invalid knobs.
    pub fn new(config: BatcherConfig) -> Self {
        config.validate().expect("valid batcher config");
        ContinuousBatcher {
            config,
            waiting: VecDeque::new(),
            running: Vec::new(),
            reserved_kv_tokens: 0,
            peak_kv_tokens: 0,
            total_prefill_tokens: 0,
            total_decode_tokens: 0,
        }
    }

    /// The scheduler's knobs.
    pub fn config(&self) -> &BatcherConfig {
        &self.config
    }

    /// A request the scheduler can serve: at least one prompt and one
    /// output token (the first output token is produced by the prefill),
    /// and a KV footprint within the replica's budget.  Traces enforce
    /// this already; the batcher's public entry points re-check it so a
    /// hand-built `Request` fails loudly instead of wedging mid-decode.
    fn check_servable(&self, request: &Request) {
        assert!(
            request.prompt_tokens >= 1 && request.output_tokens >= 1,
            "request {} must have ≥ 1 prompt and ≥ 1 output token",
            request.id
        );
        assert!(
            self.config.kv_need(request) <= self.config.kv_capacity_tokens,
            "request {} needs {} KV tokens but the replica caps at {}",
            request.id,
            self.config.kv_need(request),
            self.config.kv_capacity_tokens
        );
    }

    /// Hand a request to the replica (it queues until admission control
    /// lets it in).  Panics if the request can never fit the KV budget —
    /// the engine validates capacities against the trace up front.
    pub fn enqueue(&mut self, request: Request) {
        self.check_servable(&request);
        self.waiting.push_back(request);
    }

    /// Whether any queued or running work exists.
    pub fn has_work(&self) -> bool {
        !self.waiting.is_empty() || !self.running.is_empty()
    }

    /// Queued requests not yet admitted.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Requests in the running batch.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Arrival time of the oldest request still waiting for admission.
    pub fn oldest_waiting_arrival(&self) -> Option<f64> {
        self.waiting.front().map(|r| r.arrival)
    }

    /// Outstanding work in tokens: un-prefetched prompt plus un-decoded
    /// output across both queued and running requests — the autoscaler's
    /// backlog signal and its scale-in victim-selection key.
    pub fn outstanding_tokens(&self) -> usize {
        let queued: usize = self.waiting.iter().map(Request::total_tokens).sum();
        let running: usize = self
            .running
            .iter()
            .map(|a| {
                (a.request.prompt_tokens - a.prompt_done) + (a.request.output_tokens - a.generated)
            })
            .sum();
        queued + running
    }

    /// KV tokens currently reserved by the running set.
    pub fn reserved_kv_tokens(&self) -> usize {
        self.reserved_kv_tokens
    }

    /// Largest KV reservation ever held.
    pub fn peak_kv_tokens(&self) -> usize {
        self.peak_kv_tokens
    }

    /// Total prompt tokens prefilled so far.
    pub fn total_prefill_tokens(&self) -> u64 {
        self.total_prefill_tokens
    }

    /// Total output tokens decoded so far.
    pub fn total_decode_tokens(&self) -> u64 {
        self.total_decode_tokens
    }

    /// Whether admission control would accept one more request of the
    /// given KV footprint right now.
    fn can_admit(&self, need: usize) -> bool {
        self.running.len() < self.config.max_running_requests
            && self.reserved_kv_tokens + need <= self.config.kv_capacity_tokens
    }

    /// Gateway-side admission: move `request` straight into the running
    /// set if the running-set cap and the KV budget allow, bypassing the
    /// local queue (the serving engine keeps its FCFS queue at the
    /// gateway, where a scale-out can still redistribute it).  Returns
    /// whether the request was admitted.
    pub fn try_admit(&mut self, request: Request, now: f64) -> bool {
        self.check_servable(&request);
        let need = self.config.kv_need(&request);
        if !self.can_admit(need) {
            return false;
        }
        self.reserved_kv_tokens += need;
        self.peak_kv_tokens = self.peak_kv_tokens.max(self.reserved_kv_tokens);
        self.running.push(ActiveRequest {
            request,
            admitted: now,
            prompt_done: 0,
            generated: 0,
            first_token: None,
        });
        true
    }

    /// Admission control over the local queue: move queued requests
    /// (arrived by `now`, FCFS) into the running set while the running-set
    /// cap and their worst-case KV footprint allow.  Head-of-line blocking
    /// is deliberate — admitting around a stuck head would starve large
    /// requests forever.
    pub fn admit(&mut self, now: f64) {
        while let Some(front) = self.waiting.front() {
            if front.arrival > now || !self.can_admit(self.config.kv_need(front)) {
                break;
            }
            let request = self.waiting.pop_front().expect("front exists");
            let admitted = self.try_admit(request, now);
            debug_assert!(admitted, "can_admit implies try_admit succeeds");
        }
    }

    /// Form the next engine step at time `now`: admit what fits, then fill
    /// the token budget — every decoding request contributes one token,
    /// then prompt chunks (FCFS over the running set) take the rest, up to
    /// the chunked-prefill cap.  Returns `None` when no work is runnable at
    /// `now`.
    pub fn plan_step(&mut self, now: f64) -> Option<StepPlan> {
        self.admit(now);
        let mut decoders = Vec::new();
        let mut prefill_shares = Vec::new();
        let mut budget = self.config.max_batch_tokens;
        for (idx, active) in self.running.iter().enumerate() {
            if budget == 0 {
                break;
            }
            if active.prompt_done == active.request.prompt_tokens {
                decoders.push(idx);
                budget -= 1;
            }
        }
        let mut prefill_budget = self.config.max_prefill_tokens.min(budget);
        let mut prefill_tokens = 0usize;
        for (idx, active) in self.running.iter().enumerate() {
            if prefill_budget == 0 {
                break;
            }
            let remaining = active.request.prompt_tokens - active.prompt_done;
            if remaining > 0 {
                let chunk = remaining.min(prefill_budget);
                prefill_shares.push((idx, chunk));
                prefill_budget -= chunk;
                prefill_tokens += chunk;
            }
        }
        if decoders.is_empty() && prefill_shares.is_empty() {
            return None;
        }
        Some(StepPlan {
            decode_tokens: decoders.len(),
            decoders,
            prefill_shares,
            prefill_tokens,
        })
    }

    /// Apply a step planned by [`ContinuousBatcher::plan_step`] that
    /// finished at `end`: advance prefills (a prompt that completes
    /// produces the request's first output token in the same step), decode
    /// one token per decoder, retire finished requests and free their KV.
    /// Returns the records of requests completed by this step.
    pub fn commit_step(&mut self, plan: &StepPlan, replica: usize, end: f64) -> Vec<RequestRecord> {
        for &(idx, chunk) in &plan.prefill_shares {
            let active = &mut self.running[idx];
            active.prompt_done += chunk;
            self.total_prefill_tokens += chunk as u64;
            if active.prompt_done == active.request.prompt_tokens {
                // Prefill emits the first output token.
                active.generated = 1;
                active.first_token = Some(end);
                self.total_decode_tokens += 1;
            }
        }
        for &idx in &plan.decoders {
            let active = &mut self.running[idx];
            active.generated += 1;
            self.total_decode_tokens += 1;
        }
        let mut completed = Vec::new();
        let mut kept = Vec::with_capacity(self.running.len());
        for active in self.running.drain(..) {
            if active.generated >= active.request.output_tokens {
                self.reserved_kv_tokens -= self.config.kv_need(&active.request);
                completed.push(RequestRecord {
                    id: active.request.id,
                    replica,
                    arrival: active.request.arrival,
                    admitted: active.admitted,
                    first_token: active.first_token.expect("completed implies first token"),
                    completion: end,
                    prompt_tokens: active.request.prompt_tokens,
                    output_tokens: active.request.output_tokens,
                });
            } else {
                kept.push(active);
            }
        }
        self.running = kept;
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(kv: usize) -> BatcherConfig {
        BatcherConfig {
            kv_capacity_tokens: kv,
            max_batch_tokens: 64,
            max_prefill_tokens: 32,
            kv_reservation_cap: None,
            max_running_requests: 16,
        }
    }

    fn request(id: u64, arrival: f64, prompt: usize, output: usize) -> Request {
        Request {
            id,
            arrival,
            prompt_tokens: prompt,
            output_tokens: output,
        }
    }

    /// Drive the batcher with 1-second steps until drained; returns the
    /// completion records in completion order.
    fn drain(batcher: &mut ContinuousBatcher, mut now: f64) -> Vec<RequestRecord> {
        let mut records = Vec::new();
        let mut guard = 0;
        while batcher.has_work() {
            guard += 1;
            assert!(guard < 100_000, "batcher failed to drain");
            match batcher.plan_step(now) {
                Some(plan) => {
                    now += 1.0;
                    records.extend(batcher.commit_step(&plan, 0, now));
                }
                None => {
                    now = batcher
                        .oldest_waiting_arrival()
                        .expect("no plan implies a future arrival")
                        .max(now);
                    batcher.admit(now);
                }
            }
        }
        records
    }

    #[test]
    fn a_single_request_prefills_then_decodes() {
        let mut b = ContinuousBatcher::new(config(1_000));
        // 48-token prompt (2 chunked steps at 32), 4 output tokens.
        b.enqueue(request(0, 0.0, 48, 4));
        let records = drain(&mut b, 0.0);
        assert_eq!(records.len(), 1);
        let r = records[0];
        // Steps: prefill 32, prefill 16 (+ first token), 3 decode steps.
        assert_eq!(r.first_token, 2.0);
        assert_eq!(r.completion, 5.0);
        assert_eq!(b.total_prefill_tokens(), 48);
        assert_eq!(b.total_decode_tokens(), 4);
        assert_eq!(b.reserved_kv_tokens(), 0);
        assert_eq!(b.peak_kv_tokens(), 52);
    }

    #[test]
    fn decode_has_priority_over_prefill_in_the_budget() {
        let mut b = ContinuousBatcher::new(config(10_000));
        b.enqueue(request(0, 0.0, 32, 50));
        // First step prefills request 0 entirely.
        let plan = b.plan_step(0.0).unwrap();
        assert_eq!(plan.prefill_tokens, 32);
        b.commit_step(&plan, 0, 1.0);
        // A newcomer's prefill shares the step with the decode.
        b.enqueue(request(1, 1.0, 32, 1));
        let plan = b.plan_step(1.0).unwrap();
        assert_eq!(plan.decode_tokens, 1);
        assert_eq!(plan.prefill_tokens, 32);
        assert_eq!(plan.batch_tokens(), 33);
    }

    #[test]
    fn admission_respects_the_kv_budget_fcfs() {
        // Capacity 100: request 0 (60) admits, request 1 (60) must wait,
        // request 2 (20) waits behind it (no head-of-line bypass).
        let mut b = ContinuousBatcher::new(config(100));
        b.enqueue(request(0, 0.0, 50, 10));
        b.enqueue(request(1, 0.0, 50, 10));
        b.enqueue(request(2, 0.0, 10, 10));
        b.admit(0.0);
        assert_eq!(b.running_len(), 1);
        assert_eq!(b.queue_len(), 2);
        assert_eq!(b.reserved_kv_tokens(), 60);
        // Everything still completes once capacity frees up.
        let records = drain(&mut b, 0.0);
        assert_eq!(records.len(), 3);
        assert!(b.peak_kv_tokens() <= 100);
    }

    #[test]
    fn oversized_requests_are_rejected_up_front() {
        let mut b = ContinuousBatcher::new(config(100));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.enqueue(request(0, 0.0, 90, 20));
        }));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "≥ 1 prompt and ≥ 1 output token")]
    fn zero_prompt_requests_are_rejected() {
        let mut b = ContinuousBatcher::new(config(100));
        b.enqueue(request(0, 0.0, 0, 5));
    }

    #[test]
    #[should_panic(expected = "≥ 1 prompt and ≥ 1 output token")]
    fn zero_output_requests_are_rejected_by_try_admit() {
        let mut b = ContinuousBatcher::new(config(100));
        b.try_admit(request(0, 0.0, 5, 0), 0.0);
    }

    #[test]
    fn requests_and_tokens_are_conserved() {
        let mut b = ContinuousBatcher::new(config(500));
        let requests = [
            request(0, 0.0, 40, 8),
            request(1, 0.5, 10, 30),
            request(2, 3.0, 100, 2),
            request(3, 3.0, 7, 7),
        ];
        for r in requests {
            b.enqueue(r);
        }
        let records = drain(&mut b, 0.0);
        assert_eq!(records.len(), 4);
        let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let expected_prefill: u64 = requests.iter().map(|r| r.prompt_tokens as u64).sum();
        let expected_decode: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
        assert_eq!(b.total_prefill_tokens(), expected_prefill);
        assert_eq!(b.total_decode_tokens(), expected_decode);
        for r in &records {
            assert!(r.admitted >= r.arrival);
            assert!(r.first_token > r.admitted);
            assert!(r.completion >= r.first_token);
        }
        assert_eq!(b.reserved_kv_tokens(), 0);
        assert_eq!(b.outstanding_tokens(), 0);
    }

    #[test]
    fn plan_step_is_none_before_the_first_arrival() {
        let mut b = ContinuousBatcher::new(config(500));
        b.enqueue(request(0, 5.0, 10, 1));
        assert!(b.plan_step(1.0).is_none());
        assert!(b.has_work());
        assert_eq!(b.oldest_waiting_arrival(), Some(5.0));
        assert!(b.plan_step(5.0).is_some());
    }

    #[test]
    fn outstanding_tokens_track_remaining_work() {
        let mut b = ContinuousBatcher::new(config(500));
        b.enqueue(request(0, 0.0, 32, 4));
        assert_eq!(b.outstanding_tokens(), 36);
        let plan = b.plan_step(0.0).unwrap();
        b.commit_step(&plan, 0, 1.0); // prefill done + first token
        assert_eq!(b.outstanding_tokens(), 3);
        // Config accessor and validation.
        assert!(b.config().validate().is_ok());
        let good = config(10);
        assert!(BatcherConfig {
            kv_capacity_tokens: 0,
            ..good
        }
        .validate()
        .is_err());
        assert!(BatcherConfig {
            max_batch_tokens: 4,
            max_prefill_tokens: 8,
            ..good
        }
        .validate()
        .is_err());
        assert!(BatcherConfig {
            kv_reservation_cap: Some(0),
            ..good
        }
        .validate()
        .is_err());
        assert!(BatcherConfig {
            max_running_requests: 0,
            ..good
        }
        .validate()
        .is_err());
    }

    #[test]
    fn the_running_set_cap_bounds_concurrency() {
        let mut cfg = config(10_000);
        cfg.max_running_requests = 2;
        let mut b = ContinuousBatcher::new(cfg);
        for id in 0..4 {
            assert_eq!(b.try_admit(request(id, 0.0, 8, 4), 0.0), id < 2);
        }
        assert_eq!(b.running_len(), 2);
        // Queued admission respects the same cap.
        b.enqueue(request(9, 0.0, 8, 4));
        b.admit(0.0);
        assert_eq!(b.running_len(), 2);
        assert_eq!(b.queue_len(), 1);
        // Draining frees a slot and the queue drains through it.
        let records = drain(&mut b, 0.0);
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn windowed_attention_caps_the_reservation() {
        let mut cfg = config(100);
        cfg.kv_reservation_cap = Some(64);
        let mut b = ContinuousBatcher::new(cfg);
        // 90 + 20 = 110 total tokens, but the window caps the cache at 64,
        // so the request is admissible (dense attention would reject it).
        b.enqueue(request(0, 0.0, 90, 20));
        b.admit(0.0);
        assert_eq!(b.running_len(), 1);
        assert_eq!(b.reserved_kv_tokens(), 64);
        let records = drain(&mut b, 0.0);
        assert_eq!(records.len(), 1);
        assert_eq!(b.reserved_kv_tokens(), 0);
    }
}
