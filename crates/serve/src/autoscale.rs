//! The elastic autoscaler: SLO-driven replica scale-out / scale-in.
//!
//! The serving engine runs `r` pipeline replicas against a shared request
//! stream.  The autoscaler watches two pressure signals —
//!
//! * the windowed p99 TTFT of recently *completed* requests, and
//! * the age of the oldest request still waiting for admission (queue
//!   pressure shows up here long before it shows up in completions) —
//!
//! and, when either breaches the TTFT target, asks the fleet's
//! [`dynmo_core::elastic::JobManager`] for one replica's worth of GPUs
//! (the serving analogue of the paper's §3.4.2 elastic release, run in
//! reverse).  New replicas come online after a provisioning delay and are
//! partitioned by the same balancer family that laid out the original
//! replicas.  When the spike passes — backlog far below capacity and p99
//! comfortably inside the target — replicas are drained and their GPUs
//! handed back.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::metrics::percentile;

/// Autoscaler policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// Seconds between policy evaluations.
    pub check_interval: f64,
    /// Look-back window (seconds) for the completed-request p99.
    pub window: f64,
    /// The p99 TTFT the autoscaler defends, in seconds.
    pub ttft_p99_target: f64,
    /// Seconds a new replica takes to come online after scale-out.
    pub provision_delay: f64,
    /// Minimum seconds between scaling actions.
    pub cooldown: f64,
    /// Replica count floor.
    pub min_replicas: usize,
    /// Replica count ceiling (bounded by the fleet's free GPUs too).
    pub max_replicas: usize,
    /// Scale in only when outstanding work is below this fraction of one
    /// replica's KV capacity *and* p99 is below this fraction of target.
    pub scale_in_fraction: f64,
}

impl AutoscalerConfig {
    /// A responsive default for the compressed sweep time-scales: check
    /// every 2 s over a 20 s window, provision in 5 s, 8 s cooldown.
    pub fn responsive(ttft_p99_target: f64, min_replicas: usize, max_replicas: usize) -> Self {
        AutoscalerConfig {
            check_interval: 2.0,
            window: 20.0,
            ttft_p99_target,
            provision_delay: 5.0,
            cooldown: 8.0,
            min_replicas,
            max_replicas,
            scale_in_fraction: 0.25,
        }
    }
}

/// What the policy decided at one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDecision {
    /// Keep the current replica set.
    Hold,
    /// Add one replica.
    Out,
    /// Drain and release one replica.
    In,
}

/// A recorded scaling action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Simulation time of the action, in seconds.
    pub time: f64,
    /// +n = replicas added, −n = replicas released.
    pub delta: i64,
    /// Active + provisioning replicas after the action.
    pub replicas_after: usize,
    /// The windowed p99 TTFT observed at decision time.
    pub observed_ttft_p99: f64,
    /// Outstanding (queued + running) tokens at decision time.
    pub backlog_tokens: usize,
}

/// The pressure signals an evaluation consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSignals {
    /// Replicas active or provisioning.
    pub replicas: usize,
    /// Outstanding (queued + running) tokens across all replicas.
    pub backlog_tokens: usize,
    /// Age in seconds of the oldest request not yet admitted (0 if none).
    pub oldest_wait: f64,
    /// One replica's KV capacity in tokens.
    pub capacity_tokens_per_replica: usize,
}

/// SLO-driven scaling policy over a sliding completion window.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    /// `(completion_time, ttft)` of completions still inside the look-back
    /// window — pruned on every insert, so memory stays `O(window)` over
    /// arbitrarily long serving runs.
    completions: VecDeque<(f64, f64)>,
    next_check: f64,
    last_action: f64,
}

impl Autoscaler {
    /// Create an autoscaler with the given policy.
    pub fn new(config: AutoscalerConfig) -> Self {
        assert!(config.check_interval > 0.0, "check interval must be > 0");
        assert!(config.min_replicas >= 1, "at least one replica must remain");
        assert!(
            config.max_replicas >= config.min_replicas,
            "max_replicas must be ≥ min_replicas"
        );
        Autoscaler {
            config,
            completions: VecDeque::new(),
            next_check: config.check_interval,
            last_action: f64::NEG_INFINITY,
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Record one completed request's TTFT.  Entries that have aged past
    /// the look-back window ending at `time` are pruned on the way in:
    /// completions arrive in (nearly) non-decreasing time order, so the
    /// stale prefix sits at the front and the history can never grow
    /// beyond one window's worth of completions — previously it grew
    /// unboundedly for the whole run.
    pub fn record_completion(&mut self, time: f64, ttft: f64) {
        let horizon = time - self.config.window;
        while self.completions.front().is_some_and(|&(t, _)| t < horizon) {
            self.completions.pop_front();
        }
        self.completions.push_back((time, ttft));
    }

    /// Completions currently retained in the sliding window (test hook for
    /// the memory bound).
    pub fn window_len(&self) -> usize {
        self.completions.len()
    }

    /// The p99 TTFT over completions inside the look-back window ending at
    /// `now`.
    pub fn windowed_ttft_p99(&self, now: f64) -> f64 {
        let mut window: Vec<f64> = self
            .completions
            .iter()
            .filter(|(t, _)| *t >= now - self.config.window)
            .map(|(_, ttft)| *ttft)
            .collect();
        window.sort_by(|a, b| a.partial_cmp(b).expect("ttfts are finite"));
        percentile(&window, 0.99)
    }

    /// Whether a policy check is due at `now` — lets the caller skip
    /// computing the (non-trivial) load signals on steps where
    /// [`Autoscaler::evaluate`] would return Hold without reading them.
    pub fn check_due(&self, now: f64) -> bool {
        now >= self.next_check
    }

    /// Tell the policy a scaling action actually happened at `now`,
    /// starting the cooldown.  The caller (not [`Autoscaler::evaluate`])
    /// reports this, because a decision can be dropped — e.g. a scale-out
    /// when the fleet has no free GPUs because a draining replica still
    /// holds its block — and a dropped decision must not burn the
    /// cooldown, or the deployment would sit under-provisioned through an
    /// SLO breach even after the GPUs free up.
    pub fn note_action(&mut self, now: f64) {
        self.last_action = now;
    }

    /// Evaluate the policy at `now`.  Returns [`ScaleDecision::Hold`]
    /// between check intervals and during cooldown; the caller applies the
    /// decision (subject to fleet availability) and, if it took effect,
    /// reports it via [`Autoscaler::note_action`].
    pub fn evaluate(&mut self, now: f64, signals: &LoadSignals) -> ScaleDecision {
        if now < self.next_check {
            return ScaleDecision::Hold;
        }
        // Catch up the check grid (steps can jump over several intervals).
        while self.next_check <= now {
            self.next_check += self.config.check_interval;
        }
        // Trim completions that can never re-enter the window.
        let horizon = now - self.config.window;
        self.completions.retain(|(t, _)| *t >= horizon);

        if now - self.last_action < self.config.cooldown {
            return ScaleDecision::Hold;
        }
        let p99 = self.windowed_ttft_p99(now);
        let target = self.config.ttft_p99_target;
        let pressured = p99 > target || signals.oldest_wait > target;
        if pressured && signals.replicas < self.config.max_replicas {
            return ScaleDecision::Out;
        }
        let relaxed = p99 < self.config.scale_in_fraction * target
            && signals.oldest_wait < self.config.scale_in_fraction * target
            && (signals.backlog_tokens as f64)
                < self.config.scale_in_fraction
                    * signals.capacity_tokens_per_replica as f64
                    * (signals.replicas.saturating_sub(1)) as f64;
        if relaxed && signals.replicas > self.config.min_replicas {
            return ScaleDecision::In;
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AutoscalerConfig {
        AutoscalerConfig::responsive(1.0, 1, 4)
    }

    fn signals(replicas: usize, backlog: usize, oldest_wait: f64) -> LoadSignals {
        LoadSignals {
            replicas,
            backlog_tokens: backlog,
            oldest_wait,
            capacity_tokens_per_replica: 10_000,
        }
    }

    #[test]
    fn holds_between_check_intervals() {
        let mut scaler = Autoscaler::new(config());
        // Breaching signals, but the first check is not due yet.
        assert_eq!(
            scaler.evaluate(0.5, &signals(1, 50_000, 10.0)),
            ScaleDecision::Hold
        );
        assert_eq!(
            scaler.evaluate(2.5, &signals(1, 50_000, 10.0)),
            ScaleDecision::Out
        );
    }

    #[test]
    fn scales_out_on_completed_ttft_p99_breach() {
        let mut scaler = Autoscaler::new(config());
        for i in 0..100 {
            scaler.record_completion(1.0 + i as f64 * 0.01, 3.0);
        }
        assert!(scaler.windowed_ttft_p99(2.5) > 1.0);
        assert_eq!(
            scaler.evaluate(2.5, &signals(1, 0, 0.0)),
            ScaleDecision::Out
        );
    }

    #[test]
    fn scales_out_on_queue_pressure_before_any_completion() {
        let mut scaler = Autoscaler::new(config());
        assert_eq!(
            scaler.evaluate(2.5, &signals(1, 80_000, 5.0)),
            ScaleDecision::Out
        );
    }

    #[test]
    fn respects_cooldown_and_max_replicas() {
        let mut scaler = Autoscaler::new(config());
        assert_eq!(
            scaler.evaluate(2.5, &signals(1, 0, 9.0)),
            ScaleDecision::Out
        );
        scaler.note_action(2.5); // the caller applied the decision
                                 // Still pressured, but inside the cooldown.
        assert_eq!(
            scaler.evaluate(4.5, &signals(2, 0, 9.0)),
            ScaleDecision::Hold
        );
        // After the cooldown, pressure still there → scale again.
        assert_eq!(
            scaler.evaluate(12.5, &signals(2, 0, 9.0)),
            ScaleDecision::Out
        );
        scaler.note_action(12.5);
        // At the ceiling, never scales out.
        assert_eq!(
            scaler.evaluate(24.5, &signals(4, 0, 9.0)),
            ScaleDecision::Hold
        );
    }

    #[test]
    fn a_dropped_decision_does_not_burn_the_cooldown() {
        // The engine drops an Out decision (fleet exhausted) and does NOT
        // call note_action: the very next check may scale out again.
        let mut scaler = Autoscaler::new(config());
        assert_eq!(
            scaler.evaluate(2.5, &signals(1, 0, 9.0)),
            ScaleDecision::Out
        );
        assert_eq!(
            scaler.evaluate(4.5, &signals(1, 0, 9.0)),
            ScaleDecision::Out
        );
    }

    #[test]
    fn scales_in_only_when_quiet_and_above_the_floor() {
        let mut scaler = Autoscaler::new(config());
        for i in 0..50 {
            scaler.record_completion(10.0 + i as f64 * 0.1, 0.05);
        }
        // Quiet: tiny p99, no waiters, backlog ≪ capacity of r−1 replicas.
        assert_eq!(
            scaler.evaluate(16.5, &signals(3, 100, 0.0)),
            ScaleDecision::In
        );
        // At the floor, holds instead.
        let mut floor = Autoscaler::new(config());
        for i in 0..50 {
            floor.record_completion(10.0 + i as f64 * 0.1, 0.05);
        }
        assert_eq!(
            floor.evaluate(16.5, &signals(1, 100, 0.0)),
            ScaleDecision::Hold
        );
    }

    /// Regression: `record_completion` used to push into an unpruned `Vec`,
    /// so a long serving run retained every completion ever made.  The
    /// history must stay bounded by the look-back window no matter how many
    /// completions stream through.
    #[test]
    fn completion_history_stays_bounded_over_a_million_completions() {
        let mut scaler = Autoscaler::new(config()); // 20 s window
        let rate = 100.0; // completions per second
        for i in 0..1_000_000u64 {
            scaler.record_completion(i as f64 / rate, 0.05);
        }
        // At 100/s over a 20 s window at most ~2001 entries are live.
        let bound = (config().window * rate) as usize + 1;
        assert!(
            scaler.window_len() <= bound,
            "window holds {} completions, bound is {bound}",
            scaler.window_len()
        );
        // And the retained window still answers queries correctly.
        let now = 999_999.0 / rate;
        assert!(scaler.windowed_ttft_p99(now) > 0.0);
    }

    #[test]
    fn window_drops_stale_completions() {
        let mut scaler = Autoscaler::new(config());
        scaler.record_completion(1.0, 50.0);
        // At t=100 the old terrible TTFT has aged out of the 20 s window.
        assert_eq!(scaler.windowed_ttft_p99(100.0), 0.0);
        assert_eq!(
            scaler.evaluate(100.0, &signals(1, 0, 0.0)),
            ScaleDecision::Hold
        );
    }
}
