//! The serving engine: replicated pipelines, continuous batching, elastic
//! autoscaling.
//!
//! A deployment is `r` *replicas*, each a `p`-stage pipeline holding the
//! whole model (layers placed by one of DynMo's balancers, subject to the
//! device memory capacity).  Requests wait in a single FCFS gateway
//! queue, and whichever replica is ready first pulls from it through
//! admission control — so a replica provisioned mid-spike immediately
//! relieves the shared backlog.  Each replica runs vLLM-style engine
//! steps formed by its [`crate::batching::ContinuousBatcher`], and each
//! step is priced by the event-driven pipeline simulator's forward-only mode
//! ([`PipelineSimulator::simulate_forward`]): the step's batch is split
//! into micro-batches that flow down the pipeline paying per-boundary α–β
//! communication costs.
//!
//! The dynamism engines plug in through their inference hook
//! ([`DynamismEngine::inference_step`]): per engine step the current
//! `LoadUpdate` rescales every layer's per-token forward time (MoE routing
//! skew, early-exit survival) and shrinks boundary tensors via token
//! retention — so CALM-style early exit directly shortens decode work and
//! wire bytes, exactly as it shortened training iterations.
//!
//! When an [`crate::autoscale::Autoscaler`] is attached, breaching the
//! TTFT target acquires one replica's worth of GPUs from the fleet's
//! [`JobManager`], lays out the new replica with the configured balancer
//! (re-partitioning against the *current* dynamism state), and brings it
//! online after a provisioning delay; quiet periods drain and release
//! replicas back — the paper's elastic release run in reverse.

use dynmo_core::balancer::{
    BalanceObjective, BalanceRequest, DiffusionBalancer, LoadBalancer, PartitionBalancer,
};
use dynmo_core::elastic::{JobManager, MockJobManager};
use dynmo_core::profiler::profile_layers;
use dynmo_dynamics::{DynamismEngine, LoadUpdate};
use dynmo_model::ClusterConfig;
use dynmo_model::{DeviceSpec, KvCacheModel, Model, ModelPreset};
use dynmo_pipeline::load::{boundary_retention_profile, StageLoad};
use dynmo_pipeline::{CommCostModel, PipelineSimulator, ScheduleKind, StageAssignment};
use dynmo_telemetry::{MarkerKind, NullRecorder, Recorder, StreamingSummary};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::autoscale::{Autoscaler, AutoscalerConfig, LoadSignals, ScaleDecision, ScaleEvent};
use crate::batching::{BatcherConfig, ContinuousBatcher, StepPlan};
use crate::metrics::{LatencySummary, RequestRecord, ServingReport, SloTarget};
use crate::trace::RequestTrace;

/// Which balancer family lays out replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServeBalancerKind {
    /// Centralized contiguous partitioning (by execution time).
    Partition,
    /// Decentralized diffusion (by execution time).
    Diffusion,
}

impl ServeBalancerKind {
    /// Label for reports and sweep rows.
    pub fn label(&self) -> &'static str {
        match self {
            ServeBalancerKind::Partition => "partition",
            ServeBalancerKind::Diffusion => "diffusion",
        }
    }

    fn build(&self) -> Box<dyn LoadBalancer> {
        match self {
            ServeBalancerKind::Partition => Box::new(PartitionBalancer::new()),
            ServeBalancerKind::Diffusion => Box::new(DiffusionBalancer::new()),
        }
    }
}

/// Full description of a serving deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Tenant identity carried into reports, fleet ledger owner tags, and
    /// telemetry (a multi-tenant fleet runs one deployment per tenant).
    pub tenant: String,
    /// Model served by every replica.
    pub preset: ModelPreset,
    /// Pipeline stages (GPUs) per replica.
    pub stages: usize,
    /// GPUs per node (for the α–β link locality of the comm model).
    pub gpus_per_node: usize,
    /// Accelerator every worker runs on.
    pub device: DeviceSpec,
    /// Replicas online at t = 0.
    pub initial_replicas: usize,
    /// Hard ceiling on replicas (sizes the GPU fleet; fixed-capacity
    /// deployments set this equal to `initial_replicas`).
    pub max_replicas: usize,
    /// Balancer family laying out each replica's stages.
    pub balancer: ServeBalancerKind,
    /// Micro-batches one engine step is split into as it flows down the
    /// pipeline (1 = no intra-step pipelining).
    pub microbatches: usize,
    /// Token budget of one engine step.
    pub max_batch_tokens: usize,
    /// Chunked-prefill cap per step.
    pub max_prefill_tokens: usize,
    /// Cost of one decode token relative to one prefill token (decode is
    /// memory-bound; > 1 on real accelerators).
    pub decode_cost_factor: f64,
    /// Cap on concurrently running requests per replica (vLLM's
    /// `max_num_seqs`): bounds the decode batch width so the decode
    /// cadence stays interactive; excess demand queues at the gateway.
    pub max_running_requests: usize,
    /// Sliding attention window (tokens); `None` = dense attention.
    pub attention_window: Option<usize>,
    /// Fraction of post-weights device memory given to the KV cache.
    pub kv_memory_fraction: f64,
    /// The SLO goodput is measured against.
    pub slo: SloTarget,
    /// Autoscaler policy; `None` = fixed capacity.
    pub autoscaler: Option<AutoscalerConfig>,
    /// Keep per-request lifecycle records in the report.  `false` drops
    /// them as they complete, so a run's memory stays O(1) in trace length
    /// (the summaries, counters, and goodput are unaffected: they are
    /// accumulated online).
    pub retain_records: bool,
}

impl ServingConfig {
    /// A small fixed-capacity deployment used by tests and examples:
    /// GPT-24 on 4-stage replicas of modest accelerators
    /// ([`DeviceSpec::test_device`]), chat SLOs.  The modest device keeps
    /// one replica's capacity at a few requests/second, so the congestion
    /// regimes the autoscaler exists for appear at trace scales that
    /// simulate in milliseconds (an H100 fleet serving a 350M-parameter
    /// model would need six orders of magnitude more traffic to queue).
    pub fn small(initial_replicas: usize) -> Self {
        ServingConfig {
            tenant: "default".into(),
            preset: ModelPreset::Gpt { layers: 24 },
            stages: 4,
            gpus_per_node: 4,
            device: DeviceSpec::test_device(16 * 1024 * 1024 * 1024),
            initial_replicas,
            max_replicas: initial_replicas,
            balancer: ServeBalancerKind::Partition,
            microbatches: 4,
            max_batch_tokens: 2048,
            max_prefill_tokens: 512,
            decode_cost_factor: 4.0,
            max_running_requests: 32,
            attention_window: None,
            kv_memory_fraction: 0.8,
            slo: SloTarget::chat_default(),
            autoscaler: None,
            retain_records: true,
        }
    }

    /// Enable autoscaling up to `max_replicas` with the given policy.
    pub fn with_autoscaler(mut self, config: AutoscalerConfig) -> Self {
        self.max_replicas = self.max_replicas.max(config.max_replicas);
        self.autoscaler = Some(config);
        self
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages == 0 || self.gpus_per_node == 0 {
            return Err("stages and gpus_per_node must be positive".into());
        }
        if self.initial_replicas == 0 {
            return Err("at least one initial replica is required".into());
        }
        if self.max_replicas < self.initial_replicas {
            return Err("max_replicas must be ≥ initial_replicas".into());
        }
        if self.microbatches == 0 {
            return Err("microbatches must be positive".into());
        }
        if self.max_running_requests == 0 {
            return Err("max_running_requests must be positive".into());
        }
        if self.max_batch_tokens == 0 {
            return Err("max_batch_tokens must be positive".into());
        }
        if self.max_prefill_tokens == 0 || self.max_prefill_tokens > self.max_batch_tokens {
            return Err("max_prefill_tokens must be in 1..=max_batch_tokens".into());
        }
        if self.attention_window == Some(0) {
            return Err("attention_window must be positive when set".into());
        }
        if self.decode_cost_factor.is_nan() || self.decode_cost_factor <= 0.0 {
            return Err("decode_cost_factor must be positive".into());
        }
        if self.kv_memory_fraction.is_nan()
            || self.kv_memory_fraction <= 0.0
            || self.kv_memory_fraction > 1.0
        {
            return Err("kv_memory_fraction must be in (0, 1]".into());
        }
        if let Some(scaler) = &self.autoscaler {
            if scaler.max_replicas > self.max_replicas {
                return Err("autoscaler max_replicas exceeds the fleet ceiling".into());
            }
        }
        Ok(())
    }
}

/// One pipeline replica's live state.
struct Replica {
    batcher: ContinuousBatcher,
    assignment: StageAssignment,
    /// Time the replica is next free.
    clock: f64,
    /// Provisioning completes at this time (0 for the initial replicas).
    ready_at: f64,
    /// Draining replicas accept no new dispatches.
    draining: bool,
    /// Released replicas are gone (their GPUs returned to the fleet).
    released: bool,
    /// Fleet worker ids backing the replica.
    workers: Vec<usize>,
}

impl Replica {
    /// When the replica can next start an engine step, given the arrival
    /// time of the gateway queue's front (if any); `None` if the replica
    /// has nothing to do.
    fn next_action_time(&self, gateway_front: Option<f64>) -> Option<f64> {
        if self.released {
            return None;
        }
        if self.batcher.has_work() {
            let work_at = if self.batcher.running_len() > 0 {
                self.clock
            } else {
                self.batcher.oldest_waiting_arrival()?
            };
            return Some(work_at.max(self.clock).max(self.ready_at));
        }
        if self.draining {
            return None;
        }
        // Idle: the next gateway request is this replica's next work.
        gateway_front.map(|arrival| arrival.max(self.clock).max(self.ready_at))
    }
}

/// Time-weighted GPU occupancy for externally managed deployments.
struct ExternalGpuMeter {
    /// ∫ gpus dt up to `sampled_at`.
    integral: f64,
    /// Time the integral was last advanced to.
    sampled_at: f64,
}

/// The simulated deployment.
pub struct ServingEngine {
    config: ServingConfig,
    model: Model,
    simulator: PipelineSimulator,
    balancer: Box<dyn LoadBalancer>,
    /// Per-layer forward seconds per *token* at identity dynamism.
    per_token_fwd: Vec<f64>,
    /// Per-replica KV capacity in tokens (tightest stage of the layout).
    kv_capacity_tokens: usize,
    /// Scheduler knobs shared by every replica (initial and scaled-out);
    /// scaled-out replicas may override `kv_capacity_tokens` with their
    /// own layout's capacity.
    batcher_config: BatcherConfig,
    /// The identity-dynamism layout the initial replicas use — also the
    /// validated fallback for scaled-out replicas whose re-partitioned
    /// layout prices too little KV capacity.
    initial_assignment: StageAssignment,
    /// Largest per-request KV reservation in the trace being served (set
    /// by [`ServingEngine::serve`]); a scaled-out layout must cover it.
    trace_max_kv_need: usize,
    replicas: Vec<Replica>,
    /// Own GPU ledger of a self-managed deployment; `None` when the GPUs
    /// are granted from outside (a fleet controller's shared pool).
    fleet: Option<MockJobManager>,
    /// GPU-time integral for externally managed deployments (the ledger
    /// normally derives `mean_gpus`; without one, the deployment meters
    /// its own replica-GPU occupancy over time).
    external_meter: Option<ExternalGpuMeter>,
    autoscaler: Option<Autoscaler>,
    scale_events: Vec<ScaleEvent>,
    engine_steps: u64,
    peak_replicas: usize,
    latest_update: LoadUpdate,
    /// Observability sink (the no-op [`NullRecorder`] by default).  The
    /// recorder only *observes* — enabling it never changes admission,
    /// pricing, scaling, or any reported metric.
    recorder: Arc<dyn Recorder>,
}

impl ServingEngine {
    /// Build a deployment: lay out the initial replicas with the
    /// configured balancer and reserve the rest of the fleet for scale-out.
    pub fn new(config: ServingConfig) -> Result<Self, String> {
        config.validate()?;
        let model = Model::from_preset(config.preset);
        let kv_model = KvCacheModel::new(model.config().clone());
        let cluster =
            ClusterConfig::homogeneous(config.gpus_per_node, config.stages, 1, config.device);
        let simulator = PipelineSimulator::new(CommCostModel::new(cluster), ScheduleKind::OneFOneB);
        let balancer = config.balancer.build();

        let identity = LoadUpdate::identity(model.num_layers());
        let base_loads = profile_layers(&model, &identity, &config.device);
        let tokens_per_microbatch =
            (model.config().micro_batch_size * model.config().seq_len) as f64;
        let per_token_fwd: Vec<f64> = base_loads
            .iter()
            .map(|l| l.fwd_time / tokens_per_microbatch)
            .collect();

        let request = BalanceRequest::new(
            &base_loads,
            config.stages,
            config.device.memory_capacity,
            BalanceObjective::ByTime,
        )
        .with_inflight(vec![1; config.stages]);
        let initial_assignment = balancer.rebalance(&request).assignment;

        let kv_capacity_tokens = kv_capacity(&model, &kv_model, &config, &initial_assignment)?;
        let batcher_config = BatcherConfig {
            kv_capacity_tokens,
            max_batch_tokens: config.max_batch_tokens,
            max_prefill_tokens: config.max_prefill_tokens,
            kv_reservation_cap: config.attention_window,
            max_running_requests: config.max_running_requests,
        };

        // The fleet holds every GPU the deployment may ever use; the ones
        // not backing an initial replica are released (free) at t = 0.
        let mut fleet = MockJobManager::new(config.max_replicas * config.stages);
        let mut replicas = Vec::with_capacity(config.initial_replicas);
        for r in 0..config.max_replicas {
            let workers: Vec<usize> = (r * config.stages..(r + 1) * config.stages).collect();
            if r < config.initial_replicas {
                replicas.push(Replica {
                    batcher: ContinuousBatcher::new(batcher_config),
                    assignment: initial_assignment.clone(),
                    clock: 0.0,
                    ready_at: 0.0,
                    draining: false,
                    released: false,
                    workers,
                });
            } else {
                fleet
                    .try_release(&workers)
                    .map_err(|e| format!("fleet setup: {e}"))?;
            }
        }

        let autoscaler = config.autoscaler.map(Autoscaler::new);
        Ok(ServingEngine {
            peak_replicas: replicas.len(),
            latest_update: identity,
            config,
            model,
            simulator,
            balancer,
            per_token_fwd,
            kv_capacity_tokens,
            batcher_config,
            initial_assignment,
            trace_max_kv_need: 0,
            replicas,
            fleet: Some(fleet),
            external_meter: None,
            autoscaler,
            scale_events: Vec::new(),
            engine_steps: 0,
            recorder: Arc::new(NullRecorder),
        })
    }

    /// Build an *externally managed* deployment: every replica runs on a
    /// GPU block granted by an outside owner (a fleet controller's shared
    /// pool), one block of `config.stages` workers per initial replica.
    /// The deployment keeps no ledger of its own — scaling happens through
    /// [`ServingSession::add_external_replica`], [`ServingSession::begin_drain`]
    /// and [`ServingSession::reclaim_drained`], and `mean_gpus` is metered
    /// from replica occupancy over time.  The internal autoscaler is
    /// rejected: exactly one party may own the scaling decisions.
    pub fn external(config: ServingConfig, blocks: Vec<Vec<usize>>) -> Result<Self, String> {
        if config.autoscaler.is_some() {
            return Err("externally managed deployments cannot run their own autoscaler".into());
        }
        if blocks.len() != config.initial_replicas {
            return Err(format!(
                "{} worker blocks for {} initial replicas",
                blocks.len(),
                config.initial_replicas
            ));
        }
        if let Some(bad) = blocks.iter().find(|b| b.len() != config.stages) {
            return Err(format!(
                "worker block of {} GPUs cannot back a {}-stage replica",
                bad.len(),
                config.stages
            ));
        }
        let mut engine = ServingEngine::new(config)?;
        engine.fleet = None;
        engine.external_meter = Some(ExternalGpuMeter {
            integral: 0.0,
            sampled_at: 0.0,
        });
        for (replica, block) in engine.replicas.iter_mut().zip(blocks) {
            replica.workers = block;
        }
        Ok(engine)
    }

    /// Attach a telemetry recorder: engine steps become per-replica spans,
    /// scale events become instant markers, and the live replica count is
    /// sampled as a counter track.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Per-replica KV capacity in tokens.
    pub fn kv_capacity_tokens(&self) -> usize {
        self.kv_capacity_tokens
    }

    /// Serve a whole trace to completion and report SLO metrics.  The
    /// optional dynamism engine is stepped once per engine step through its
    /// inference hook.
    ///
    /// Consumes the deployment: token counters, the fleet ledger, scaling
    /// state and drained replicas all accumulate across steps, so a second
    /// trace needs a fresh [`ServingEngine`] (or the [`serve`] wrapper) —
    /// by-value `self` makes silent metric corruption impossible.
    pub fn serve(
        self,
        trace: &RequestTrace,
        mut engine: Option<&mut dyn DynamismEngine>,
    ) -> ServingReport {
        let mut session = self.session(trace);
        while session.step(match engine {
            Some(ref mut e) => Some(&mut **e),
            None => None,
        }) {}
        session.finish()
    }

    /// Open an incremental serving session over `trace`: the same
    /// simulation [`ServingEngine::serve`] runs to completion, exposed one
    /// engine step at a time so an outside scheduler (the fleet
    /// controller) can interleave it with other work on a shared clock.
    /// Stepping a session to the end and calling [`ServingSession::finish`]
    /// is bit-identical to `serve`.
    pub fn session(mut self, trace: &RequestTrace) -> ServingSession {
        // A request must fit one replica's KV budget under the same
        // reservation rule admission control applies (a sliding attention
        // window caps the footprint of long requests).
        let max_need = trace
            .requests
            .iter()
            .map(|r| self.batcher_config.kv_need(r))
            .max()
            .unwrap_or(0);
        assert!(
            max_need <= self.kv_capacity_tokens,
            "trace contains a request larger than one replica's KV capacity"
        );
        self.trace_max_kv_need = max_need;
        let total = trace.num_requests();
        let records = if self.config.retain_records {
            Vec::with_capacity(total)
        } else {
            Vec::new()
        };
        ServingSession {
            engine: self,
            trace: trace.clone(),
            records,
            // SLO metrics are accumulated online: streaming sketches for
            // the three latency series (exact while small, O(1) P² beyond)
            // and a plain counter for SLO attainment, so the report never
            // needs the full record vector.
            ttft_summary: StreamingSummary::new(),
            tpot_summary: StreamingSummary::new(),
            latency_summary: StreamingSummary::new(),
            slo_met: 0,
            completed_count: 0,
            // The gateway: a single FCFS queue over the trace.  Requests
            // stay here until a replica pulls them through admission
            // control, so a replica provisioned mid-spike immediately
            // relieves the backlog.
            gateway: 0,
            makespan: 0.0,
            completions: Vec::new(),
            finished: false,
        }
    }

    /// Price one engine step of replica `idx` under the current dynamism
    /// state: per-stage forward time from the per-token cost rescaled by
    /// the update, boundary tensors sized by the step's tokens and the
    /// update's token retention, the whole batch split into micro-batches
    /// and run through the forward-only pipeline simulator.
    fn price_step(&self, idx: usize, plan: &StepPlan, update: &LoadUpdate) -> f64 {
        let replica = &self.replicas[idx];
        let num_stages = replica.assignment.num_stages();
        let layer_to_stage = replica.assignment.layer_to_stage();
        let weighted_tokens =
            plan.prefill_tokens as f64 + self.config.decode_cost_factor * plan.decode_tokens as f64;
        let batch_tokens = plan.batch_tokens();
        let m = self.config.microbatches.min(batch_tokens).max(1);

        let mut stage_time = vec![0.0f64; num_stages];
        let mut stage_layers = vec![0usize; num_stages];
        for (layer, &stage) in layer_to_stage.iter().enumerate() {
            stage_time[stage] +=
                self.per_token_fwd[layer] * update.fwd_scale[layer] * weighted_tokens;
            stage_layers[stage] += 1;
        }
        let retention =
            boundary_retention_profile(layer_to_stage, &update.token_retention, num_stages);
        let model_config = self.model.config();
        let bytes_per_token = (model_config.hidden_size * model_config.param_bytes) as f64;
        let flat_boundary = batch_tokens as f64 / m as f64 * bytes_per_token;
        let loads: Vec<StageLoad> = (0..num_stages)
            .map(|s| {
                if stage_layers[s] == 0 {
                    return StageLoad::default(); // empty stage: bypassed
                }
                StageLoad {
                    fwd_time: stage_time[s] / m as f64,
                    bwd_time: 0.0,
                    param_count: 0,
                    static_bytes: 0,
                    activation_bytes: 0,
                    // Never 0: that would fall back to the training-shaped
                    // flat residual tensor instead of this batch's.
                    boundary_bytes: ((flat_boundary * retention[s]) as u64).max(1),
                    num_layers: stage_layers[s],
                }
            })
            .collect();
        self.simulator
            .simulate_forward(model_config, &loads, m)
            .makespan
    }

    /// Evaluate the autoscaler at `now` and apply its decision.
    /// `gateway_tokens` and `oldest_wait` describe the gateway queue (the
    /// un-admitted FCFS backlog).
    fn autoscale(&mut self, now: f64, gateway_tokens: usize, oldest_wait: f64) {
        let Some(scaler) = &mut self.autoscaler else {
            return;
        };
        let live: Vec<&Replica> = self
            .replicas
            .iter()
            .filter(|r| !r.released && !r.draining)
            .collect();
        let backlog_tokens: usize = gateway_tokens
            + live
                .iter()
                .map(|r| r.batcher.outstanding_tokens())
                .sum::<usize>();
        let signals = LoadSignals {
            replicas: live.len(),
            backlog_tokens,
            oldest_wait,
            capacity_tokens_per_replica: self.kv_capacity_tokens,
        };
        let decision = scaler.evaluate(now, &signals);
        let acted = match decision {
            ScaleDecision::Hold => false,
            ScaleDecision::Out => {
                let p99 = scaler.windowed_ttft_p99(now);
                self.scale_out(now, p99, backlog_tokens)
            }
            ScaleDecision::In => {
                // Drain the live replica with the least outstanding work;
                // its GPUs return to the fleet once it empties.
                if let Some(victim) = self
                    .replicas
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.released && !r.draining)
                    .min_by_key(|(_, r)| r.batcher.outstanding_tokens())
                    .map(|(i, _)| i)
                {
                    self.replicas[victim].draining = true;
                    true
                } else {
                    false
                }
            }
        };
        if acted {
            // Only an applied decision starts the cooldown: a scale-out
            // dropped for lack of free GPUs must be retried at the next
            // check, not suppressed for a whole cooldown mid-breach.
            if let Some(scaler) = &mut self.autoscaler {
                scaler.note_action(now);
            }
        }
    }

    /// Acquire one replica's worth of GPUs and bring a new replica online
    /// after the provisioning delay, re-partitioned against the current
    /// dynamism state.  Returns whether a replica was actually added (the
    /// fleet may have no free block while a draining replica still holds
    /// its GPUs).
    fn scale_out(&mut self, now: f64, observed_ttft_p99: f64, backlog_tokens: usize) -> bool {
        let workers = {
            let Some(fleet) = self.fleet.as_mut() else {
                return false; // externally managed: scaling happens outside
            };
            if fleet.available() < self.config.stages {
                return false; // fleet exhausted
            }
            fleet.set_iteration(fleet_clock(now));
            fleet.acquire(self.config.stages)
        };
        debug_assert_eq!(workers.len(), self.config.stages);
        let (assignment, capacity) = self.replica_layout();
        let provision_delay = self
            .config
            .autoscaler
            .as_ref()
            .map_or(0.0, |c| c.provision_delay);
        let ready_at = now + provision_delay;
        self.replicas.push(Replica {
            batcher: ContinuousBatcher::new(BatcherConfig {
                kv_capacity_tokens: capacity,
                ..self.batcher_config
            }),
            assignment,
            clock: ready_at,
            ready_at,
            draining: false,
            released: false,
            workers,
        });
        let live = self.live_replicas();
        self.peak_replicas = self.peak_replicas.max(live);
        self.scale_events.push(ScaleEvent {
            time: now,
            delta: 1,
            replicas_after: live,
            observed_ttft_p99,
            backlog_tokens,
        });
        self.recorder.instant(
            0,
            MarkerKind::ScaleOut,
            &format!("to {live} replicas"),
            now,
            &[
                ("ttft_p99", format!("{observed_ttft_p99:.4}")),
                ("backlog_tokens", backlog_tokens.to_string()),
            ],
        );
        self.recorder.counter(0, "live_replicas", now, live as f64);
        true
    }

    /// Lay out a new replica against the *current* dynamism state (e.g.
    /// early exit has shifted work toward early layers) — and price the
    /// new layout's own KV capacity, since a skewed layout can concentrate
    /// more KV-caching layers on one stage than the initial layout did.
    /// If the new layout cannot serve the trace's largest request (or
    /// prices no capacity at all), fall back to the initial layout, which
    /// was validated up front.
    fn replica_layout(&self) -> (StageAssignment, usize) {
        let loads = profile_layers(&self.model, &self.latest_update, &self.config.device);
        let request = BalanceRequest::new(
            &loads,
            self.config.stages,
            self.config.device.memory_capacity,
            BalanceObjective::ByTime,
        )
        .with_inflight(vec![1; self.config.stages]);
        let candidate = self.balancer.rebalance(&request).assignment;
        let kv_model = KvCacheModel::new(self.model.config().clone());
        match kv_capacity(&self.model, &kv_model, &self.config, &candidate) {
            // Capping at the initial layout's capacity keeps the
            // report-level invariant (peak KV ≤ reported capacity).
            Ok(c) if c >= self.trace_max_kv_need => (candidate, c.min(self.kv_capacity_tokens)),
            _ => (self.initial_assignment.clone(), self.kv_capacity_tokens),
        }
    }

    /// Advance the external GPU-time integral to `now` at the *current*
    /// replica set (call before the set changes).  No-op for self-managed
    /// deployments, whose ledger already carries the occupancy history.
    fn note_gpu_change(&mut self, now: f64) {
        let gpus: usize = self
            .replicas
            .iter()
            .filter(|r| !r.released)
            .map(|r| r.workers.len())
            .sum();
        if let Some(meter) = &mut self.external_meter {
            meter.integral += gpus as f64 * (now - meter.sampled_at).max(0.0);
            meter.sampled_at = meter.sampled_at.max(now);
        }
    }

    /// Outstanding (admitted, unfinished) tokens across live replicas.
    fn outstanding_tokens(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| !r.released)
            .map(|r| r.batcher.outstanding_tokens())
            .sum()
    }

    /// Return the GPUs of drained replicas to the fleet, logging one
    /// scale-in event per released replica.
    fn release_drained(&mut self, now: f64) {
        for idx in 0..self.replicas.len() {
            let drained = {
                let r = &self.replicas[idx];
                r.draining && !r.released && !r.batcher.has_work() && r.clock <= now
            };
            if drained {
                let fleet = self
                    .fleet
                    .as_mut()
                    .expect("self-managed scaling implies an own ledger");
                fleet.set_iteration(fleet_clock(now));
                let workers = self.replicas[idx].workers.clone();
                fleet
                    .try_release(&workers)
                    .expect("replica workers are allocated");
                self.replicas[idx].released = true;
                let p99 = self
                    .autoscaler
                    .as_ref()
                    .map_or(0.0, |s| s.windowed_ttft_p99(now));
                let live = self.live_replicas();
                self.scale_events.push(ScaleEvent {
                    time: now,
                    delta: -1,
                    replicas_after: live,
                    observed_ttft_p99: p99,
                    backlog_tokens: self
                        .replicas
                        .iter()
                        .filter(|r| !r.released)
                        .map(|r| r.batcher.outstanding_tokens())
                        .sum(),
                });
                self.recorder.instant(
                    0,
                    MarkerKind::ScaleIn,
                    &format!("to {live} replicas"),
                    now,
                    &[("ttft_p99", format!("{p99:.4}"))],
                );
                self.recorder.counter(0, "live_replicas", now, live as f64);
            }
        }
    }

    /// Replicas serving or provisioning (not draining, not released).
    fn live_replicas(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| !r.released && !r.draining)
            .count()
    }

    #[allow(clippy::too_many_arguments)]
    fn build_report(
        &mut self,
        trace: &RequestTrace,
        records: Vec<RequestRecord>,
        completed: usize,
        makespan: f64,
        ttft: &StreamingSummary,
        tpot: &StreamingSummary,
        latency: &StreamingSummary,
        slo_met: u64,
    ) -> ServingReport {
        let slo = self.config.slo;
        let span = makespan.max(f64::MIN_POSITIVE);
        // Close the external GPU-time integral at the makespan (no-op for
        // self-managed deployments).
        self.note_gpu_change(makespan);
        let mean_gpus = match (&self.fleet, &self.external_meter) {
            (Some(fleet), _) => fleet.average_allocated(fleet_clock(makespan).max(1)),
            (None, Some(meter)) => meter.integral / span,
            (None, None) => 0.0,
        };
        let total_output_tokens: u64 = self
            .replicas
            .iter()
            .map(|r| r.batcher.total_decode_tokens())
            .sum();
        let total_prefill_tokens: u64 = self
            .replicas
            .iter()
            .map(|r| r.batcher.total_prefill_tokens())
            .sum();
        let peak_kv_tokens = self
            .replicas
            .iter()
            .map(|r| r.batcher.peak_kv_tokens())
            .max()
            .unwrap_or(0);
        ServingReport {
            trace: trace.label.clone(),
            tenant: self.config.tenant.clone(),
            requests: trace.num_requests(),
            completed,
            makespan,
            ttft: LatencySummary::from_stats(&ttft.stats()),
            tpot: LatencySummary::from_stats(&tpot.stats()),
            latency: LatencySummary::from_stats(&latency.stats()),
            slo,
            slo_met,
            goodput_rps: slo_met as f64 / span,
            throughput_rps: completed as f64 / span,
            output_tokens_per_second: total_output_tokens as f64 / span,
            total_output_tokens,
            total_prefill_tokens,
            engine_steps: self.engine_steps,
            mean_gpus,
            peak_replicas: self.peak_replicas,
            scale_events: std::mem::take(&mut self.scale_events),
            kv_capacity_tokens: self.kv_capacity_tokens,
            peak_kv_tokens,
            records,
        }
    }
}

/// A point-in-time view of the gateway's un-admitted FCFS backlog.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GatewaySnapshot {
    /// Arrived-but-unadmitted requests.
    pub requests: usize,
    /// Their total (prompt + output) tokens.
    pub tokens: usize,
    /// Seconds the queue's front request has been waiting.
    pub oldest_wait: f64,
}

/// An in-flight serving run: the engine, its trace, and every accumulator
/// [`ServingEngine::serve`] keeps, exposed one engine step at a time so an
/// outside scheduler can interleave serving with other work on a shared
/// clock.  Obtained from [`ServingEngine::session`]; stepping to the end
/// and calling [`ServingSession::finish`] reproduces `serve` bit-for-bit.
pub struct ServingSession {
    engine: ServingEngine,
    trace: RequestTrace,
    records: Vec<RequestRecord>,
    ttft_summary: StreamingSummary,
    tpot_summary: StreamingSummary,
    latency_summary: StreamingSummary,
    slo_met: u64,
    completed_count: usize,
    gateway: usize,
    makespan: f64,
    /// `(completion time, TTFT)` of requests finished since the last
    /// [`ServingSession::take_completions`] — only accumulated for
    /// externally managed deployments, so self-managed runs stay O(1).
    completions: Vec<(f64, f64)>,
    finished: bool,
}

impl ServingSession {
    /// Execute the next engine step, wherever it falls on the clock.
    /// Returns `false` once the trace is fully served.
    pub fn step(&mut self, dynamism: Option<&mut dyn DynamismEngine>) -> bool {
        self.step_bounded(f64::INFINITY, dynamism)
    }

    /// Execute every engine step that *starts* at or before `horizon`,
    /// then stop.  Returns `true` when the whole trace has been served
    /// (no work remains at any time).
    pub fn run_until(
        &mut self,
        horizon: f64,
        mut dynamism: Option<&mut dyn DynamismEngine>,
    ) -> bool {
        while self.step_bounded(
            horizon,
            match dynamism {
                Some(ref mut e) => Some(&mut **e),
                None => None,
            },
        ) {}
        self.finished
    }

    /// One iteration of the serve loop, gated on the start time of the
    /// earliest runnable step.  The body is the exact op sequence the
    /// monolithic `serve` loop ran — bit-identity depends on it.
    fn step_bounded(&mut self, horizon: f64, dynamism: Option<&mut dyn DynamismEngine>) -> bool {
        if self.finished {
            return false;
        }
        let gateway_front = self.trace.requests.get(self.gateway).map(|r| r.arrival);
        // The earliest-ready replica acts next.
        let Some((idx, start)) = self
            .engine
            .replicas
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.next_action_time(gateway_front).map(|t| (i, t)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
        else {
            self.finished = true;
            return false;
        };
        if start > horizon {
            return false;
        }

        // Pull from the gateway (FCFS) while admission control allows.
        if !self.engine.replicas[idx].draining {
            while let Some(request) = self.trace.requests.get(self.gateway) {
                if request.arrival > start
                    || !self.engine.replicas[idx].batcher.try_admit(*request, start)
                {
                    break;
                }
                self.gateway += 1;
            }
        }

        let update = match dynamism {
            Some(e) => {
                let u = e.inference_step(self.engine.engine_steps);
                u.validate().expect("inference update is valid");
                u
            }
            None => LoadUpdate::identity(self.engine.model.num_layers()),
        };
        let plan = self.engine.replicas[idx]
            .batcher
            .plan_step(start)
            .expect("next_action_time implies runnable work");
        let duration = self.engine.price_step(idx, &plan, &update);
        let end = start + duration;
        self.engine.replicas[idx].clock = end;
        self.engine.engine_steps += 1;
        self.engine.latest_update = update;
        self.makespan = self.makespan.max(end);
        if self.engine.recorder.enabled() {
            let name = format!("step p{} d{}", plan.prefill_tokens, plan.decode_tokens);
            self.engine.recorder.span(0, idx, &name, start, end);
        }

        let completed = self.engine.replicas[idx]
            .batcher
            .commit_step(&plan, idx, end);
        for record in completed {
            if let Some(scaler) = &mut self.engine.autoscaler {
                scaler.record_completion(end, record.ttft());
            }
            self.ttft_summary.observe(record.ttft());
            self.tpot_summary.observe(record.tpot());
            self.latency_summary.observe(record.latency());
            if self.engine.config.slo.met_by(&record) {
                self.slo_met += 1;
            }
            self.completed_count += 1;
            if self.engine.external_meter.is_some() {
                self.completions.push((end, record.ttft()));
            }
            if self.engine.config.retain_records {
                self.records.push(record);
            }
        }

        if self.engine.autoscaler.is_some() {
            // Evaluate on the monotone observation clock (`makespan` =
            // the latest step end seen so far): steps are executed in
            // start-time order, so raw `end`s can interleave backward,
            // and both the scale-event log and the fleet ledger assume
            // non-decreasing timestamps.
            let now = self.makespan;
            // The backlog scan is O(arrived-but-unadmitted); only pay
            // it on steps where a policy check is actually due.
            if self
                .engine
                .autoscaler
                .as_ref()
                .is_some_and(|s| s.check_due(now))
            {
                let backlog = self.gateway_backlog(now);
                self.engine
                    .autoscale(now, backlog.tokens, backlog.oldest_wait);
            }
            self.engine.release_drained(now);
        }
        true
    }

    /// Assemble the final report.  Requires the session to have run to
    /// completion (`step` returned `false` / `run_until` returned `true`).
    pub fn finish(mut self) -> ServingReport {
        assert!(
            self.finished,
            "finish() requires the session to have served the whole trace"
        );
        assert_eq!(
            self.completed_count,
            self.trace.num_requests(),
            "the scheduler conserves requests"
        );
        let records = std::mem::take(&mut self.records);
        self.engine.build_report(
            &self.trace,
            records,
            self.completed_count,
            self.makespan,
            &self.ttft_summary,
            &self.tpot_summary,
            &self.latency_summary,
            self.slo_met,
        )
    }

    /// Whether the whole trace has been served.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Start time of the earliest runnable engine step, `None` when done.
    pub fn next_action_time(&self) -> Option<f64> {
        if self.finished {
            return None;
        }
        let gateway_front = self.trace.requests.get(self.gateway).map(|r| r.arrival);
        self.engine
            .replicas
            .iter()
            .filter_map(|r| r.next_action_time(gateway_front))
            .min_by(|a, b| a.partial_cmp(b).expect("times are finite"))
    }

    /// The tenant this session serves.
    pub fn tenant(&self) -> &str {
        &self.engine.config.tenant
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.engine.config
    }

    /// Replicas serving or provisioning (not draining, not released).
    pub fn live_replicas(&self) -> usize {
        self.engine.live_replicas()
    }

    /// Replicas draining toward release.
    pub fn draining_replicas(&self) -> usize {
        self.engine
            .replicas
            .iter()
            .filter(|r| r.draining && !r.released)
            .count()
    }

    /// Admitted-but-unfinished tokens across live replicas.
    pub fn outstanding_tokens(&self) -> usize {
        self.engine.outstanding_tokens()
    }

    /// Per-replica KV capacity in tokens.
    pub fn kv_capacity_tokens(&self) -> usize {
        self.engine.kv_capacity_tokens
    }

    /// Requests served to completion so far.
    pub fn completed_requests(&self) -> usize {
        self.completed_count
    }

    /// Requests in the trace.
    pub fn total_requests(&self) -> usize {
        self.trace.num_requests()
    }

    /// Latest step end seen so far (the monotone observation clock).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// The gateway's un-admitted backlog as of `now`.
    pub fn gateway_backlog(&self, now: f64) -> GatewaySnapshot {
        let mut snapshot = GatewaySnapshot::default();
        for (i, request) in self.trace.requests[self.gateway..].iter().enumerate() {
            if request.arrival > now {
                break;
            }
            if i == 0 {
                snapshot.oldest_wait = (now - request.arrival).max(0.0);
            }
            snapshot.requests += 1;
            snapshot.tokens += request.total_tokens();
        }
        snapshot
    }

    /// Drain the `(completion time, TTFT)` pairs of requests finished
    /// since the previous call (externally managed deployments only —
    /// self-managed sessions keep no completion log).
    pub fn take_completions(&mut self) -> Vec<(f64, f64)> {
        std::mem::take(&mut self.completions)
    }

    /// Bring a new replica online over an externally granted GPU block:
    /// laid out against the current dynamism state (same policy as an
    /// autoscaler scale-out), accepting work from `ready_at`.
    /// `observed_ttft_p99` is the caller's SLO reading, logged with the
    /// scale event.  Errors on self-managed deployments and wrongly sized
    /// blocks.
    pub fn add_external_replica(
        &mut self,
        workers: Vec<usize>,
        now: f64,
        ready_at: f64,
        observed_ttft_p99: f64,
    ) -> Result<(), String> {
        let engine = &mut self.engine;
        if engine.fleet.is_some() {
            return Err("self-managed deployments own their scaling".into());
        }
        if workers.len() != engine.config.stages {
            return Err(format!(
                "worker block of {} GPUs cannot back a {}-stage replica",
                workers.len(),
                engine.config.stages
            ));
        }
        engine.note_gpu_change(now);
        let (assignment, capacity) = engine.replica_layout();
        let online_at = ready_at.max(now);
        engine.replicas.push(Replica {
            batcher: ContinuousBatcher::new(BatcherConfig {
                kv_capacity_tokens: capacity,
                ..engine.batcher_config
            }),
            assignment,
            clock: online_at,
            ready_at: online_at,
            draining: false,
            released: false,
            workers,
        });
        let live = engine.live_replicas();
        engine.peak_replicas = engine.peak_replicas.max(live);
        let backlog_tokens = engine.outstanding_tokens();
        engine.scale_events.push(ScaleEvent {
            time: now,
            delta: 1,
            replicas_after: live,
            observed_ttft_p99,
            backlog_tokens,
        });
        engine.recorder.instant(
            0,
            MarkerKind::ScaleOut,
            &format!("to {live} replicas"),
            now,
            &[
                ("ttft_p99", format!("{observed_ttft_p99:.4}")),
                ("backlog_tokens", backlog_tokens.to_string()),
            ],
        );
        engine
            .recorder
            .counter(0, "live_replicas", now, live as f64);
        Ok(())
    }

    /// Start draining the live replica with the least outstanding work
    /// (the same victim rule the autoscaler's scale-in uses); its GPUs
    /// come back through [`ServingSession::reclaim_drained`] once it
    /// empties.  Returns the replica index, or `None` with no live
    /// replica to drain.
    pub fn begin_drain(&mut self) -> Option<usize> {
        let victim = self
            .engine
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.released && !r.draining)
            .min_by_key(|(_, r)| r.batcher.outstanding_tokens())
            .map(|(i, _)| i)?;
        self.engine.replicas[victim].draining = true;
        Some(victim)
    }

    /// Collect the GPU blocks of replicas that have finished draining as
    /// of `now` (externally managed deployments only), logging one
    /// scale-in event per reclaimed replica.  The caller returns the
    /// blocks to whatever pool granted them.
    pub fn reclaim_drained(&mut self, now: f64) -> Vec<Vec<usize>> {
        let engine = &mut self.engine;
        if engine.fleet.is_some() {
            return Vec::new(); // self-managed: release_drained owns this
        }
        let mut freed = Vec::new();
        for idx in 0..engine.replicas.len() {
            let drained = {
                let r = &engine.replicas[idx];
                r.draining && !r.released && !r.batcher.has_work() && r.clock <= now
            };
            if drained {
                engine.note_gpu_change(now);
                engine.replicas[idx].released = true;
                let workers = std::mem::take(&mut engine.replicas[idx].workers);
                let live = engine.live_replicas();
                let backlog_tokens = engine.outstanding_tokens();
                engine.scale_events.push(ScaleEvent {
                    time: now,
                    delta: -1,
                    replicas_after: live,
                    observed_ttft_p99: 0.0,
                    backlog_tokens,
                });
                engine.recorder.instant(
                    0,
                    MarkerKind::ScaleIn,
                    &format!("to {live} replicas"),
                    now,
                    &[("backlog_tokens", backlog_tokens.to_string())],
                );
                engine
                    .recorder
                    .counter(0, "live_replicas", now, live as f64);
                freed.push(workers);
            }
        }
        freed
    }
}

/// The fleet ledger timestamps in milliseconds (its "iteration" axis) —
/// shared with fleet controllers so every party stamps the same clock.
pub fn fleet_clock(time: f64) -> u64 {
    (time * 1000.0).round().max(0.0) as u64
}

/// Per-replica KV capacity in tokens: for every stage of the layout,
/// device memory minus the stage's inference weights, times the KV
/// fraction, divided by the stage's per-token KV bytes; the tightest stage
/// wins.  Stages caching nothing (embedding/head only) never constrain.
fn kv_capacity(
    model: &Model,
    kv_model: &KvCacheModel,
    config: &ServingConfig,
    assignment: &StageAssignment,
) -> Result<usize, String> {
    let param_bytes = model.config().param_bytes as u64;
    let mut capacity = usize::MAX;
    for stage in 0..assignment.num_stages() {
        let layer_ids = assignment.layers_of(stage);
        if layer_ids.is_empty() {
            continue;
        }
        let layers: Vec<_> = layer_ids
            .iter()
            .map(|&l| model.layers()[l].clone())
            .collect();
        let weights: u64 = layers.iter().map(|l| l.param_count * param_bytes).sum();
        if weights >= config.device.memory_capacity {
            return Err(format!(
                "stage {stage} weights ({weights} B) exceed device memory"
            ));
        }
        let budget =
            ((config.device.memory_capacity - weights) as f64 * config.kv_memory_fraction) as u64;
        let retained = vec![1.0; layers.len()];
        let stage_capacity = kv_model.capacity_tokens(&layers, &retained, budget);
        capacity = capacity.min(stage_capacity);
    }
    if capacity == 0 || capacity == usize::MAX {
        return Err("layout yields no usable KV capacity".into());
    }
    Ok(capacity)
}

/// Convenience wrapper: build a deployment and serve one trace.
pub fn serve(
    config: ServingConfig,
    trace: &RequestTrace,
    engine: Option<&mut dyn DynamismEngine>,
) -> Result<ServingReport, String> {
    Ok(ServingEngine::new(config)?.serve(trace, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::AutoscalerConfig;
    use crate::trace::{ArrivalProcess, LengthModel, RequestTrace};
    use dynmo_dynamics::{EarlyExitEngine, EarlyExitMethod};

    fn lengths() -> LengthModel {
        LengthModel {
            mean_prompt_tokens: 256,
            mean_output_tokens: 64,
            spread: 0.4,
        }
    }

    fn poisson_trace(rate: f64, duration: f64) -> RequestTrace {
        RequestTrace::generate(&ArrivalProcess::Poisson { rate }, duration, &lengths(), 11)
    }

    #[test]
    fn a_light_trace_is_served_with_low_latency() {
        let trace = poisson_trace(2.0, 20.0);
        let report = serve(ServingConfig::small(1), &trace, None).unwrap();
        assert_eq!(report.completed, trace.num_requests());
        assert!(report.makespan > 0.0);
        assert!(report.ttft.p99 > 0.0);
        assert!(report.tpot.p99 > 0.0);
        assert!(report.latency.p50 >= report.ttft.p50);
        assert!(report.total_output_tokens == trace.total_output_tokens());
        assert!(report.total_prefill_tokens == trace.total_tokens() - trace.total_output_tokens());
        assert!(report.scale_events.is_empty());
        assert!(report.peak_kv_tokens <= report.kv_capacity_tokens);
        // 8 GPUs would be 2 replicas; a fixed single replica is 4 GPUs.
        assert_eq!(report.mean_gpus, 4.0);
    }

    #[test]
    fn two_replicas_beat_one_on_a_heavy_trace() {
        let trace = poisson_trace(30.0, 10.0);
        let one = serve(ServingConfig::small(1), &trace, None).unwrap();
        let two = serve(ServingConfig::small(2), &trace, None).unwrap();
        assert!(two.ttft.p99 < one.ttft.p99);
        assert!(two.makespan < one.makespan);
    }

    #[test]
    fn early_exit_shortens_decode_work() {
        let trace = poisson_trace(8.0, 15.0);
        let dense = serve(ServingConfig::small(1), &trace, None).unwrap();
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 9);
        let exited = serve(ServingConfig::small(1), &trace, Some(&mut engine)).unwrap();
        // Same tokens decoded, less work per token → faster everywhere.
        assert_eq!(exited.total_output_tokens, dense.total_output_tokens);
        assert!(exited.tpot.p50 < dense.tpot.p50);
        assert!(exited.makespan < dense.makespan);
    }

    #[test]
    fn the_autoscaler_absorbs_a_spike_the_fixed_fleet_cannot() {
        let process = ArrivalProcess::Bursty {
            base_rate: 2.0,
            spike_rate: 40.0,
            spike_start: 10.0,
            spike_duration: 20.0,
        };
        let trace = RequestTrace::generate(&process, 40.0, &lengths(), 21);
        let fixed = serve(ServingConfig::small(1), &trace, None).unwrap();
        let mut elastic_config = ServingConfig::small(1);
        elastic_config.max_replicas = 4;
        let elastic_config =
            elastic_config.with_autoscaler(AutoscalerConfig::responsive(2.0, 1, 4));
        let elastic = serve(elastic_config, &trace, None).unwrap();
        assert!(
            elastic.scale_out_events() >= 1,
            "the spike must trigger a scale-out"
        );
        assert!(
            elastic.ttft.p99 < fixed.ttft.p99,
            "elastic p99 TTFT {} must beat fixed {}",
            elastic.ttft.p99,
            fixed.ttft.p99
        );
        assert!(elastic.peak_replicas > 1);
        assert!(elastic.mean_gpus > 4.0);
        // The fleet ledger and the scale events agree.
        assert_eq!(elastic.completed, trace.num_requests());
    }

    #[test]
    fn quiet_tails_scale_back_in() {
        // A spike early, then a long quiet tail with light traffic: the
        // autoscaler must release the extra replicas again.
        let process = ArrivalProcess::Bursty {
            base_rate: 1.0,
            spike_rate: 40.0,
            spike_start: 5.0,
            spike_duration: 15.0,
        };
        let trace = RequestTrace::generate(&process, 120.0, &lengths(), 33);
        let mut config = ServingConfig::small(1);
        config.max_replicas = 4;
        let config = config.with_autoscaler(AutoscalerConfig::responsive(2.0, 1, 4));
        let report = serve(config, &trace, None).unwrap();
        assert!(report.scale_out_events() >= 1);
        assert!(
            report.scale_in_events() >= 1,
            "the quiet tail must release a replica (events: {:?})",
            report.scale_events
        );
    }

    #[test]
    fn a_windowed_deployment_serves_requests_longer_than_dense_capacity() {
        // One request whose raw prompt+output exceeds the replica's KV
        // capacity, but whose sliding-window reservation fits: dense
        // attention must reject the trace, windowed attention must serve
        // it (the capacity check applies the same cap as admission).
        let dense_config = ServingConfig::small(1);
        let capacity = ServingEngine::new(dense_config.clone())
            .unwrap()
            .kv_capacity_tokens();
        let trace = RequestTrace::replayed("long", vec![(0.0, capacity + 100, 10)]).unwrap();
        let dense = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(dense_config.clone(), &trace, None)
        }));
        assert!(dense.is_err(), "dense attention must reject the trace");
        let mut windowed_config = dense_config;
        windowed_config.attention_window = Some(4096);
        let report = serve(windowed_config, &trace, None).unwrap();
        assert_eq!(report.completed, 1);
        assert!(report.peak_kv_tokens <= 4096);
    }

    #[test]
    fn diffusion_balancer_also_serves() {
        let trace = poisson_trace(4.0, 10.0);
        let mut config = ServingConfig::small(1);
        config.balancer = ServeBalancerKind::Diffusion;
        let report = serve(config, &trace, None).unwrap();
        assert_eq!(report.completed, trace.num_requests());
    }

    #[test]
    fn recorder_and_record_dropping_change_no_metric() {
        use dynmo_telemetry::{Event, MemoryRecorder};

        let process = ArrivalProcess::Bursty {
            base_rate: 2.0,
            spike_rate: 40.0,
            spike_start: 10.0,
            spike_duration: 20.0,
        };
        let trace = RequestTrace::generate(&process, 40.0, &lengths(), 21);
        let mut config = ServingConfig::small(1);
        config.max_replicas = 4;
        let config = config.with_autoscaler(AutoscalerConfig::responsive(2.0, 1, 4));

        let baseline = serve(config.clone(), &trace, None).unwrap();

        let recorder = std::sync::Arc::new(MemoryRecorder::new());
        let mut lean_config = config;
        lean_config.retain_records = false;
        let lean = ServingEngine::new(lean_config)
            .unwrap()
            .with_recorder(recorder.clone())
            .serve(&trace, None);

        // Dropping records and attaching a recorder is invisible to every
        // aggregate — bit for bit.
        assert!(lean.records.is_empty());
        assert_eq!(lean.completed, baseline.completed);
        assert_eq!(lean.slo_met, baseline.slo_met);
        assert_eq!(lean.ttft.p99.to_bits(), baseline.ttft.p99.to_bits());
        assert_eq!(lean.tpot.p50.to_bits(), baseline.tpot.p50.to_bits());
        assert_eq!(lean.latency.mean.to_bits(), baseline.latency.mean.to_bits());
        assert_eq!(lean.goodput_rps.to_bits(), baseline.goodput_rps.to_bits());
        assert_eq!(
            lean.slo_attainment().to_bits(),
            baseline.slo_attainment().to_bits()
        );
        assert_eq!(lean.scale_events, baseline.scale_events);

        // ... while the recorder saw the run's structure: engine-step spans
        // per replica lane and scale markers mirroring the event log.
        let events = recorder.snapshot();
        let spans = events
            .iter()
            .filter(|e| matches!(e, Event::Span(_)))
            .count();
        let outs = events
            .iter()
            .filter(
                |e| matches!(e, Event::Instant(i) if i.kind == dynmo_telemetry::MarkerKind::ScaleOut),
            )
            .count();
        let ins = events
            .iter()
            .filter(
                |e| matches!(e, Event::Instant(i) if i.kind == dynmo_telemetry::MarkerKind::ScaleIn),
            )
            .count();
        assert_eq!(spans as u64, lean.engine_steps);
        assert_eq!(outs, lean.scale_out_events());
        assert_eq!(ins, lean.scale_in_events());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ServingConfig::small(1);
        c.stages = 0;
        assert!(serve(c, &poisson_trace(1.0, 1.0), None).is_err());
        let mut c = ServingConfig::small(1);
        c.kv_memory_fraction = 0.0;
        assert!(c.validate().is_err());
        let mut c = ServingConfig::small(2);
        c.initial_replicas = 0;
        assert!(c.validate().is_err());
        let mut c = ServingConfig::small(1);
        c.microbatches = 0;
        assert!(c.validate().is_err());
        // The batcher knobs are validated up front too, so serve() returns
        // Err instead of panicking inside ContinuousBatcher::new.
        let mut c = ServingConfig::small(1);
        c.max_batch_tokens = 0;
        assert!(c.validate().is_err());
        let mut c = ServingConfig::small(1);
        c.max_prefill_tokens = c.max_batch_tokens + 1;
        assert!(c.validate().is_err());
        let mut c = ServingConfig::small(1);
        c.attention_window = Some(0);
        assert!(c.validate().is_err());
    }
}
