//! Per-request records and the SLO-oriented serving report.
//!
//! The metrics mirror what production inference gateways alarm on:
//!
//! * **TTFT** (time to first token) — queueing + admission + prefill; the
//!   latency a user perceives before anything streams back.
//! * **TPOT** (time per output token) — the steady decode cadence after the
//!   first token.
//! * **End-to-end latency** — arrival to last token.
//! * **Goodput** — completed requests per second that met the SLO target,
//!   the metric an autoscaler is actually paid to defend.

use dynmo_telemetry::SummaryStats;
use serde::{Deserialize, Serialize};

use crate::autoscale::ScaleEvent;

/// Latency targets a request must meet to count toward goodput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloTarget {
    /// Maximum acceptable time to first token, in seconds.
    pub ttft: f64,
    /// Maximum acceptable time per output token, in seconds.
    pub tpot: f64,
}

impl SloTarget {
    /// A chat-interactivity target: first token within 2 s, then ≥ 10
    /// tokens/s.
    pub fn chat_default() -> Self {
        SloTarget {
            ttft: 2.0,
            tpot: 0.1,
        }
    }

    /// Whether a completed request met both targets.
    pub fn met_by(&self, record: &RequestRecord) -> bool {
        record.ttft() <= self.ttft && record.tpot() <= self.tpot
    }
}

/// The lifecycle timestamps of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// The request's trace id.
    pub id: u64,
    /// Replica that served the request.
    pub replica: usize,
    /// Arrival time (from the trace).
    pub arrival: f64,
    /// When admission control moved the request into the running batch.
    pub admitted: f64,
    /// When the first output token was produced (prefill completed).
    pub first_token: f64,
    /// When the last output token was produced.
    pub completion: f64,
    /// Prompt tokens prefilled.
    pub prompt_tokens: usize,
    /// Output tokens decoded.
    pub output_tokens: usize,
}

impl RequestRecord {
    /// Time to first token: arrival → first output token.
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// Time per output token after the first.  Defined as 0 for
    /// single-token outputs (there is no inter-token gap to measure).
    pub fn tpot(&self) -> f64 {
        if self.output_tokens <= 1 {
            0.0
        } else {
            (self.completion - self.first_token) / (self.output_tokens - 1) as f64
        }
    }

    /// End-to-end latency: arrival → last token.
    pub fn latency(&self) -> f64 {
        self.completion - self.arrival
    }
}

/// The `q`-th percentile (0 < q ≤ 1) of an ascending-sorted slice, using
/// the nearest-rank definition; 0 for an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// p50/p95/p99/mean of one latency series.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencySummary {
    /// Summarize a series (unsorted; empty series summarize to zeros).
    ///
    /// One clone + sort per call — fine for tests and one-off series.  The
    /// serving engine feeds its per-request latencies through a streaming
    /// [`dynmo_telemetry::StreamingSummary`] instead (O(1) memory on long
    /// traces, bit-identical to this path while the series is small) and
    /// converts via [`LatencySummary::from_stats`].
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        LatencySummary {
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }

    /// Adopt a streaming sketch's statistics (the P² path of
    /// [`dynmo_telemetry::StreamingSummary`] uses the same nearest-rank
    /// definition as [`percentile`] while its exact buffer lasts).
    pub fn from_stats(stats: &SummaryStats) -> Self {
        LatencySummary {
            p50: stats.p50,
            p95: stats.p95,
            p99: stats.p99,
            mean: stats.mean,
        }
    }
}

/// The outcome of serving one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Trace label.
    pub trace: String,
    /// Tenant the deployment served (from [`crate::ServingConfig::tenant`];
    /// `"default"` for single-tenant deployments).
    pub tenant: String,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests served to completion (always equals `requests`; the
    /// scheduler never drops).
    pub completed: usize,
    /// Time the last request completed, in seconds.
    pub makespan: f64,
    /// Time-to-first-token summary.
    pub ttft: LatencySummary,
    /// Time-per-output-token summary.
    pub tpot: LatencySummary,
    /// End-to-end latency summary.
    pub latency: LatencySummary,
    /// The SLO target goodput was measured against.
    pub slo: SloTarget,
    /// Completed requests that met the SLO (counted online, so it is exact
    /// even when per-request records are not retained).
    pub slo_met: u64,
    /// Completed-requests-per-second that met the SLO.
    pub goodput_rps: f64,
    /// Completed requests per second, SLO-met or not.
    pub throughput_rps: f64,
    /// Decoded output tokens per second over the makespan.
    pub output_tokens_per_second: f64,
    /// Total output tokens decoded.
    pub total_output_tokens: u64,
    /// Total prompt tokens prefilled.
    pub total_prefill_tokens: u64,
    /// Engine steps executed across all replicas.
    pub engine_steps: u64,
    /// Time-weighted mean GPU count allocated to the service.
    pub mean_gpus: f64,
    /// Largest replica count ever active.
    pub peak_replicas: usize,
    /// Autoscaling actions, in time order (empty for fixed capacity).
    pub scale_events: Vec<ScaleEvent>,
    /// Per-replica KV capacity in tokens.
    pub kv_capacity_tokens: usize,
    /// Largest KV reservation (tokens) ever held by a single replica.
    pub peak_kv_tokens: usize,
    /// Per-request lifecycle records, in completion order (empty when the
    /// deployment ran with `retain_records: false`).
    pub records: Vec<RequestRecord>,
}

impl ServingReport {
    /// Fraction of completed requests that met the SLO.
    pub fn slo_attainment(&self) -> f64 {
        if self.completed == 0 {
            return 1.0;
        }
        self.slo_met as f64 / self.completed as f64
    }

    /// Scale-out events recorded (replicas added).
    pub fn scale_out_events(&self) -> usize {
        self.scale_events.iter().filter(|e| e.delta > 0).count()
    }

    /// Scale-in events recorded (replicas released).
    pub fn scale_in_events(&self) -> usize {
        self.scale_events.iter().filter(|e| e.delta < 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(arrival: f64, first: f64, completion: f64, out: usize) -> RequestRecord {
        RequestRecord {
            id: 0,
            replica: 0,
            arrival,
            admitted: arrival,
            first_token: first,
            completion,
            prompt_tokens: 10,
            output_tokens: out,
        }
    }

    #[test]
    fn record_latencies_are_the_classic_definitions() {
        let r = record(1.0, 3.0, 7.0, 5);
        assert_eq!(r.ttft(), 2.0);
        assert_eq!(r.tpot(), 1.0);
        assert_eq!(r.latency(), 6.0);
        // Single-token outputs have no inter-token gap.
        assert_eq!(record(0.0, 1.0, 1.0, 1).tpot(), 0.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summary_aggregates_the_series() {
        let s = LatencySummary::from_values(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p99, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(LatencySummary::from_values(&[]), LatencySummary::default());
    }

    #[test]
    fn slo_target_gates_on_both_ttft_and_tpot() {
        let slo = SloTarget {
            ttft: 2.0,
            tpot: 0.5,
        };
        assert!(slo.met_by(&record(0.0, 1.5, 3.0, 5))); // tpot 0.375
        assert!(!slo.met_by(&record(0.0, 2.5, 4.0, 5))); // ttft 2.5
        assert!(!slo.met_by(&record(0.0, 1.0, 4.0, 5))); // tpot 0.75
    }
}
