//! # dynmo-serve
//!
//! A continuous-batching inference serving subsystem for the DynMo
//! reproduction — the paper's dynamic-model mechanisms (early exit, MoE
//! routing, Mixture of Depths, pruning) pay off at inference time at least
//! as much as during training, and this crate opens that workload class on
//! top of the machinery the training side already built:
//!
//! * [`trace`] — request-trace generators (Poisson, bursty spike, diurnal
//!   swing, replayed logs) with per-request prompt/output lengths.
//! * [`batching`] — a vLLM-style iteration-level scheduler per replica:
//!   chunked prefill + one decode token per running request each engine
//!   step, with KV-cache admission control against the budgets computed by
//!   `dynmo_model::KvCacheModel`.
//! * [`engine`] — the deployment: replicated pipelines laid out by DynMo's
//!   balancers, engine steps priced by the event-driven pipeline
//!   simulator's forward-only mode, dynamism engines plugged in through
//!   their `inference_step` hook (early-exit token retention shortens
//!   decode work and boundary bytes; MoE routing skews per-stage load).
//! * [`metrics`] — SLO metrics: TTFT, TPOT, p50/p95/p99 latency, goodput.
//! * [`autoscale`] — an SLO-driven elastic autoscaler that acquires GPUs
//!   from the fleet's `JobManager` and lays out new replicas with the
//!   balancer when a load spike pushes p99 TTFT past target, then drains
//!   and releases them when the spike passes.

#![warn(missing_docs)]

pub mod autoscale;
pub mod batching;
pub mod engine;
pub mod metrics;
pub mod trace;

pub use autoscale::{Autoscaler, AutoscalerConfig, LoadSignals, ScaleDecision, ScaleEvent};
pub use batching::{BatcherConfig, ContinuousBatcher, StepPlan};
pub use engine::{
    fleet_clock, serve, GatewaySnapshot, ServeBalancerKind, ServingConfig, ServingEngine,
    ServingSession,
};
pub use metrics::{percentile, LatencySummary, RequestRecord, ServingReport, SloTarget};
pub use trace::{ArrivalProcess, LengthModel, Request, RequestTrace};
