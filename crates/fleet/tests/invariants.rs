//! Fleet-level invariants: GPU conservation, no tenant starvation,
//! trainer-trajectory pinning, and bit-reproducibility of whole fleet runs.
//!
//! Conservation, ledger reconciliation, and the no-starvation floor are
//! enforced *inside* `FleetController::run` at every tick — a violation
//! turns the run into an `Err`, so every `.run().unwrap()` here is itself
//! an invariant check over the whole simulated day.

use dynmo_dynamics::{DynamismEngine, EarlyExitEngine, EarlyExitMethod};
use dynmo_fleet::{
    ElasticTrainer, ElasticTrainerSpec, FleetActionKind, FleetConfig, FleetController, TenantSpec,
};
use dynmo_model::{DeviceSpec, Model, ModelPreset};
use dynmo_resilience::CheckpointCostModel;
use dynmo_serve::{ArrivalProcess, LengthModel, RequestTrace, ServingConfig, SloTarget};
use proptest::prelude::*;

fn trainer_spec(total_iterations: u64) -> ElasticTrainerSpec {
    ElasticTrainerSpec {
        preset: ModelPreset::Gpt { layers: 24 },
        device: DeviceSpec::test_device(16 * 1024 * 1024 * 1024),
        gpus_per_node: 4,
        total_iterations,
        segment_iterations: 2,
        num_microbatches: 8,
        allreduce_overlap: 0.8,
        min_workers: 2,
        cost_model: CheckpointCostModel::default(),
    }
}

fn engine(seed: u64) -> Box<dyn DynamismEngine> {
    let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
    Box::new(EarlyExitEngine::new(&model, EarlyExitMethod::Calm, seed))
}

fn tenant_config(name: &str, replicas: usize, max_replicas: usize, ttft: f64) -> ServingConfig {
    let mut config = ServingConfig::small(replicas);
    config.tenant = name.to_string();
    config.max_replicas = max_replicas;
    config.slo = SloTarget { ttft, tpot: 0.2 };
    config
}

fn fleet_config(total_gpus: usize) -> FleetConfig {
    FleetConfig {
        total_gpus,
        check_interval: 10.0,
        ttft_window: 40.0,
        breach_ttft_factor: 1.0,
        gateway_age_limit: 6.0,
        relax_ttft_factor: 0.35,
        shrink_max_load: 2.0,
        action_cooldown: 15.0,
        return_cooldown: 45.0,
        provision_delay: 2.0,
        trainer_min_workers: 2,
        trainer_max_workers: 12,
        max_ticks: 10_000,
    }
}

/// A fleet under a load spike: the chat tenant must breach, steal from the
/// trainer, then hand the GPUs back in the trough.
fn spiky_fleet(seed: u64) -> FleetController {
    let chat_trace = RequestTrace::generate(
        &ArrivalProcess::Bursty {
            base_rate: 1.0,
            spike_rate: 6.0,
            spike_start: 60.0,
            spike_duration: 90.0,
        },
        300.0,
        &LengthModel::chat_default(),
        seed,
    );
    let batch_trace = RequestTrace::generate(
        &ArrivalProcess::Poisson { rate: 0.8 },
        300.0,
        &LengthModel::chat_default(),
        seed ^ 0x9e37,
    );
    let trainer = ElasticTrainer::new(trainer_spec(200), engine(seed), 8).unwrap();
    FleetController::new(
        fleet_config(16),
        trainer,
        8,
        vec![
            TenantSpec {
                config: tenant_config("chat", 1, 3, 2.0),
                trace: chat_trace,
                priority: 3,
                min_replicas: 1,
            },
            TenantSpec {
                config: tenant_config("batch", 1, 2, 10.0),
                trace: batch_trace,
                priority: 1,
                min_replicas: 1,
            },
        ],
    )
    .unwrap()
}

#[test]
fn spike_steals_from_the_trainer_and_returns_in_the_trough() {
    let report = spiky_fleet(41).run().unwrap();
    assert!(
        report.steals > 0,
        "the spike must force a steal: {:?}",
        report.timeline
    );
    assert!(
        report.returns > 0,
        "the trough must hand GPUs back: {:?}",
        report.timeline
    );
    // Every serving request completed (the scheduler never drops).
    for serving in &report.serving {
        assert_eq!(serving.completed, serving.requests);
    }
    // The trainer kept training and every steal/return was one re-scale.
    assert!(report.trainer_iterations > 0);
    assert_eq!(report.trainer_rescales, report.steals + report.returns);
    assert!(report.trainer_rescale_cost > 0.0);
    // Timeline action counts agree with the headline counters.
    let steals = report
        .timeline
        .iter()
        .filter(|a| matches!(a.kind, FleetActionKind::Steal { .. }))
        .count() as u64;
    let returns = report
        .timeline
        .iter()
        .filter(|a| matches!(a.kind, FleetActionKind::Return))
        .count() as u64;
    assert_eq!(steals, report.steals);
    assert_eq!(returns, report.returns);
    // Chunk boundaries advance strictly, and every steal fired exactly at
    // one of them (zero rollback).
    let mut last = 0;
    for &(iteration, _) in &report.trajectory_checksums {
        assert!(iteration > last || last == 0, "boundaries must advance");
        last = iteration;
    }
    for action in &report.timeline {
        if matches!(action.kind, FleetActionKind::Steal { .. }) {
            assert!(
                report
                    .trajectory_checksums
                    .iter()
                    .any(|&(i, _)| i == action.trainer_iteration),
                "steal at iteration {} is not a chunk boundary",
                action.trainer_iteration
            );
        }
    }
}

#[test]
fn identical_fleet_runs_are_bit_identical() {
    let a = spiky_fleet(41).run().unwrap();
    let b = spiky_fleet(41).run().unwrap();
    let a_json = serde_json::to_string(&a).unwrap();
    let b_json = serde_json::to_string(&b).unwrap();
    assert_eq!(a_json, b_json, "a fleet run must be bit-reproducible");
}

#[test]
fn quiet_fleet_leaves_the_trainer_trajectory_untouched() {
    // Light traffic, shrink disabled (min == initial == max replicas),
    // trainer capped at its initial world: the controller never
    // intervenes, so the fleet's checksum history must prefix-match an
    // undisturbed solo run bit for bit.
    let trace = RequestTrace::generate(
        &ArrivalProcess::Poisson { rate: 0.5 },
        150.0,
        &LengthModel::chat_default(),
        7,
    );
    let mut config = fleet_config(12);
    config.trainer_max_workers = 8;
    let trainer = ElasticTrainer::new(trainer_spec(40), engine(7), 8).unwrap();
    let report = FleetController::new(
        config,
        trainer,
        8,
        vec![TenantSpec {
            config: tenant_config("quiet", 1, 1, 4.0),
            trace,
            priority: 2,
            min_replicas: 1,
        }],
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(report.steals, 0, "timeline: {:?}", report.timeline);
    assert_eq!(report.preemptions, 0);
    assert_eq!(report.trainer_rescales, 0);

    let mut solo = ElasticTrainer::new(trainer_spec(40), engine(7), 8).unwrap();
    solo.run_to_completion().unwrap();
    assert!(!report.trajectory_checksums.is_empty());
    for (fleet_entry, solo_entry) in report
        .trajectory_checksums
        .iter()
        .zip(solo.checksum_history())
    {
        assert_eq!(
            fleet_entry, solo_entry,
            "an uninterfered fleet trainer must match the solo trajectory"
        );
    }
}

#[test]
fn stolen_runs_match_the_solo_trajectory_up_to_the_first_steal() {
    let report = spiky_fleet(41).run().unwrap();
    assert!(report.steals > 0);
    let steal_iteration = report
        .timeline
        .iter()
        .find(|a| matches!(a.kind, FleetActionKind::Steal { .. }))
        .map(|a| a.trainer_iteration)
        .unwrap();
    assert!(steal_iteration > 0, "the trainer ran before the spike");

    // Solo run, same seed and world, never disturbed.
    let mut solo = ElasticTrainer::new(trainer_spec(200), engine(41), 8).unwrap();
    solo.run_to_completion().unwrap();
    let mut compared = 0;
    for entry in &report.trajectory_checksums {
        if entry.0 > steal_iteration {
            break;
        }
        let solo_entry = solo
            .checksum_history()
            .iter()
            .find(|s| s.0 == entry.0)
            .expect("solo run covers every pre-steal boundary");
        assert_eq!(
            entry.1, solo_entry.1,
            "iteration {} diverged before the first steal",
            entry.0
        );
        compared += 1;
    }
    assert!(compared > 0, "at least one pre-steal boundary must exist");
}

#[test]
fn preemption_frees_capacity_when_the_trainer_is_at_its_floor() {
    // The trainer sits at its floor (nothing to steal), the pool is empty,
    // and the high-priority tenant spikes: the only relief path is
    // preempting the low-priority tenant — which must still never drop
    // below its own replica floor, and must still finish its trace.
    let chat_trace = RequestTrace::generate(
        &ArrivalProcess::Bursty {
            base_rate: 1.0,
            spike_rate: 7.0,
            spike_start: 40.0,
            spike_duration: 120.0,
        },
        260.0,
        &LengthModel::chat_default(),
        13,
    );
    let batch_trace = RequestTrace::generate(
        &ArrivalProcess::Poisson { rate: 0.6 },
        260.0,
        &LengthModel::chat_default(),
        99,
    );
    let mut config = fleet_config(14);
    config.trainer_min_workers = 2;
    config.trainer_max_workers = 2;
    // Disable voluntary shrink: a near-zero relax threshold keeps the
    // batch tenant holding both replicas, so preemption is the only way
    // to free capacity.
    config.relax_ttft_factor = 0.01;
    let trainer = ElasticTrainer::new(trainer_spec(200), engine(13), 2).unwrap();
    let report = FleetController::new(
        config,
        trainer,
        2,
        vec![
            TenantSpec {
                config: tenant_config("chat", 1, 3, 2.0),
                trace: chat_trace,
                priority: 3,
                min_replicas: 1,
            },
            TenantSpec {
                config: tenant_config("batch", 2, 2, 12.0),
                trace: batch_trace,
                priority: 1,
                min_replicas: 1,
            },
        ],
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(report.steals, 0, "a floor-pinned trainer cannot donate");
    assert!(
        report.preemptions > 0,
        "the spike must preempt the batch tenant: {:?}",
        report.timeline
    );
    // The preempted low-priority tenant still finished every request (the
    // no-starvation floor kept it at least one replica throughout — the
    // per-tick invariant inside run() enforced it).
    let batch = report.serving.iter().find(|r| r.tenant == "batch").unwrap();
    assert_eq!(batch.completed, batch.requests);
    // The freed capacity reached the breacher as a later pool grant.
    assert!(
        report
            .timeline
            .iter()
            .any(|a| matches!(&a.kind, FleetActionKind::Grant { tenant } if tenant == "chat")),
        "preempted GPUs must come back as a grant: {:?}",
        report.timeline
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small fleets uphold every per-tick invariant (conservation,
    /// ledger reconciliation, no starvation — all enforced inside
    /// `FleetController::run`) and drain cleanly.
    #[test]
    fn random_fleets_conserve_gpus_and_never_starve(
        seed in 0u64..1000,
        spike in 4.0f64..8.0,
        trainer_world in 4usize..9,
    ) {
        let chat_trace = RequestTrace::generate(
            &ArrivalProcess::Bursty {
                base_rate: 1.5,
                spike_rate: spike,
                spike_start: 40.0,
                spike_duration: 60.0,
            },
            180.0,
            &LengthModel::chat_default(),
            seed,
        );
        let trainer = ElasticTrainer::new(trainer_spec(120), engine(seed), trainer_world).unwrap();
        let mut config = fleet_config(trainer_world + 3 * 4);
        config.trainer_max_workers = trainer_world + 4;
        let controller = FleetController::new(
            config,
            trainer,
            trainer_world,
            vec![TenantSpec {
                config: tenant_config("chat", 1, 3, 2.0),
                trace: chat_trace,
                priority: 2,
                min_replicas: 1,
            }],
        ).unwrap();
        let report = controller.run().unwrap();
        prop_assert_eq!(report.serving.len(), 1);
        prop_assert_eq!(report.serving[0].completed, report.serving[0].requests);
        prop_assert!(report.ticks > 0);
        // Counters and timeline agree.
        let preemptions = report.timeline.iter()
            .filter(|a| matches!(a.kind, FleetActionKind::Preempt { .. }))
            .count() as u64;
        prop_assert_eq!(preemptions, report.preemptions);
    }
}
