//! The elastic training job a fleet controller shrinks and grows.
//!
//! [`ElasticTrainer`] wraps `dynmo_core`'s segment API
//! ([`Trainer::run_segment`] + [`rescale_trainer_state`]) into a job that
//! advances in bounded chunks on a simulated clock and can be re-scaled at
//! any chunk boundary.  Every re-scale is a checkpoint-shrink-resume cycle:
//! the controller pays [`CheckpointCostModel::write_cost`] for the state
//! snapshot, the world is reshaped, and training resumes from the exact
//! boundary iteration — zero iterations are replayed, so the per-iteration
//! trajectory outside the re-scale instant is bit-identical to a run that
//! was never disturbed.

use dynmo_core::{
    rescale_trainer_state, BalanceObjective, PartitionBalancer, RebalanceController,
    RebalancePolicy, Trainer, TrainerConfig, TrainingReport,
};
use dynmo_dynamics::DynamismEngine;
use dynmo_model::{ClusterConfig, DeviceSpec, Model, ModelPreset};
use dynmo_pipeline::ScheduleKind;
use dynmo_resilience::{CheckpointCostModel, TrainerState};

/// Static description of the elastic training job.
#[derive(Debug, Clone)]
pub struct ElasticTrainerSpec {
    /// Model being trained.
    pub preset: ModelPreset,
    /// Accelerator every training worker runs on.
    pub device: DeviceSpec,
    /// GPUs per node (link locality of the comm model).
    pub gpus_per_node: usize,
    /// Iterations the job runs to completion.
    pub total_iterations: u64,
    /// Chunk length in iterations: the trainer only observes the outside
    /// world (and can only be re-scaled) at multiples of this.
    pub segment_iterations: u64,
    /// Micro-batches per pipeline per iteration.
    pub num_microbatches: usize,
    /// Fraction of the gradient all-reduce hidden behind backward.
    pub allreduce_overlap: f64,
    /// The job refuses to shrink below this many pipeline workers.
    pub min_workers: usize,
    /// Prices the checkpoint write charged on every re-scale.
    pub cost_model: CheckpointCostModel,
}

impl ElasticTrainerSpec {
    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_iterations == 0 {
            return Err("total_iterations must be positive".into());
        }
        if self.segment_iterations == 0 {
            return Err("segment_iterations must be positive".into());
        }
        if self.num_microbatches == 0 {
            return Err("num_microbatches must be positive".into());
        }
        if self.min_workers == 0 {
            return Err("min_workers must be positive".into());
        }
        if self.gpus_per_node == 0 {
            return Err("gpus_per_node must be positive".into());
        }
        if !self.allreduce_overlap.is_finite() || !(0.0..=1.0).contains(&self.allreduce_overlap) {
            return Err("allreduce_overlap must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// An elastic training job advancing chunk-by-chunk under fleet control.
pub struct ElasticTrainer {
    spec: ElasticTrainerSpec,
    model: Model,
    engine: Box<dyn DynamismEngine>,
    state: Option<TrainerState>,
    last_report: Option<TrainingReport>,
    world: usize,
    iterations_done: u64,
    /// Simulated seconds of training so far.  This is
    /// `total_time − overhead.algorithm`: the trainer charges the *measured*
    /// balancer wall-clock into `total_time` (and mirrors exactly those
    /// seconds into the `algorithm` bucket), so the difference is the fully
    /// modeled clock — the only clock a deterministic controller may
    /// schedule against.
    sim_time: f64,
    total_tokens: u64,
    /// `(iteration, trajectory_checksum)` at every chunk boundary — the
    /// pinning evidence that fleet interference never corrupted the
    /// trajectory (compare against an undisturbed run's history).
    checksum_history: Vec<(u64, u64)>,
    rescales: u64,
    rescale_cost_total: f64,
}

impl ElasticTrainer {
    /// Create the job on `initial_workers` pipeline stages.  The dynamism
    /// `engine` persists across chunks (its state rides in the checkpoint,
    /// so chunked execution is bit-identical to one uninterrupted run).
    pub fn new(
        spec: ElasticTrainerSpec,
        engine: Box<dyn DynamismEngine>,
        initial_workers: usize,
    ) -> Result<Self, String> {
        spec.validate()?;
        if initial_workers < spec.min_workers {
            return Err(format!(
                "initial world {initial_workers} below the job's floor of {} workers",
                spec.min_workers
            ));
        }
        let model = Model::from_preset(spec.preset);
        Ok(ElasticTrainer {
            spec,
            model,
            engine,
            state: None,
            last_report: None,
            world: initial_workers,
            iterations_done: 0,
            sim_time: 0.0,
            total_tokens: 0,
            checksum_history: Vec::new(),
            rescales: 0,
            rescale_cost_total: 0.0,
        })
    }

    fn trainer_config(&self, world: usize) -> TrainerConfig {
        TrainerConfig {
            cluster: ClusterConfig::homogeneous(
                self.spec.gpus_per_node,
                world,
                1,
                self.spec.device,
            ),
            schedule: ScheduleKind::OneFOneB,
            num_iterations: self.spec.total_iterations,
            num_microbatches: self.spec.num_microbatches,
            allreduce_overlap: self.spec.allreduce_overlap,
            objective: BalanceObjective::ByTime,
            min_workers: 1,
        }
    }

    fn controller() -> RebalanceController {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    }

    fn run_chunk(&mut self) -> Result<(), String> {
        let until =
            (self.iterations_done + self.spec.segment_iterations).min(self.spec.total_iterations);
        let mut trainer = Trainer::new(
            self.model.clone(),
            self.trainer_config(self.world),
            Self::controller(),
        );
        let outcome = trainer.run_segment(self.engine.as_mut(), self.state.as_ref(), until)?;
        self.iterations_done = until;
        self.sim_time = outcome.report.total_time - outcome.report.overhead.algorithm;
        self.total_tokens = outcome.report.total_tokens;
        self.checksum_history
            .push((until, outcome.report.trajectory_checksum));
        self.state = Some(outcome.state);
        self.last_report = Some(outcome.report);
        Ok(())
    }

    /// Run whole chunks until the simulated clock reaches `horizon` (or the
    /// job completes).  The chunk in flight when the horizon passes still
    /// finishes — the trainer only yields at boundaries — so on return
    /// `sim_time() >= horizon` unless the job finished earlier.
    pub fn advance_to(&mut self, horizon: f64) -> Result<(), String> {
        while !self.finished() && self.sim_time < horizon {
            self.run_chunk()?;
        }
        Ok(())
    }

    /// Run every remaining chunk.
    pub fn run_to_completion(&mut self) -> Result<(), String> {
        self.advance_to(f64::INFINITY)
    }

    /// Re-scale the job to `new_world` pipeline stages at the current chunk
    /// boundary, returning the charged checkpoint-write seconds (0 when the
    /// world is unchanged or training has not started).  The next chunk
    /// resumes from the boundary iteration on the new world.
    pub fn rescale(&mut self, new_world: usize) -> Result<f64, String> {
        if new_world < self.spec.min_workers {
            return Err(format!(
                "cannot shrink to {new_world} workers: job floor is {}",
                self.spec.min_workers
            ));
        }
        if new_world == self.world {
            return Ok(0.0);
        }
        let Some(state) = &self.state else {
            // Nothing ran yet: the initial world is still free to choose.
            self.world = new_world;
            return Ok(0.0);
        };
        let cost = self.spec.cost_model.write_cost(state.size_bytes());
        let rescaled = rescale_trainer_state(state, new_world, cost)?;
        self.state = Some(rescaled);
        self.world = new_world;
        self.sim_time += cost;
        self.rescales += 1;
        self.rescale_cost_total += cost;
        Ok(cost)
    }

    /// Whether every iteration has run.
    pub fn finished(&self) -> bool {
        self.iterations_done >= self.spec.total_iterations
    }

    /// Current pipeline world size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Iterations completed so far.
    pub fn iterations_done(&self) -> u64 {
        self.iterations_done
    }

    /// Simulated seconds of training so far (modeled clock only; see the
    /// field note on why measured balancer wall-clock is excluded).
    pub fn sim_time(&self) -> f64 {
        self.sim_time
    }

    /// Tokens processed so far.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Training throughput in tokens per simulated second (0 before the
    /// first chunk completes).
    pub fn tokens_per_second(&self) -> f64 {
        if self.sim_time <= 0.0 {
            return 0.0;
        }
        self.total_tokens as f64 / self.sim_time
    }

    /// `(iteration, trajectory_checksum)` at every completed chunk boundary.
    pub fn checksum_history(&self) -> &[(u64, u64)] {
        &self.checksum_history
    }

    /// Re-scale events so far.
    pub fn rescales(&self) -> u64 {
        self.rescales
    }

    /// Total checkpoint-write seconds charged by re-scales.
    pub fn rescale_cost_total(&self) -> f64 {
        self.rescale_cost_total
    }

    /// The job's static description.
    pub fn spec(&self) -> &ElasticTrainerSpec {
        &self.spec
    }

    /// The cumulative report at the last chunk boundary, if any ran.
    pub fn last_report(&self) -> Option<&TrainingReport> {
        self.last_report.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmo_dynamics::{EarlyExitEngine, EarlyExitMethod};

    fn spec(total: u64, segment: u64) -> ElasticTrainerSpec {
        ElasticTrainerSpec {
            preset: ModelPreset::Gpt { layers: 24 },
            device: DeviceSpec::test_device(16 * 1024 * 1024 * 1024),
            gpus_per_node: 4,
            total_iterations: total,
            segment_iterations: segment,
            num_microbatches: 8,
            allreduce_overlap: 0.8,
            min_workers: 2,
            cost_model: CheckpointCostModel::default(),
        }
    }

    fn engine(seed: u64) -> Box<dyn DynamismEngine> {
        let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
        Box::new(EarlyExitEngine::new(&model, EarlyExitMethod::Calm, seed))
    }

    #[test]
    fn undisturbed_chunked_run_matches_a_monolithic_run_bit_for_bit() {
        let mut chunked = ElasticTrainer::new(spec(60, 10), engine(4), 4).unwrap();
        chunked.run_to_completion().unwrap();
        assert!(chunked.finished());
        assert_eq!(chunked.iterations_done(), 60);
        assert_eq!(chunked.checksum_history().len(), 6);

        let mut whole = ElasticTrainer::new(spec(60, 60), engine(4), 4).unwrap();
        whole.run_to_completion().unwrap();
        assert_eq!(
            chunked.checksum_history().last().unwrap().1,
            whole.checksum_history().last().unwrap().1,
            "chunking must not perturb the trajectory"
        );
        assert_eq!(chunked.total_tokens(), whole.total_tokens());
    }

    #[test]
    fn rescale_changes_the_world_and_charges_checkpoint_cost() {
        let mut job = ElasticTrainer::new(spec(40, 10), engine(4), 4).unwrap();
        job.advance_to(0.0).unwrap(); // sim_time 0.0 already ≥ horizon: no chunk
        assert_eq!(job.iterations_done(), 0);
        job.advance_to(f64::MIN_POSITIVE).unwrap();
        assert_eq!(job.iterations_done(), 10);

        let before = job.sim_time();
        let cost = job.rescale(2).unwrap();
        assert!(cost > 0.0, "checkpoint write must cost time");
        assert_eq!(job.world(), 2);
        assert!((job.sim_time() - before - cost).abs() < 1e-12);
        assert_eq!(job.rescales(), 1);

        job.run_to_completion().unwrap();
        assert!(job.finished());
        assert_eq!(job.last_report().unwrap().final_active_workers, 2);
        // No-op rescale and floor violations.
        assert_eq!(job.rescale(2).unwrap(), 0.0);
        assert!(job.rescale(1).is_err());
    }

    #[test]
    fn rescale_before_any_chunk_is_free() {
        let mut job = ElasticTrainer::new(spec(20, 10), engine(4), 4).unwrap();
        assert_eq!(job.rescale(6).unwrap(), 0.0);
        assert_eq!(job.world(), 6);
        job.run_to_completion().unwrap();
        assert_eq!(job.last_report().unwrap().final_active_workers, 6);
    }
}
