//! The closed-loop controller arbitrating one GPU pool between an elastic
//! training job and multiple serving tenants.
//!
//! Every `check_interval` simulated seconds the controller:
//!
//! 1. advances each tenant's [`ServingSession`] and the trainer to the tick,
//! 2. reclaims drained replicas back into the free pool,
//! 3. shrinks tenants whose windowed p99 TTFT sits comfortably inside the
//!    SLO (hysteresis + per-tenant cooldown),
//! 4. relieves SLO breaches highest-priority-first: free-pool grant, else a
//!    GPU *steal* from the trainer (checkpoint-shrink-resume at the current
//!    chunk boundary, priced by the checkpoint cost model), else a
//!    *preemption* of the lowest-priority tenant holding more than its
//!    replica floor,
//! 5. returns free GPUs to the trainer once breaches have been quiet for a
//!    cooldown, and
//! 6. re-checks conservation: every GPU is held by exactly one party and
//!    the [`MockJobManager`] ledger agrees with the sessions' own counts.
//!
//! All decisions run on simulated clocks only, so a fleet run is
//! bit-reproducible for a given configuration and seed.

use std::collections::BTreeSet;
use std::sync::Arc;

use dynmo_core::MockJobManager;
use dynmo_serve::{
    fleet_clock, percentile, RequestTrace, ServingConfig, ServingReport, ServingSession,
};
use dynmo_telemetry::{MarkerKind, NullRecorder, Recorder};
use serde::{Deserialize, Serialize};

use crate::trainer::ElasticTrainer;

/// One serving tenant sharing the pool.
pub struct TenantSpec {
    /// Deployment description; `config.tenant` names the tenant in the
    /// ledger, reports, and telemetry.  Must not carry an autoscaler — the
    /// fleet controller owns all scaling.
    pub config: ServingConfig,
    /// The tenant's request trace.
    pub trace: RequestTrace,
    /// Scheduling priority, higher = more important.  Must be ≥ 1: the
    /// trainer holds the reserved priority 0 and is always the first
    /// donor.
    pub priority: u8,
    /// The controller never drains the tenant below this many replicas
    /// while requests remain (the no-starvation floor).
    pub min_replicas: usize,
}

/// Controller policy knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// GPUs in the shared pool.
    pub total_gpus: usize,
    /// Simulated seconds between control ticks.
    pub check_interval: f64,
    /// Completions within this many seconds of the tick feed the windowed
    /// p99 TTFT.
    pub ttft_window: f64,
    /// A tenant breaches when windowed p99 TTFT exceeds
    /// `slo.ttft × breach_ttft_factor`.
    pub breach_ttft_factor: f64,
    /// ... or when the oldest un-admitted gateway request has waited
    /// longer than this (catches cold starts with no completions yet).
    pub gateway_age_limit: f64,
    /// A tenant is shrinkable when windowed p99 TTFT is below
    /// `slo.ttft × relax_ttft_factor` with an empty gateway (hysteresis:
    /// keep this well under `breach_ttft_factor`).
    pub relax_ttft_factor: f64,
    /// The second shrink condition: the observed request rate the
    /// *remaining* replicas would each carry must stay at or below this
    /// (requests/second per replica — the operator's capacity-planning
    /// estimate of one replica's comfortable load).  Low p99 alone cannot
    /// justify a shrink: near the capacity boundary a tenant looks idle
    /// with N replicas yet breaches instantly with N − 1, and the
    /// resulting shrink/grant flap keeps the whole fleet's breach clock
    /// fresh so free GPUs never return to the trainer.
    pub shrink_max_load: f64,
    /// Minimum seconds between scaling actions on the same tenant.
    pub action_cooldown: f64,
    /// Free GPUs return to the trainer only after this many seconds
    /// without any breach anywhere.
    pub return_cooldown: f64,
    /// Seconds between a grant and the new replica accepting work.
    pub provision_delay: f64,
    /// The trainer is never shrunk below this world size by steals.
    pub trainer_min_workers: usize,
    /// The trainer never grows beyond this world size from returns.
    pub trainer_max_workers: usize,
    /// Hard tick bound (guards against a wedged fleet looping forever).
    pub max_ticks: u64,
}

impl FleetConfig {
    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_gpus == 0 {
            return Err("total_gpus must be positive".into());
        }
        if !self.check_interval.is_finite() || self.check_interval <= 0.0 {
            return Err("check_interval must be positive and finite".into());
        }
        if !self.ttft_window.is_finite() || self.ttft_window <= 0.0 {
            return Err("ttft_window must be positive".into());
        }
        if !self.breach_ttft_factor.is_finite() || self.breach_ttft_factor <= 0.0 {
            return Err("breach_ttft_factor must be positive".into());
        }
        if !self.relax_ttft_factor.is_finite()
            || self.relax_ttft_factor <= 0.0
            || self.relax_ttft_factor >= self.breach_ttft_factor
        {
            return Err("relax_ttft_factor must be in (0, breach_ttft_factor)".into());
        }
        if !self.shrink_max_load.is_finite() || self.shrink_max_load <= 0.0 {
            return Err("shrink_max_load must be positive and finite".into());
        }
        if !self.gateway_age_limit.is_finite() || self.gateway_age_limit <= 0.0 {
            return Err("gateway_age_limit must be positive".into());
        }
        if self.action_cooldown < 0.0 || self.return_cooldown < 0.0 {
            return Err("cooldowns must be non-negative".into());
        }
        if self.provision_delay < 0.0 {
            return Err("provision_delay must be non-negative".into());
        }
        if self.trainer_min_workers == 0 {
            return Err("trainer_min_workers must be positive".into());
        }
        if self.trainer_max_workers < self.trainer_min_workers {
            return Err("trainer_max_workers must be ≥ trainer_min_workers".into());
        }
        if self.max_ticks == 0 {
            return Err("max_ticks must be positive".into());
        }
        Ok(())
    }
}

/// What one timeline entry records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetActionKind {
    /// Free-pool GPUs granted to a breaching tenant.
    Grant {
        /// Receiving tenant.
        tenant: String,
    },
    /// GPUs stolen from the trainer for a breaching tenant
    /// (checkpoint-shrink-resume on the trainer side).
    Steal {
        /// Receiving tenant.
        tenant: String,
        /// Checkpoint-write seconds charged to the trainer.
        checkpoint_cost: f64,
    },
    /// Free GPUs returned to the trainer in a quiet trough.
    Return,
    /// A lower-priority tenant ordered to drain one replica so a
    /// higher-priority breach can be relieved once the GPUs come back.
    Preempt {
        /// Tenant losing a replica.
        victim: String,
        /// Breaching tenant the capacity is destined for.
        tenant: String,
    },
    /// A comfortable tenant voluntarily shrunk by one replica.
    Shrink {
        /// Tenant draining a replica.
        tenant: String,
    },
}

/// One scheduling decision, with the pool state after it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAction {
    /// Simulated time of the decision.
    pub time: f64,
    /// What happened.
    pub kind: FleetActionKind,
    /// GPUs moved (0 for preemptions and shrinks, which only start drains).
    pub gpus: usize,
    /// Trainer world size after the action.
    pub trainer_workers: usize,
    /// Free GPUs in the pool after the action.
    pub pool_free: usize,
    /// Trainer chunk boundary (iterations completed) when the action fired
    /// — steals re-scale exactly at this iteration, with zero rollback.
    pub trainer_iteration: u64,
}

/// The outcome of one fleet run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-tenant serving reports, in tenant declaration order.
    pub serving: Vec<ServingReport>,
    /// Iterations the trainer completed during the run.
    pub trainer_iterations: u64,
    /// Trainer world size when the run ended.
    pub trainer_final_world: usize,
    /// Tokens the trainer processed.
    pub trainer_total_tokens: u64,
    /// Simulated seconds of training (modeled clock).
    pub trainer_sim_time: f64,
    /// Training throughput in tokens per simulated second.
    pub trainer_tokens_per_second: f64,
    /// Re-scale events the trainer absorbed (steals + returns).
    pub trainer_rescales: u64,
    /// Checkpoint-write seconds charged by those re-scales.
    pub trainer_rescale_cost: f64,
    /// `(iteration, trajectory_checksum)` at every trainer chunk boundary.
    pub trajectory_checksums: Vec<(u64, u64)>,
    /// GPU steals from the trainer.
    pub steals: u64,
    /// GPU returns to the trainer.
    pub returns: u64,
    /// Tenant preemptions ordered.
    pub preemptions: u64,
    /// Control ticks executed.
    pub ticks: u64,
    /// Every scheduling decision in time order.
    pub timeline: Vec<FleetAction>,
}

impl FleetReport {
    /// Completed-request-weighted SLO attainment across all tenants.
    pub fn aggregate_slo_attainment(&self) -> f64 {
        let completed: usize = self.serving.iter().map(|r| r.completed).sum();
        if completed == 0 {
            return 1.0;
        }
        let met: u64 = self.serving.iter().map(|r| r.slo_met).sum();
        met as f64 / completed as f64
    }
}

/// Per-tenant live state inside the controller.
struct Tenant {
    name: String,
    session: ServingSession,
    priority: u8,
    min_replicas: usize,
    max_replicas: usize,
    stages: usize,
    ttft_target: f64,
    /// Completion window: `(completion time, ttft)`, pruned to
    /// `ttft_window`.
    window: Vec<(f64, f64)>,
    last_action: f64,
    /// Draining all remaining replicas after the trace completed.
    retired: bool,
}

impl Tenant {
    /// Windowed p99 TTFT (0 with no completions in the window).
    fn windowed_p99(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let mut ttfts: Vec<f64> = self.window.iter().map(|&(_, t)| t).collect();
        ttfts.sort_by(|a, b| a.partial_cmp(b).expect("TTFTs are finite"));
        percentile(&ttfts, 0.99)
    }
}

/// The closed-loop fleet controller.
pub struct FleetController {
    config: FleetConfig,
    pool: MockJobManager,
    trainer: ElasticTrainer,
    /// Worker ids currently backing the trainer (steals cut from the tail).
    trainer_workers: Vec<usize>,
    tenants: Vec<Tenant>,
    recorder: Arc<dyn Recorder>,
    timeline: Vec<FleetAction>,
    last_breach: f64,
    last_trainer_action: f64,
    steals: u64,
    returns: u64,
    preemptions: u64,
}

/// Ledger owner tag of the training job.
pub const TRAINER_OWNER: &str = "trainer";

impl FleetController {
    /// Build the fleet: the trainer takes `initial_trainer_workers` GPUs,
    /// each tenant its `initial_replicas × stages`, and whatever remains
    /// stays free in the pool.
    pub fn new(
        config: FleetConfig,
        mut trainer: ElasticTrainer,
        initial_trainer_workers: usize,
        tenants: Vec<TenantSpec>,
    ) -> Result<Self, String> {
        config.validate()?;
        if tenants.is_empty() {
            return Err("a fleet needs at least one serving tenant".into());
        }
        if initial_trainer_workers < config.trainer_min_workers
            || initial_trainer_workers > config.trainer_max_workers
        {
            return Err(format!(
                "initial trainer world {initial_trainer_workers} outside [{}, {}]",
                config.trainer_min_workers, config.trainer_max_workers
            ));
        }
        let mut names = BTreeSet::new();
        let mut demand = initial_trainer_workers;
        for spec in &tenants {
            spec.config.validate()?;
            if spec.config.autoscaler.is_some() {
                return Err(format!(
                    "tenant {}: the fleet controller owns scaling; drop the autoscaler",
                    spec.config.tenant
                ));
            }
            if spec.priority == 0 {
                return Err(format!(
                    "tenant {}: priority 0 is reserved for the trainer",
                    spec.config.tenant
                ));
            }
            if spec.min_replicas == 0 || spec.min_replicas > spec.config.initial_replicas {
                return Err(format!(
                    "tenant {}: min_replicas must be in 1..=initial_replicas",
                    spec.config.tenant
                ));
            }
            if !names.insert(spec.config.tenant.clone()) {
                return Err(format!("duplicate tenant name {}", spec.config.tenant));
            }
            demand += spec.config.initial_replicas * spec.config.stages;
        }
        if demand > config.total_gpus {
            return Err(format!(
                "initial demand of {demand} GPUs exceeds the pool of {}",
                config.total_gpus
            ));
        }

        let mut pool = MockJobManager::empty(config.total_gpus);
        let trainer_workers = pool.acquire_as(TRAINER_OWNER, 0, initial_trainer_workers);
        trainer.rescale(initial_trainer_workers)?;

        let mut live = Vec::with_capacity(tenants.len());
        for spec in tenants {
            let stages = spec.config.stages;
            let ids = pool.acquire_as(
                &spec.config.tenant,
                spec.priority,
                spec.config.initial_replicas * stages,
            );
            let blocks: Vec<Vec<usize>> = ids.chunks(stages).map(|c| c.to_vec()).collect();
            let name = spec.config.tenant.clone();
            let ttft_target = spec.config.slo.ttft;
            let max_replicas = spec.config.max_replicas;
            let engine = dynmo_serve::ServingEngine::external(spec.config, blocks)?;
            live.push(Tenant {
                name,
                session: engine.session(&spec.trace),
                priority: spec.priority,
                min_replicas: spec.min_replicas,
                max_replicas,
                stages,
                ttft_target,
                window: Vec::new(),
                last_action: f64::NEG_INFINITY,
                retired: false,
            });
        }

        Ok(FleetController {
            config,
            pool,
            trainer,
            trainer_workers,
            tenants: live,
            recorder: Arc::new(NullRecorder),
            timeline: Vec::new(),
            last_breach: f64::NEG_INFINITY,
            last_trainer_action: f64::NEG_INFINITY,
            steals: 0,
            returns: 0,
            preemptions: 0,
        })
    }

    /// Route fleet telemetry (steal/return/preemption markers and pool
    /// counters) to `recorder`.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    fn push_action(&mut self, time: f64, kind: FleetActionKind, gpus: usize) {
        self.timeline.push(FleetAction {
            time,
            kind,
            gpus,
            trainer_workers: self.trainer_workers.len(),
            pool_free: self.pool.available(),
            trainer_iteration: self.trainer.iterations_done(),
        });
    }

    /// Whether the tenant's SLO is in breach as of `now`.
    fn in_breach(&self, idx: usize, now: f64) -> bool {
        let t = &self.tenants[idx];
        if t.session.is_finished() {
            return false;
        }
        let p99 = t.windowed_p99();
        if !t.window.is_empty() && p99 > t.ttft_target * self.config.breach_ttft_factor {
            return true;
        }
        t.session.gateway_backlog(now).oldest_wait > self.config.gateway_age_limit
    }

    /// Run the closed loop until every tenant's trace is served and every
    /// serving GPU has been reclaimed, then report.
    pub fn run(mut self) -> Result<FleetReport, String> {
        let mut tick: u64 = 0;
        loop {
            tick += 1;
            if tick > self.config.max_ticks {
                return Err(format!(
                    "fleet did not converge within {} ticks",
                    self.config.max_ticks
                ));
            }
            let now = tick as f64 * self.config.check_interval;

            // 1. Advance every session, then the trainer, to this tick.
            for t in &mut self.tenants {
                t.session.run_until(now, None);
            }
            self.trainer.advance_to(now)?;
            self.release_finished_trainer(now)?;

            // 2. Harvest completions into the per-tenant SLO windows, and
            // sample the per-tenant counter tracks.
            for t in &mut self.tenants {
                t.window.extend(t.session.take_completions());
                let cutoff = now - self.config.ttft_window;
                t.window.retain(|&(end, _)| end >= cutoff);
            }
            for t in &self.tenants {
                self.recorder
                    .counter(0, &format!("{}_p99_ttft", t.name), now, t.windowed_p99());
                self.recorder.counter(
                    0,
                    &format!("{}_live_replicas", t.name),
                    now,
                    t.session.live_replicas() as f64,
                );
            }

            // 3. Reclaim drained replicas into the free pool.
            self.reclaim_drained(now)?;

            // 4. Retire finished tenants: drain everything they still hold.
            for t in &mut self.tenants {
                if t.session.is_finished() && !t.retired {
                    while t.session.begin_drain().is_some() {}
                    t.retired = true;
                }
            }

            // 5. Voluntary shrink on comfortable tenants (hysteresis).
            self.shrink_comfortable(now);

            // 6. Relieve breaches, highest priority first.
            self.relieve_breaches(now)?;

            // 7. Quiet trough: return free GPUs to the trainer.
            self.return_to_trainer(now)?;

            // 8. Conservation and starvation checks.
            self.check_invariants(now)?;

            let all_done = self
                .tenants
                .iter()
                .all(|t| t.session.is_finished() && self.pool.allocated_to(&t.name) == 0);
            if all_done {
                return self.finish(tick);
            }
        }
    }

    /// A finished trainer donates its whole world back to the pool.
    fn release_finished_trainer(&mut self, now: f64) -> Result<(), String> {
        if !self.trainer.finished() || self.trainer_workers.is_empty() {
            return Ok(());
        }
        let freed = std::mem::take(&mut self.trainer_workers);
        self.pool.set_iteration(fleet_clock(now));
        self.pool
            .try_release_as(TRAINER_OWNER, &freed)
            .map_err(|e| format!("releasing the finished trainer: {e:?}"))?;
        Ok(())
    }

    fn reclaim_drained(&mut self, now: f64) -> Result<(), String> {
        for t in &mut self.tenants {
            for block in t.session.reclaim_drained(now) {
                self.pool.set_iteration(fleet_clock(now));
                self.pool
                    .try_release_as(&t.name, &block)
                    .map_err(|e| format!("tenant {} releasing a drained block: {e:?}", t.name))?;
            }
        }
        Ok(())
    }

    fn shrink_comfortable(&mut self, now: f64) {
        for idx in 0..self.tenants.len() {
            let t = &self.tenants[idx];
            if t.retired
                || t.session.is_finished()
                || now - t.last_action < self.config.action_cooldown
                || t.session.live_replicas() <= t.min_replicas
                || t.window.is_empty()
            {
                continue;
            }
            // Estimate the arrival rate from the completion window (they
            // match in steady state) and require the survivors to have
            // headroom — see the `shrink_max_load` field note.
            let observed_rate = t.window.len() as f64 / self.config.ttft_window;
            let survivors = (t.session.live_replicas() - 1).max(1) as f64;
            let comfortable = t.windowed_p99() < t.ttft_target * self.config.relax_ttft_factor
                && t.session.gateway_backlog(now).requests == 0
                && observed_rate / survivors <= self.config.shrink_max_load;
            if !comfortable {
                continue;
            }
            let t = &mut self.tenants[idx];
            if t.session.begin_drain().is_some() {
                t.last_action = now;
                let name = t.name.clone();
                self.push_action(now, FleetActionKind::Shrink { tenant: name }, 0);
            }
        }
    }

    fn relieve_breaches(&mut self, now: f64) -> Result<(), String> {
        // Highest priority first; declaration order breaks ties.
        let mut order: Vec<usize> = (0..self.tenants.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.tenants[i].priority));
        for idx in order {
            if !self.in_breach(idx, now) {
                continue;
            }
            self.last_breach = now;
            let (stages, priority, live, draining, max_replicas, last_action) = {
                let t = &self.tenants[idx];
                (
                    t.stages,
                    t.priority,
                    t.session.live_replicas(),
                    t.session.draining_replicas(),
                    t.max_replicas,
                    t.last_action,
                )
            };
            if now - last_action < self.config.action_cooldown {
                continue;
            }
            if live + draining >= max_replicas {
                continue; // at the configured ceiling; nothing to grant
            }

            if self.pool.available() >= stages {
                self.grant_from_pool(idx, now, now + self.config.provision_delay)?;
                continue;
            }

            let can_steal = !self.trainer.finished()
                && self.trainer_workers.len() >= self.config.trainer_min_workers + stages;
            if can_steal {
                self.steal_from_trainer(idx, now)?;
                continue;
            }

            // Last resort: order the lowest-priority tenant strictly below
            // the breacher to drain one replica (its GPUs arrive in the
            // pool a few ticks later and the still-breaching tenant gets
            // them as a grant).
            self.preempt_for(idx, priority, now);
        }
        Ok(())
    }

    fn grant_from_pool(&mut self, idx: usize, now: f64, ready_at: f64) -> Result<(), String> {
        let (name, priority, stages) = {
            let t = &self.tenants[idx];
            (t.name.clone(), t.priority, t.stages)
        };
        self.pool.set_iteration(fleet_clock(now));
        let block = self.pool.acquire_as(&name, priority, stages);
        let p99 = self.tenants[idx].windowed_p99();
        self.tenants[idx]
            .session
            .add_external_replica(block, now, ready_at, p99)?;
        self.tenants[idx].last_action = now;
        self.push_action(now, FleetActionKind::Grant { tenant: name }, stages);
        Ok(())
    }

    fn steal_from_trainer(&mut self, idx: usize, now: f64) -> Result<(), String> {
        let (name, priority, stages) = {
            let t = &self.tenants[idx];
            (t.name.clone(), t.priority, t.stages)
        };
        let cut = self
            .trainer_workers
            .split_off(self.trainer_workers.len() - stages);
        let cost = self.trainer.rescale(self.trainer_workers.len())?;
        self.pool.set_iteration(fleet_clock(now));
        self.pool
            .try_release_as(TRAINER_OWNER, &cut)
            .map_err(|e| format!("trainer releasing stolen GPUs: {e:?}"))?;
        self.pool
            .try_acquire_as(&name, priority, &cut)
            .map_err(|e| format!("tenant {name} acquiring stolen GPUs: {e:?}"))?;
        // The replica comes online after provisioning; the checkpoint
        // write that freed the GPUs happens on the trainer's clock and is
        // already charged there.
        let ready_at = now + self.config.provision_delay + cost;
        let p99 = self.tenants[idx].windowed_p99();
        self.tenants[idx]
            .session
            .add_external_replica(cut, now, ready_at, p99)?;
        self.tenants[idx].last_action = now;
        self.last_trainer_action = now;
        self.steals += 1;
        self.recorder.instant(
            0,
            MarkerKind::GpuSteal,
            &format!("{stages} GPUs to {name}"),
            now,
            &[
                ("tenant", name.clone()),
                ("checkpoint_cost", format!("{cost:.4}")),
                ("trainer_world", self.trainer_workers.len().to_string()),
            ],
        );
        self.recorder
            .counter(0, "trainer_world", now, self.trainer_workers.len() as f64);
        self.push_action(
            now,
            FleetActionKind::Steal {
                tenant: name,
                checkpoint_cost: cost,
            },
            stages,
        );
        Ok(())
    }

    fn preempt_for(&mut self, idx: usize, below: u8, now: f64) {
        let breacher = self.tenants[idx].name.clone();
        let victim = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(i, v)| {
                *i != idx
                    && v.priority < below
                    && !v.session.is_finished()
                    && v.session.live_replicas() > v.min_replicas
            })
            .min_by_key(|(_, v)| (v.priority, std::cmp::Reverse(v.session.live_replicas())))
            .map(|(i, _)| i);
        let Some(vidx) = victim else {
            return; // nobody below the breacher can give anything up
        };
        if self.tenants[vidx].session.begin_drain().is_none() {
            return;
        }
        self.tenants[vidx].last_action = now;
        self.preemptions += 1;
        let victim_name = self.tenants[vidx].name.clone();
        self.recorder.instant(
            0,
            MarkerKind::Preemption,
            &format!("{victim_name} drains for {breacher}"),
            now,
            &[
                ("victim", victim_name.clone()),
                ("tenant", breacher.clone()),
            ],
        );
        self.push_action(
            now,
            FleetActionKind::Preempt {
                victim: victim_name,
                tenant: breacher,
            },
            0,
        );
    }

    fn return_to_trainer(&mut self, now: f64) -> Result<(), String> {
        if self.trainer.finished()
            || now - self.last_breach < self.config.return_cooldown
            || now - self.last_trainer_action < self.config.return_cooldown
        {
            return Ok(());
        }
        let room = self
            .config
            .trainer_max_workers
            .saturating_sub(self.trainer_workers.len());
        let take = self.pool.available().min(room);
        if take == 0 {
            return Ok(());
        }
        self.pool.set_iteration(fleet_clock(now));
        let ids = self.pool.acquire_as(TRAINER_OWNER, 0, take);
        self.trainer_workers.extend(ids);
        let cost = self.trainer.rescale(self.trainer_workers.len())?;
        self.last_trainer_action = now;
        self.returns += 1;
        self.recorder.instant(
            0,
            MarkerKind::GpuReturn,
            &format!("{take} GPUs to trainer"),
            now,
            &[
                ("checkpoint_cost", format!("{cost:.4}")),
                ("trainer_world", self.trainer_workers.len().to_string()),
            ],
        );
        self.recorder
            .counter(0, "trainer_world", now, self.trainer_workers.len() as f64);
        self.push_action(now, FleetActionKind::Return, take);
        Ok(())
    }

    /// Every GPU is held by exactly one party, the ledger agrees with the
    /// sessions' own replica counts, and no unfinished tenant sits below
    /// its floor.
    fn check_invariants(&self, now: f64) -> Result<(), String> {
        let trainer_held = self.pool.allocated_to(TRAINER_OWNER);
        if trainer_held != self.trainer_workers.len() {
            return Err(format!(
                "t={now}: ledger holds {trainer_held} trainer GPUs but the controller tracks {}",
                self.trainer_workers.len()
            ));
        }
        let mut held = trainer_held;
        for t in &self.tenants {
            let owned = self.pool.allocated_to(&t.name);
            let session_held =
                (t.session.live_replicas() + t.session.draining_replicas()) * t.stages;
            if owned != session_held {
                return Err(format!(
                    "t={now}: tenant {} ledger {owned} GPUs vs session {session_held}",
                    t.name
                ));
            }
            held += owned;
            if !t.session.is_finished() && t.session.live_replicas() < t.min_replicas {
                return Err(format!(
                    "t={now}: tenant {} starved below its floor of {} replicas",
                    t.name, t.min_replicas
                ));
            }
        }
        if held + self.pool.available() != self.config.total_gpus {
            return Err(format!(
                "t={now}: {} held + {} free != {} total GPUs",
                held,
                self.pool.available(),
                self.config.total_gpus
            ));
        }
        Ok(())
    }

    fn finish(self, ticks: u64) -> Result<FleetReport, String> {
        let serving: Vec<ServingReport> = self
            .tenants
            .into_iter()
            .map(|t| t.session.finish())
            .collect();
        Ok(FleetReport {
            serving,
            trainer_iterations: self.trainer.iterations_done(),
            trainer_final_world: self.trainer.world(),
            trainer_total_tokens: self.trainer.total_tokens(),
            trainer_sim_time: self.trainer.sim_time(),
            trainer_tokens_per_second: self.trainer.tokens_per_second(),
            trainer_rescales: self.trainer.rescales(),
            trainer_rescale_cost: self.trainer.rescale_cost_total(),
            trajectory_checksums: self.trainer.checksum_history().to_vec(),
            steals: self.steals,
            returns: self.returns,
            preemptions: self.preemptions,
            ticks,
            timeline: self.timeline,
        })
    }
}
