//! # dynmo-fleet
//!
//! A closed-loop fleet controller co-locating an **elastic training job**
//! and **multiple serving tenants** on one shared GPU pool — the
//! cluster-level payoff of the paper's core mechanism.  DynMo's
//! checkpoint-shrink-resume elasticity means a training job can donate
//! GPUs at any chunk boundary and take them back later without replaying
//! a single iteration; this crate closes the loop that decides *when*:
//!
//! * [`ElasticTrainer`] — the training job, advancing in bounded chunks on
//!   a simulated clock, re-scalable at every boundary for the price of one
//!   checkpoint write.
//! * [`FleetController`] — the arbiter: it watches each tenant's windowed
//!   p99 TTFT and gateway age, steals GPUs from the trainer on SLO
//!   breaches (highest-priority tenant first), preempts low-priority
//!   tenants when the trainer is at its floor, and returns free GPUs to
//!   the trainer once traffic troughs — with hysteresis and cooldowns so
//!   the pool never thrashes.
//! * [`FleetReport`] — per-tenant serving reports plus the trainer's
//!   trajectory-checksum history, proving fleet interference never
//!   corrupted the training trajectory.
//!
//! Every decision runs on simulated clocks, so fleet runs are
//! bit-reproducible for a given configuration and seed — the property the
//! bench's cross-thread-count identity gate pins.

#![warn(missing_docs)]

pub mod controller;
pub mod trainer;

pub use controller::{
    FleetAction, FleetActionKind, FleetConfig, FleetController, FleetReport, TenantSpec,
    TRAINER_OWNER,
};
pub use trainer::{ElasticTrainer, ElasticTrainerSpec};
