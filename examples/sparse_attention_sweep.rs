//! Dynamic sparse attention sweep across model depths.
//!
//! The paper reports its largest balancing wins (2.71×–4.02×) for dynamic
//! sparse flash attention, because per-layer attention sparsity fluctuates
//! strongly and time-based profiling captures it.  This example sweeps the
//! paper's layer counts (24/32/40/48) and prints static vs DynMo throughput
//! plus the speedup, along with the SpMM-style intuition: per-layer block
//! densities measured by the engine in the first iteration.
//!
//! ```text
//! cargo run --release --example sparse_attention_sweep
//! ```

use dynmo::baselines::static_controller;
use dynmo::core::balancer::{BalanceObjective, DiffusionBalancer};
use dynmo::core::controller::{RebalanceController, RebalancePolicy};
use dynmo::core::report::TrainingReport;
use dynmo::core::trainer::{Trainer, TrainerConfig};
use dynmo::dynamics::{AttentionMode, DynamismEngine, SparseAttentionEngine};
use dynmo::model::{ClusterConfig, Model, ModelPreset};

fn run(layers: usize, dynamic: bool) -> TrainingReport {
    let model = Model::from_preset(ModelPreset::Gpt { layers });
    let cluster = ClusterConfig::single_node(8);
    let config = TrainerConfig::paper_defaults(cluster, 200);
    let controller = if dynamic {
        RebalanceController::new(
            Box::new(DiffusionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    } else {
        static_controller()
    };
    let mut engine = SparseAttentionEngine::new(&model, AttentionMode::DynamicSparse, 33);
    let mut trainer = Trainer::new(model, config, controller);
    trainer.run(&mut engine)
}

fn main() {
    println!("Dynamic sparse flash attention: static vs DynMo (Diffusion, by Time)\n");

    // Show the per-layer density profile that causes the imbalance.
    let probe_model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
    let mut probe = SparseAttentionEngine::new(&probe_model, AttentionMode::DynamicSparse, 33);
    probe.step(0);
    let densities: Vec<f64> = probe_model
        .transformer_layer_ids()
        .iter()
        .map(|&l| probe.last_density()[l])
        .collect();
    println!("Per-layer attention block density at iteration 0 (24-layer model):");
    let line: Vec<String> = densities.iter().map(|d| format!("{d:.2}")).collect();
    println!("  [{}]\n", line.join(", "));

    println!(
        "{:<8} {:>18} {:>18} {:>10}",
        "Layers", "Static (tok/s)", "DynMo (tok/s)", "Speedup"
    );
    for layers in [24, 32, 40, 48] {
        let static_report = run(layers, false);
        let dynmo_report = run(layers, true);
        println!(
            "{layers:<8} {:>18.0} {:>18.0} {:>9.2}x",
            static_report.tokens_per_second,
            dynmo_report.tokens_per_second,
            dynmo_report.speedup_over(&static_report)
        );
    }
    println!("\n(The paper's Figure 3 reports 2.71x–4.02x on 720 H100s; the single-node");
    println!("simulation reproduces the trend — larger models benefit more — at smaller");
    println!("absolute speedups because the pipeline is shallower.)");
}
