//! Quickstart: train a dynamic GPT model with and without DynMo and compare.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example trains a 24-layer GPT with CALM-style early exit on a
//! single-node 8-GPU pipeline (simulated), once with static Megatron-style
//! partitioning and once with DynMo's time-based partition balancer, and
//! prints the resulting throughput, idleness, and overhead — the smallest
//! possible version of the paper's Figure 3 comparison.

use dynmo::baselines::static_controller;
use dynmo::core::balancer::{BalanceObjective, PartitionBalancer};
use dynmo::core::controller::{RebalanceController, RebalancePolicy};
use dynmo::core::report::TrainingReport;
use dynmo::core::trainer::{Trainer, TrainerConfig};
use dynmo::dynamics::{EarlyExitEngine, EarlyExitMethod};
use dynmo::model::{ClusterConfig, Model, ModelPreset};

fn run(dynamic: bool) -> TrainingReport {
    let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
    let cluster = ClusterConfig::single_node(8);
    let config = TrainerConfig::paper_defaults(cluster, 300);

    let controller = if dynamic {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    } else {
        static_controller()
    };

    let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 42);
    let mut trainer = Trainer::new(model, config, controller);
    trainer.run(&mut engine)
}

fn main() {
    println!("DynMo quickstart: early-exit GPT-24L on an 8-stage pipeline\n");

    let static_report = run(false);
    let dynmo_report = run(true);

    let print = |name: &str, r: &TrainingReport| {
        println!(
            "{name:<22} {:>12.0} tokens/s   idleness {:>5.1}%   bubble {:>5.1}%   overhead {:>5.2}%",
            r.tokens_per_second,
            r.average_idleness * 100.0,
            r.average_bubble_ratio * 100.0,
            r.overhead_fraction * 100.0,
        );
    };
    print("Static (Megatron-LM):", &static_report);
    print("DynMo (Partition):", &dynmo_report);

    println!(
        "\nDynMo speedup over the static baseline: {:.2}x",
        dynmo_report.speedup_over(&static_report)
    );
    println!(
        "Rebalance events: {} (every ~100 iterations for early exit)",
        dynmo_report.rebalance_events
    );
}
