//! Surviving rank failures and re-scaling the world live.
//!
//! The paper's elastic path (§3.4.2) releases idle GPUs from a *healthy*
//! job; this example shows the production-shaped counterpart built on
//! `dynmo::resilience` + `dynmo::core::recovery`:
//!
//! 1. a fault-injected run — one rank is killed mid-training, the
//!    survivors detect it, rebuild the communicator world, re-balance, and
//!    replay from the last checkpoint — finishing with *exactly* the same
//!    final state as a failure-free run;
//! 2. a voluntary shrink→grow session — the world shrinks from 4 to 2
//!    workers (GPUs go back to the job manager), trains shrunken, then
//!    grows back, with layer-assignment conservation checked throughout.
//!
//! ```text
//! cargo run --release --example elastic_failover
//! ```

use dynmo::core::recovery::{
    run_elastic_rescale, run_resilient, ElasticRescaleConfig, RecoveryConfig,
    ResilientTrainingConfig, WorkloadConfig,
};
use dynmo::runtime::FaultPlan;

fn main() {
    let workload = WorkloadConfig::small(12, 2024);
    let recovery = RecoveryConfig {
        checkpoint_interval: 10,
        ..RecoveryConfig::default()
    };

    println!("Part 1: kill rank 2 at iteration 23 of 60 (4 workers, checkpoint every 10)\n");
    let clean = run_resilient(&ResilientTrainingConfig {
        world_size: 4,
        iterations: 60,
        workload,
        fault_plan: FaultPlan::none(),
        recovery,
    })
    .expect("failure-free run");
    let faulty = run_resilient(&ResilientTrainingConfig {
        world_size: 4,
        iterations: 60,
        workload,
        fault_plan: FaultPlan::none().kill(2, 23),
        recovery,
    })
    .expect("fault-injected run");

    for event in &faulty.recoveries {
        println!(
            "  recovery: ranks {:?} died, detected at iteration {}, resumed from \
             checkpoint {} ({} iterations replayed), world {} -> {}, cost {:.2}s",
            event.failed_ranks,
            event.detected_at,
            event.resumed_from,
            event.replayed,
            event.world_size_after + event.failed_ranks.len(),
            event.world_size_after,
            event.cost,
        );
    }
    println!("  checkpoints taken:     {:>8}", faulty.checkpoints_taken);
    println!(
        "  resilience overhead:   {:>8.2}s over {} events",
        faulty.overhead.recovery, faulty.overhead.recovery_events
    );
    println!(
        "  final loss:            {:>8.5} (failure-free: {:.5})",
        faulty.final_loss, clean.final_loss
    );
    println!(
        "  final state identical: {:>8}",
        if faulty.weights_checksum == clean.weights_checksum {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "  GPU released to fleet: {:?}\n",
        faulty
            .fleet_events
            .iter()
            .map(|e| (e.iteration, e.delta))
            .collect::<Vec<_>>()
    );

    println!("Part 2: voluntary shrink 4 -> 2 at iteration 20, grow back at 40, finish at 60\n");
    let rescale = run_elastic_rescale(&ElasticRescaleConfig {
        world_size: 4,
        iterations: 60,
        workload,
        shrink_at: 20,
        shrink_to: 2,
        grow_at: 40,
        recovery,
    })
    .expect("elastic rescale session");

    println!("  world sizes per phase: {:?}", rescale.phase_world_sizes);
    println!(
        "  layers conserved:      {:>8}",
        if rescale.layers_conserved {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "  average GPUs in use:   {:>8.2} (of 4)",
        rescale.average_allocated
    );
    println!("  fleet events (iteration, released+/-):");
    for event in &rescale.fleet_events {
        println!(
            "    iteration {:>3}: {:+} -> {} allocated",
            event.iteration, event.delta, event.allocated_after
        );
    }
    println!(
        "  final state matches an un-rescaled run: {}",
        if rescale.weights_checksum == clean.weights_checksum {
            "yes"
        } else {
            "NO"
        }
    );
}
