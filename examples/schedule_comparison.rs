//! Compare the four pipeline schedules on the same training run.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example schedule_comparison
//! ```
//!
//! Trains a 32-layer GPT with adaptive layer freezing on an 8-stage
//! pipeline under each of GPipe, 1F1B, interleaved 1F1B (2 virtual stages
//! per worker) and the ZB-H1 zero-bubble schedule, and prints the bubble
//! each schedule leaves behind — the baseline a balancer starts from.  The
//! paper's Figure 1 measures idleness against the strongest ("almost
//! zero-bubble") member of this family.

use dynmo::baselines::{static_controller, zero_bubble_baseline_schedule};
use dynmo::core::report::TrainingReport;
use dynmo::core::trainer::{Trainer, TrainerConfig};
use dynmo::dynamics::{FreezingEngine, FreezingPolicy};
use dynmo::model::{ClusterConfig, Model, ModelPreset};
use dynmo::pipeline::ScheduleKind;

fn run(schedule: ScheduleKind) -> TrainingReport {
    let model = Model::from_preset(ModelPreset::Gpt { layers: 32 });
    let cluster = ClusterConfig::single_node(8);
    let config = TrainerConfig {
        schedule,
        ..TrainerConfig::paper_defaults(cluster, 200)
    };
    let mut engine = FreezingEngine::new(&model, FreezingPolicy::paper_default(), 42);
    let mut trainer = Trainer::new(model, config, static_controller());
    trainer.run(&mut engine)
}

fn main() {
    println!("Pipeline schedules: freezing GPT-32L on an 8-stage pipeline (static split)\n");

    for schedule in ScheduleKind::ALL {
        let report = run(schedule);
        println!(
            "{:<24} {:>12.0} tokens/s   idleness {:>5.1}%   bubble {:>5.1}%",
            schedule.label(),
            report.tokens_per_second,
            report.average_idleness * 100.0,
            report.average_bubble_ratio * 100.0,
        );
    }

    println!(
        "\nThe paper's static baseline schedule: {}",
        zero_bubble_baseline_schedule().label()
    );
}
