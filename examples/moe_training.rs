//! MoE continual training: Mixtral-8x7B-shaped model with token-choice
//! routing, comparing static partitioning, Tutel-style capacity dispatch,
//! and DynMo's diffusion balancer (which the paper invokes every iteration
//! for MoE because routing decisions change every forward pass).
//!
//! ```text
//! cargo run --release --example moe_training
//! ```

use dynmo::baselines::{static_controller, TutelMoeEngine};
use dynmo::core::balancer::{BalanceObjective, DiffusionBalancer};
use dynmo::core::controller::{RebalanceController, RebalancePolicy};
use dynmo::core::report::TrainingReport;
use dynmo::core::trainer::{Trainer, TrainerConfig};
use dynmo::dynamics::{DynamismEngine, MoeEngine, RoutingStrategy};
use dynmo::model::{ClusterConfig, Model, ModelPreset};

const ITERATIONS: u64 = 100;

fn trainer_config(cluster: ClusterConfig) -> TrainerConfig {
    TrainerConfig::paper_defaults(cluster, ITERATIONS)
}

fn run(engine: &mut dyn DynamismEngine, dynamic: bool) -> TrainingReport {
    let model = Model::from_preset(ModelPreset::Mixtral8x7b);
    // The paper's MoE experiments use a 16-way pipeline on 128 GPUs; a
    // single-node 8-way pipeline keeps the example fast while preserving
    // the imbalance structure.
    let cluster = ClusterConfig::single_node(8);
    let controller = if dynamic {
        RebalanceController::new(
            Box::new(DiffusionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    } else {
        static_controller()
    };
    let mut trainer = Trainer::new(model, trainer_config(cluster), controller);
    trainer.run(engine)
}

fn main() {
    println!("MoE continual training (Mixtral-8x7B shape), {ITERATIONS} iterations\n");
    let model = Model::from_preset(ModelPreset::Mixtral8x7b);

    // 1. Static Megatron-style partitioning with aux-loss token-choice routing.
    let mut aux_engine = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 7);
    let static_report = run(&mut aux_engine, false);

    // 2. Tutel-style capacity-factor dispatch (still no pipeline rebalance).
    let mut tutel_engine = TutelMoeEngine::new(
        &model,
        MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 7),
    );
    let tutel_report = run(&mut tutel_engine, false);

    // 3. DynMo diffusion balancing, rebalanced every iteration.
    let mut dynmo_engine = MoeEngine::new(&model, RoutingStrategy::TokenChoiceAuxLoss, 7);
    let dynmo_report = run(&mut dynmo_engine, true);

    let rows = [
        ("Static (Megatron-LM)", &static_report),
        ("Tutel (capacity 1.25)", &tutel_report),
        ("DynMo (Diffusion)", &dynmo_report),
    ];
    for (name, report) in rows {
        println!(
            "{name:<24} {:>12.0} tokens/s   bubble {:>5.1}%   mean ΔL {:.2}",
            report.tokens_per_second,
            report.average_bubble_ratio * 100.0,
            report.mean_imbalance,
        );
    }
    println!(
        "\nDynMo over static: {:.2}x    DynMo over Tutel: {:.2}x",
        dynmo_report.speedup_over(&static_report),
        dynmo_report.speedup_over(&tutel_report)
    );
}
