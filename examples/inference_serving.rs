//! Continuous-batching inference serving with elastic autoscaling.
//!
//! Serves a bursty request trace against a GPT-24 deployment twice — once
//! at fixed capacity, once with the SLO-driven autoscaler — and prints the
//! TTFT/TPOT/goodput comparison plus the scaling timeline.  Early exit
//! (CALM) is enabled in both runs, so decode work shrinks per token the
//! same way it shrinks training iterations.
//!
//! Run with `cargo run --release --example inference_serving`.

use dynmo::dynamics::{EarlyExitEngine, EarlyExitMethod};
use dynmo::model::{Model, ModelPreset};
use dynmo::serve::{
    serve, ArrivalProcess, AutoscalerConfig, LengthModel, RequestTrace, ServingConfig,
    ServingReport,
};

fn print_report(name: &str, report: &ServingReport) {
    println!("--- {name} ---");
    println!(
        "  requests: {} completed in {:.1} s  ({:.1} req/s, {:.0} output tok/s)",
        report.completed, report.makespan, report.throughput_rps, report.output_tokens_per_second
    );
    println!(
        "  TTFT  p50 {:.3} s   p95 {:.3} s   p99 {:.3} s",
        report.ttft.p50, report.ttft.p95, report.ttft.p99
    );
    println!(
        "  TPOT  p50 {:.4} s  p95 {:.4} s  p99 {:.4} s",
        report.tpot.p50, report.tpot.p95, report.tpot.p99
    );
    println!(
        "  SLO attainment {:.1}%   goodput {:.2} req/s   mean GPUs {:.2}  peak replicas {}",
        report.slo_attainment() * 100.0,
        report.goodput_rps,
        report.mean_gpus,
        report.peak_replicas
    );
    for event in &report.scale_events {
        println!(
            "  t={:6.1} s  {}1 replica  -> {} live (p99 TTFT {:.2} s, backlog {} tokens)",
            event.time,
            if event.delta > 0 { "+" } else { "-" },
            event.replicas_after,
            event.observed_ttft_p99,
            event.backlog_tokens
        );
    }
    println!();
}

fn main() {
    // Light steady traffic with a 25 s, 20× load spike in the middle.
    let process = ArrivalProcess::Bursty {
        base_rate: 2.0,
        spike_rate: 40.0,
        spike_start: 15.0,
        spike_duration: 25.0,
    };
    let lengths = LengthModel {
        mean_prompt_tokens: 256,
        mean_output_tokens: 64,
        spread: 0.5,
    };
    let trace = RequestTrace::generate(&process, 60.0, &lengths, 2024);
    println!(
        "Bursty trace: {} requests over 60 s ({} total tokens)\n",
        trace.num_requests(),
        trace.total_tokens()
    );

    let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });

    // Fixed capacity: one 4-stage replica, CALM early exit.
    let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7);
    let fixed = serve(ServingConfig::small(1), &trace, Some(&mut engine))
        .expect("fixed-capacity deployment serves the trace");
    print_report("fixed capacity (1 replica)", &fixed);

    // Elastic: the autoscaler may grow to 4 replicas defending a 2 s p99
    // TTFT, and releases them again when the spike passes.
    let mut config = ServingConfig::small(1);
    config.max_replicas = 4;
    let config = config.with_autoscaler(AutoscalerConfig::responsive(2.0, 1, 4));
    let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 7);
    let elastic =
        serve(config, &trace, Some(&mut engine)).expect("elastic deployment serves the trace");
    print_report("elastic (autoscaled, ≤ 4 replicas)", &elastic);

    assert!(
        elastic.scale_out_events() >= 1,
        "the spike should trigger at least one scale-out"
    );
    assert!(
        elastic.ttft.p99 < fixed.ttft.p99,
        "autoscaling should cut the p99 TTFT"
    );
    println!(
        "Autoscaling cut p99 TTFT {:.2}x ({:.2} s -> {:.2} s) at {:.2} mean GPUs (fixed used {:.0}).",
        fixed.ttft.p99 / elastic.ttft.p99,
        fixed.ttft.p99,
        elastic.ttft.p99,
        elastic.mean_gpus,
        fixed.mean_gpus
    );
}
