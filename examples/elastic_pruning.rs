//! Elastic training under gradual global magnitude pruning.
//!
//! Reproduces, at example scale, the paper's headline elasticity story
//! (§3.4 / Figure 4): as the Zhu–Gupta schedule prunes the model toward 90%
//! sparsity, DynMo rebalances the shrinking layers, re-packs them onto fewer
//! GPUs, and releases the idle GPUs back to the job manager.  The example
//! also runs the distributed global-pruning step itself (Algorithm 1) on the
//! simulated multi-rank runtime to show the actual gather/scatter pattern.
//!
//! ```text
//! cargo run --release --example elastic_pruning
//! ```

use dynmo::core::balancer::{BalanceObjective, PartitionBalancer};
use dynmo::core::controller::{RebalanceController, RebalancePolicy};
use dynmo::core::repack::RepackConfig;
use dynmo::core::trainer::{Trainer, TrainerConfig};
use dynmo::dynamics::{distributed_global_prune, GradualPruningEngine, PruningSchedule};
use dynmo::model::{ClusterConfig, Model, ModelPreset};
use dynmo::runtime::launch;

fn main() {
    println!("Part 1: Algorithm 1 — distributed global magnitude pruning over 4 ranks\n");
    // Each rank owns a shard of the parameters; the global 75% sparsity
    // threshold is computed collectively (local top-k → gather → global
    // top-k → broadcast) and applied locally.
    let results = launch(4, |ctx| {
        let comm = ctx.world();
        // Deterministic per-rank shard with rank-dependent magnitudes.
        let shard: Vec<f32> = (0..16)
            .map(|i| ((i + 1) as f32 / 16.0) * (1.0 + ctx.rank() as f32 * 0.5))
            .collect();
        let pruned = distributed_global_prune(&comm, &shard, 0.75).unwrap();
        let kept = pruned.iter().filter(|v| **v != 0.0).count();
        (ctx.rank(), kept, shard.len())
    })
    .unwrap();
    let mut total_kept = 0;
    let mut total = 0;
    for (rank, kept, len) in &results {
        println!("  rank {rank}: kept {kept}/{len} parameters");
        total_kept += kept;
        total += len;
    }
    println!(
        "  global sparsity achieved: {:.1}% (target 75%)\n",
        (1.0 - total_kept as f64 / total as f64) * 100.0
    );

    println!("Part 2: elastic end-to-end training with re-packing\n");
    let model = Model::from_preset(ModelPreset::Gpt { layers: 32 });
    let cluster = ClusterConfig::single_node(8);
    let iterations = 500;
    // Compress the paper's 3000→7000-iteration pruning window into the
    // example's 500 iterations.
    let schedule = PruningSchedule {
        initial_sparsity: 0.0,
        final_sparsity: 0.9,
        start_iteration: 150,
        frequency: 50,
        num_steps: 4,
    };
    let config = TrainerConfig::paper_defaults(cluster.clone(), iterations);
    let controller = RebalanceController::new(
        Box::new(PartitionBalancer::new()),
        BalanceObjective::ByTime,
        RebalancePolicy {
            enabled: true,
            frequency: Some(dynmo::dynamics::RebalanceFrequency::EveryN(50)),
            repack: Some(RepackConfig {
                max_memory: cluster.device.memory_capacity,
                target_num_workers: 2,
                utilization_cap: 0.9,
            }),
        },
    );
    let mut engine = GradualPruningEngine::new(&model, schedule, 11);
    let mut trainer = Trainer::new(model, config, controller);
    let report = trainer.run(&mut engine);

    println!(
        "  throughput:            {:>12.0} tokens/s",
        report.tokens_per_second
    );
    println!(
        "  throughput per GPU:    {:>12.0} tokens/s/GPU",
        report.tokens_per_second_per_gpu
    );
    println!(
        "  average GPUs in use:   {:>12.1} (started with 8)",
        report.average_active_workers
    );
    println!(
        "  GPUs in use at end:    {:>12}",
        report.final_active_workers
    );
    println!("  rebalance events:      {:>12}", report.rebalance_events);
    println!(
        "  balancing overhead:    {:>11.2}%",
        report.overhead_fraction * 100.0
    );
    println!("\n  GPU release history (iteration → GPUs allocated):");
    for event in trainer.job_manager().events() {
        println!(
            "    iteration {:>4}: {:+} GPUs → {} allocated",
            event.iteration, -event.delta, event.allocated_after
        );
    }
}
