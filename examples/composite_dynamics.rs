//! Composite dynamics: an MoE model that is also gradually pruned and lets
//! confident tokens exit early — three mechanisms stacked in one run.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example composite_dynamics
//! ```
//!
//! Demonstrates the three pieces the composite subsystem adds:
//!
//! 1. `ComposedEngine` merges the stacked mechanisms' per-layer load
//!    updates multiplicatively (frozen layers stay frozen, token dropping
//!    shrinks each boundary tensor exactly once).
//! 2. The trainer drives the merged load through the profiler and both
//!    balancer families exactly as it drives a single mechanism.
//! 3. Checkpoints capture every sub-engine's RNG streams and masks, so a
//!    crashed composite run resumes and replays **bit-for-bit**.

use dynmo::core::composite::{run_composite_with_recovery, CompositeRunSpec};
use dynmo::core::controller::{RebalanceController, RebalancePolicy};
use dynmo::core::trainer::TrainerConfig;
use dynmo::core::{BalanceObjective, PartitionBalancer};
use dynmo::dynamics::{
    ComposedEngine, DynamismEngine, EarlyExitEngine, EarlyExitMethod, GradualPruningEngine,
    MoeEngine, PruningSchedule, RoutingStrategy,
};
use dynmo::model::{ClusterConfig, DeviceSpec, Model, ModelPreset};
use dynmo::pipeline::ScheduleKind;

fn stack(model: &Model) -> Vec<Box<dyn DynamismEngine + Send>> {
    let pruning = PruningSchedule {
        initial_sparsity: 0.0,
        final_sparsity: 0.9,
        start_iteration: 40,
        frequency: 30,
        num_steps: 3,
    };
    vec![
        Box::new(MoeEngine::new(
            model,
            RoutingStrategy::TokenChoiceAuxLoss,
            42,
        )),
        Box::new(GradualPruningEngine::new(model, pruning, 43)),
        Box::new(EarlyExitEngine::new(model, EarlyExitMethod::Calm, 44)),
    ]
}

fn main() {
    let model = Model::from_preset(ModelPreset::Mixtral8x7b);
    let cluster = ClusterConfig::homogeneous(8, 8, 1, DeviceSpec::h100_sxm5());
    let config = TrainerConfig {
        schedule: ScheduleKind::ZeroBubbleH1,
        ..TrainerConfig::paper_defaults(cluster, 150)
    };

    // Peek at one merged update: the stack's load is the product of its
    // members', so a late layer hit by routing skew, pruning, AND early
    // exit carries all three effects at once.
    let mut preview = ComposedEngine::new(stack(&model)).expect("valid stack");
    let update = preview.step(0);
    let tfm = model.transformer_layer_ids();
    let (first, last) = (tfm[0], *tfm.last().unwrap());
    println!("Stack: {}", preview.name());
    println!(
        "Merged multipliers at iteration 0: layer {first} fwd ×{:.3}, layer {last} fwd ×{:.3} \
         (token retention {:.2})\n",
        update.fwd_scale[first], update.fwd_scale[last], update.token_retention[last],
    );

    let make_controller = || {
        RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        )
    };
    let make_stack = || stack(&model);
    let spec = CompositeRunSpec {
        model: &model,
        config: &config,
        make_controller: &make_controller,
        make_stack: &make_stack,
    };

    // Failure-free run, then crash at iteration 100 and resume from the
    // last checkpoint (interval 30 → resumed from iteration 90).
    let report = run_composite_with_recovery(&spec, 30, 100).expect("recovery session");
    let baseline = &report.baseline;
    println!(
        "Failure-free: {:.0} tokens/s, bubble {:.1}%, {} rebalances, overhead {:.2}%",
        baseline.tokens_per_second,
        baseline.average_bubble_ratio * 100.0,
        baseline.rebalance_events,
        baseline.overhead_fraction * 100.0,
    );
    println!(
        "Crash at iteration {}, resumed from {}, replayed {} iterations",
        report.killed_at, report.resumed_from, report.replayed,
    );
    println!(
        "Trajectory checksums: baseline {:#018x}, recovered {:#018x} → {}",
        baseline.trajectory_checksum,
        report.recovered.trajectory_checksum,
        if report.bit_identical {
            "bit-identical replay"
        } else {
            "MISMATCH"
        },
    );
    assert!(report.bit_identical);
}
