//! Early exit with re-packing — the case the paper singles out as the one
//! that "benefits greatly from re-packing", because tokens exiting early
//! drain the load from the *later* pipeline stages specifically (§4.2.5).
//!
//! The example trains a 48-layer GPT with CALM-style early exit under three
//! configurations — static, DynMo rebalancing only, and DynMo with
//! re-packing — and prints throughput, throughput per GPU, and the GPUs
//! actually used.
//!
//! ```text
//! cargo run --release --example early_exit_repack
//! ```

use dynmo::baselines::static_controller;
use dynmo::core::balancer::{BalanceObjective, PartitionBalancer};
use dynmo::core::controller::{RebalanceController, RebalancePolicy};
use dynmo::core::repack::RepackConfig;
use dynmo::core::report::TrainingReport;
use dynmo::core::trainer::{Trainer, TrainerConfig};
use dynmo::dynamics::{EarlyExitEngine, EarlyExitMethod};
use dynmo::model::{ClusterConfig, Model, ModelPreset};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Static,
    Rebalance,
    RebalanceAndRepack,
}

fn run(mode: Mode) -> TrainingReport {
    let model = Model::from_preset(ModelPreset::Gpt { layers: 48 });
    let cluster = ClusterConfig::single_node(8);
    let config = TrainerConfig::paper_defaults(cluster.clone(), 400);
    let controller = match mode {
        Mode::Static => static_controller(),
        Mode::Rebalance => RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic(),
        ),
        Mode::RebalanceAndRepack => RebalanceController::new(
            Box::new(PartitionBalancer::new()),
            BalanceObjective::ByTime,
            RebalancePolicy::dynamic_with_repack(RepackConfig {
                max_memory: cluster.device.memory_capacity,
                target_num_workers: 2,
                utilization_cap: 0.9,
            }),
        ),
    };
    let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 21);
    let mut trainer = Trainer::new(model, config, controller);
    trainer.run(&mut engine)
}

fn main() {
    println!("Early exit (CALM) on GPT-48L, 8-stage pipeline, 400 iterations\n");
    let static_report = run(Mode::Static);
    let rebalance_report = run(Mode::Rebalance);
    let repack_report = run(Mode::RebalanceAndRepack);

    println!(
        "{:<28} {:>14} {:>16} {:>10}",
        "Configuration", "tokens/s", "tokens/s/GPU", "avg GPUs"
    );
    for (name, report) in [
        ("Static (Megatron-LM)", &static_report),
        ("DynMo (rebalance only)", &rebalance_report),
        ("DynMo (rebalance + re-pack)", &repack_report),
    ] {
        println!(
            "{name:<28} {:>14.0} {:>16.0} {:>10.1}",
            report.tokens_per_second,
            report.tokens_per_second_per_gpu,
            report.average_active_workers
        );
    }

    println!(
        "\nRebalancing speedup over static:        {:.2}x",
        rebalance_report.speedup_over(&static_report)
    );
    println!(
        "Additional effect of re-packing:         {:+.1}% throughput, {:.1} → {:.1} average GPUs",
        (repack_report.tokens_per_second / rebalance_report.tokens_per_second - 1.0) * 100.0,
        rebalance_report.average_active_workers,
        repack_report.average_active_workers
    );
    println!(
        "Per-GPU efficiency gain from re-packing: {:.2}x",
        repack_report.tokens_per_second_per_gpu / rebalance_report.tokens_per_second_per_gpu
    );
}
