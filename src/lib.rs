//! # DynMo — Balanced and Elastic End-to-end Training of Dynamic LLMs
//!
//! A from-scratch Rust reproduction of the SC'25 paper *"Balanced and
//! Elastic End-to-end Training of Dynamic LLMs"* (Wahib, Soyturk, Unat).
//!
//! This umbrella crate re-exports the workspace's sub-crates under one
//! name so applications and examples can depend on `dynmo` alone:
//!
//! * [`runtime`] — simulated multi-rank message-passing runtime (the
//!   NCCL/MPI substitute): communicators, collectives, `commSplit`.
//! * [`model`] — GPT/Mixtral/LLaMA-MoE model shapes, FLOP & memory models.
//! * [`sparse`] — CSR tensors, SpMM kernels, magnitude pruning, kernel cost
//!   models (Sputnik/cuSPARSE/cuBLAS).
//! * [`dynamics`] — the six dynamic-model mechanisms: MoE routing, gradual
//!   pruning (Algorithm 1), layer freezing, dynamic sparse attention, early
//!   exit, Mixture of Depths.
//! * [`pipeline`] — pipeline schedules (GPipe/1F1B), the discrete-event
//!   pipeline simulator, communication/memory models, hybrid DP×PP
//!   throughput accounting.
//! * [`resilience`] — fault tolerance: versioned trainer checkpoints and
//!   the in-memory/on-disk checkpoint stores behind them.
//! * [`core`] — DynMo itself: profiler, Partition & Diffusion balancers,
//!   re-packing (Algorithm 2), elastic GPU release, the rebalance
//!   controller, the end-to-end [`core::trainer::Trainer`], and the
//!   [`core::recovery`] coordinator that survives rank failures and
//!   re-scales the world live.
//! * [`serve`] — continuous-batching inference serving: request traces,
//!   KV-cache admission control, SLO metrics (TTFT/TPOT/goodput), and an
//!   elastic autoscaler that grows/shrinks the replica fleet.
//! * [`telemetry`] — observability: the structured event/span recorder,
//!   streaming P² quantile sketches, wall-clock profiling scopes, and the
//!   Chrome-trace-event/Perfetto timeline exporter.
//! * [`baselines`] — Megatron-LM, DeepSpeed, Tutel, Egeria, AutoFreeze, and
//!   PipeTransformer comparison points.
//!
//! ## Quickstart
//!
//! ```
//! use dynmo::core::balancer::{BalanceObjective, PartitionBalancer};
//! use dynmo::core::controller::{RebalanceController, RebalancePolicy};
//! use dynmo::core::trainer::{Trainer, TrainerConfig};
//! use dynmo::dynamics::{EarlyExitEngine, EarlyExitMethod};
//! use dynmo::model::{ClusterConfig, Model, ModelPreset};
//!
//! // A 24-layer GPT on a 4-stage pipeline, trained with CALM-style early
//! // exit and DynMo's time-based partition balancer.
//! let model = Model::from_preset(ModelPreset::Gpt { layers: 24 });
//! let cluster = ClusterConfig::single_node(4);
//! let config = TrainerConfig::paper_defaults(cluster, 50);
//! let controller = RebalanceController::new(
//!     Box::new(PartitionBalancer::new()),
//!     BalanceObjective::ByTime,
//!     RebalancePolicy::dynamic(),
//! );
//! let mut engine = EarlyExitEngine::new(&model, EarlyExitMethod::Calm, 42);
//! let mut trainer = Trainer::new(model, config, controller);
//! let report = trainer.run(&mut engine);
//! assert!(report.tokens_per_second > 0.0);
//! ```

#![warn(missing_docs)]

pub use dynmo_baselines as baselines;
pub use dynmo_core as core;
pub use dynmo_dynamics as dynamics;
pub use dynmo_model as model;
pub use dynmo_pipeline as pipeline;
pub use dynmo_resilience as resilience;
pub use dynmo_runtime as runtime;
pub use dynmo_serve as serve;
pub use dynmo_sparse as sparse;
pub use dynmo_telemetry as telemetry;
